//! The wire protocol: newline-delimited JSON requests and replies.
//!
//! One request per line, one reply per line. Every reply is a flat-ish
//! JSON object with an `"ok"` boolean; errors carry the
//! [`tnet_core::error::PipelineError`] taxonomy as
//! `{"ok":false,"error":{"kind":...,"message":...}}` so clients can
//! dispatch on the stable `kind` tag. The parser is hand-rolled
//! recursive descent over the subset of JSON the protocol needs
//! (objects, arrays, strings, numbers, booleans, null), with a depth
//! cap so a hostile request can't recurse the connection thread's
//! stack. Schema reference: DESIGN.md §12.
//!
//! Parsing also produces the **canonical query form** used as the cache
//! key: fixed field order, defaults filled in, whitespace-free — so
//! `{"op":"pattern","support":5}` and a field-reordered,
//! default-spelled-out equivalent hit the same cache entry.

use tnet_core::error::PipelineError;
use tnet_data::model::{Date, LatLon, TransMode, Transaction};
use tnet_data::od_graph::EdgeLabeling;
use tnet_graph::graph::ELabel;
use tnet_partition::split::Strategy;

/// Longest accepted request line, in bytes. Anything longer gets a
/// typed `protocol` error reply and the rest of the line is discarded;
/// the connection survives.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Deepest accepted JSON nesting (`ingest` needs 3: object → array →
/// record object).
const MAX_DEPTH: usize = 8;

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answers with the current generation id.
    Ping,
    /// The §3 dataset description of the pinned generation.
    Stats,
    /// Directed-walk support of an edge-label chain on the pinned OD
    /// graph (see `tnet_graph::traverse::count_label_walks`).
    Support {
        labeling: EdgeLabeling,
        labels: Vec<ELabel>,
    },
    /// Algorithm 1 frequent-pattern mining on the pinned generation,
    /// same knobs and defaults as `tnet mine`.
    Pattern {
        labeling: EdgeLabeling,
        strategy: Strategy,
        partitions: usize,
        support: usize,
        max_edges: usize,
        reps: usize,
        top: usize,
    },
    /// Server metrics snapshot (counters + latency quantiles).
    Trace,
    /// Batched transaction appends, forwarded to the writer.
    Ingest { records: Vec<Transaction> },
    /// Tombstone deletes by transaction id, forwarded to the writer.
    Delete { ids: Vec<u64> },
    /// Begin graceful shutdown: drain connections, flush a final
    /// generation, exit 0.
    Shutdown,
}

impl Request {
    /// The canonical cache-key form, or `None` for requests that are
    /// not cacheable (mutations, probes, and metrics reads).
    pub fn canonical(&self) -> Option<String> {
        match self {
            Request::Stats => Some("stats".to_string()),
            Request::Support { labeling, labels } => {
                let seq: Vec<String> = labels.iter().map(|l| l.0.to_string()).collect();
                Some(format!(
                    "support labeling={} labels={}",
                    labeling.name(),
                    seq.join(",")
                ))
            }
            Request::Pattern {
                labeling,
                strategy,
                partitions,
                support,
                max_edges,
                reps,
                top,
            } => Some(format!(
                "pattern labeling={} strategy={} partitions={partitions} support={support} \
                 max_edges={max_edges} reps={reps} top={top}",
                labeling.name(),
                match strategy {
                    Strategy::BreadthFirst => "bf",
                    Strategy::DepthFirst => "df",
                },
            )),
            _ => None,
        }
    }
}

/// The JSON subset the protocol speaks.
#[derive(Clone, Debug, PartialEq)]
pub enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn type_name(&self) -> &'static str {
        match self {
            JVal::Null => "null",
            JVal::Bool(_) => "bool",
            JVal::Num(_) => "number",
            JVal::Str(_) => "string",
            JVal::Arr(_) => "array",
            JVal::Obj(_) => "object",
        }
    }
}

fn perr(message: impl Into<String>) -> PipelineError {
    PipelineError::Protocol {
        message: message.into(),
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), PipelineError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(perr(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JVal, PipelineError> {
        if depth > MAX_DEPTH {
            return Err(perr("request JSON nested too deeply"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.keyword("true", JVal::Bool(true)),
            Some(b'f') => self.keyword("false", JVal::Bool(false)),
            Some(b'n') => self.keyword("null", JVal::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(perr(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(perr("unexpected end of request")),
        }
    }

    fn keyword(&mut self, word: &str, val: JVal) -> Result<JVal, PipelineError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(perr(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<JVal, PipelineError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| perr("non-utf8 number"))?;
        text.parse::<f64>()
            .map(JVal::Num)
            .map_err(|_| perr(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, PipelineError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(perr("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| perr("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| perr("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| perr("non-utf8 \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| perr("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than paired;
                            // the protocol never needs astral characters.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(perr(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| perr("request is not valid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JVal, PipelineError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(perr("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JVal, PipelineError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return Err(perr("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses one line into the protocol's JSON subset. Trailing
/// non-whitespace after the value is an error.
pub fn parse_json(line: &str) -> Result<JVal, PipelineError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(perr(format!("trailing bytes after value at {}", p.pos)));
    }
    Ok(v)
}

// ----------------------------------------------------------- extraction

fn get<'v>(fields: &'v [(String, JVal)], key: &str) -> Option<&'v JVal> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn usize_field(
    fields: &[(String, JVal)],
    key: &str,
    default: usize,
) -> Result<usize, PipelineError> {
    match get(fields, key) {
        None => Ok(default),
        Some(JVal::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
            Ok(*n as usize)
        }
        Some(v) => Err(perr(format!(
            "field `{key}` must be a small non-negative integer, got {}",
            v.type_name()
        ))),
    }
}

fn num_field(fields: &[(String, JVal)], key: &str) -> Result<f64, PipelineError> {
    match get(fields, key) {
        Some(JVal::Num(n)) => Ok(*n),
        Some(v) => Err(perr(format!(
            "field `{key}` must be a number, got {}",
            v.type_name()
        ))),
        None => Err(perr(format!("missing field `{key}`"))),
    }
}

fn str_field<'v>(fields: &'v [(String, JVal)], key: &str) -> Result<&'v str, PipelineError> {
    match get(fields, key) {
        Some(JVal::Str(s)) => Ok(s),
        Some(v) => Err(perr(format!(
            "field `{key}` must be a string, got {}",
            v.type_name()
        ))),
        None => Err(perr(format!("missing field `{key}`"))),
    }
}

fn labeling_field(fields: &[(String, JVal)]) -> Result<EdgeLabeling, PipelineError> {
    match get(fields, "labeling") {
        None => Ok(EdgeLabeling::GrossWeight),
        Some(JVal::Str(s)) => match s.as_str() {
            "gw" | "weight" => Ok(EdgeLabeling::GrossWeight),
            "th" | "hours" => Ok(EdgeLabeling::TransitHours),
            "td" | "distance" => Ok(EdgeLabeling::TotalDistance),
            other => Err(perr(format!(
                "unknown labeling `{other}` (use gw, th, or td)"
            ))),
        },
        Some(v) => Err(perr(format!(
            "field `labeling` must be a string, got {}",
            v.type_name()
        ))),
    }
}

fn record_field(fields: &[(String, JVal)]) -> Result<Transaction, PipelineError> {
    let mode = match get(fields, "mode") {
        None => TransMode::Truckload,
        Some(JVal::Str(s)) => TransMode::parse(s)
            .ok_or_else(|| perr(format!("unknown mode `{s}` (use TL or LTL)")))?,
        Some(v) => {
            return Err(perr(format!(
                "field `mode` must be a string, got {}",
                v.type_name()
            )))
        }
    };
    let day = num_field(fields, "pickup")?;
    if !(0.0..=u32::MAX as f64).contains(&day) || day.fract() != 0.0 {
        return Err(perr("field `pickup` must be a whole day number"));
    }
    let pickup = Date(day as u32);
    let delivery = match get(fields, "delivery") {
        None => pickup,
        Some(JVal::Num(n)) if (0.0..=u32::MAX as f64).contains(n) && n.fract() == 0.0 => {
            Date(*n as u32)
        }
        Some(_) => return Err(perr("field `delivery` must be a whole day number")),
    };
    let id = num_field(fields, "id")?;
    if !(0.0..=u64::MAX as f64).contains(&id) || id.fract() != 0.0 {
        return Err(perr("field `id` must be a non-negative integer"));
    }
    Ok(Transaction {
        id: id as u64,
        req_pickup: pickup,
        req_delivery: delivery,
        origin: LatLon::new(num_field(fields, "olat")?, num_field(fields, "olon")?),
        dest: LatLon::new(num_field(fields, "dlat")?, num_field(fields, "dlon")?),
        total_distance: num_field(fields, "distance")?,
        gross_weight: num_field(fields, "weight")?,
        transit_hours: num_field(fields, "hours")?,
        mode,
    })
}

/// Parses one request line. All protocol violations come back as
/// [`PipelineError::Protocol`] so the server can reply without killing
/// the connection.
pub fn parse_request(line: &str) -> Result<Request, PipelineError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(perr(format!(
            "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
            line.len()
        )));
    }
    let JVal::Obj(fields) = parse_json(line)? else {
        return Err(perr("request must be a JSON object"));
    };
    match str_field(&fields, "op")? {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "trace" => Ok(Request::Trace),
        "shutdown" => Ok(Request::Shutdown),
        "support" => {
            let labels = match get(&fields, "labels") {
                Some(JVal::Arr(items)) => items
                    .iter()
                    .map(|v| match v {
                        JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                            Ok(ELabel(*n as u32))
                        }
                        other => Err(perr(format!(
                            "`labels` entries must be bin indices, got {}",
                            other.type_name()
                        ))),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(v) => {
                    return Err(perr(format!(
                        "field `labels` must be an array, got {}",
                        v.type_name()
                    )))
                }
                None => return Err(perr("missing field `labels`")),
            };
            Ok(Request::Support {
                labeling: labeling_field(&fields)?,
                labels,
            })
        }
        "pattern" => {
            let strategy = match get(&fields, "strategy") {
                None => Strategy::BreadthFirst,
                Some(JVal::Str(s)) => match s.as_str() {
                    "bf" | "breadth" => Strategy::BreadthFirst,
                    "df" | "depth" => Strategy::DepthFirst,
                    other => return Err(perr(format!("unknown strategy `{other}` (bf|df)"))),
                },
                Some(v) => {
                    return Err(perr(format!(
                        "field `strategy` must be a string, got {}",
                        v.type_name()
                    )))
                }
            };
            let support = usize_field(&fields, "support", 5)?;
            if support == 0 {
                return Err(perr("field `support` must be at least 1"));
            }
            Ok(Request::Pattern {
                labeling: labeling_field(&fields)?,
                strategy,
                partitions: usize_field(&fields, "partitions", 16)?.max(1),
                support,
                max_edges: usize_field(&fields, "max_edges", 5)?.max(1),
                reps: usize_field(&fields, "reps", 2)?.max(1),
                top: usize_field(&fields, "top", 15)?,
            })
        }
        "ingest" => {
            let records = match get(&fields, "records") {
                Some(JVal::Arr(items)) => items
                    .iter()
                    .map(|v| match v {
                        JVal::Obj(rec) => record_field(rec),
                        other => Err(perr(format!(
                            "`records` entries must be objects, got {}",
                            other.type_name()
                        ))),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(v) => {
                    return Err(perr(format!(
                        "field `records` must be an array, got {}",
                        v.type_name()
                    )))
                }
                None => return Err(perr("missing field `records`")),
            };
            Ok(Request::Ingest { records })
        }
        "delete" => {
            let ids = match get(&fields, "ids") {
                Some(JVal::Arr(items)) => items
                    .iter()
                    .map(|v| match v {
                        JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
                        other => Err(perr(format!(
                            "`ids` entries must be transaction ids, got {}",
                            other.type_name()
                        ))),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(v) => {
                    return Err(perr(format!(
                        "field `ids` must be an array, got {}",
                        v.type_name()
                    )))
                }
                None => return Err(perr("missing field `ids`")),
            };
            Ok(Request::Delete { ids })
        }
        other => Err(perr(format!("unknown op `{other}`"))),
    }
}

// ---------------------------------------------------------- serialization

/// JSON-escapes `s` and wraps it in quotes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The one-line error reply for `err`.
pub fn error_reply(err: &PipelineError) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":{},\"message\":{}}}}}",
        json_string(err.kind()),
        json_string(&err.to_string())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_ops() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#" {"op": "stats"} "#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn pattern_defaults_match_tnet_mine() {
        let r = parse_request(r#"{"op":"pattern"}"#).unwrap();
        assert_eq!(
            r,
            Request::Pattern {
                labeling: EdgeLabeling::GrossWeight,
                strategy: Strategy::BreadthFirst,
                partitions: 16,
                support: 5,
                max_edges: 5,
                reps: 2,
                top: 15,
            }
        );
    }

    #[test]
    fn canonical_form_is_field_order_independent() {
        let a = parse_request(r#"{"op":"pattern","support":3,"labeling":"th"}"#).unwrap();
        let b = parse_request(r#"{"labeling":"hours","op":"pattern","support":3}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        let c = parse_request(r#"{"op":"pattern","support":4,"labeling":"th"}"#).unwrap();
        assert_ne!(a.canonical(), c.canonical());
        // Defaults spelled out canonicalize the same as defaults omitted.
        let d = parse_request(r#"{"op":"pattern","support":5}"#).unwrap();
        let e = parse_request(r#"{"op":"pattern"}"#).unwrap();
        assert_eq!(d.canonical(), e.canonical());
    }

    #[test]
    fn mutations_are_not_cacheable() {
        let r = parse_request(r#"{"op":"delete","ids":[1,2]}"#).unwrap();
        assert_eq!(r.canonical(), None);
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap().canonical(), None);
        assert_eq!(
            parse_request(r#"{"op":"trace"}"#).unwrap().canonical(),
            None
        );
    }

    #[test]
    fn support_request_round_trip() {
        let r = parse_request(r#"{"op":"support","labeling":"td","labels":[2,0,1]}"#).unwrap();
        assert_eq!(
            r,
            Request::Support {
                labeling: EdgeLabeling::TotalDistance,
                labels: vec![ELabel(2), ELabel(0), ELabel(1)],
            }
        );
        assert_eq!(
            r.canonical().unwrap(),
            "support labeling=OD_TD labels=2,0,1"
        );
    }

    #[test]
    fn ingest_records_parse() {
        let line = r#"{"op":"ingest","records":[{"id":7,"pickup":733000,"delivery":733002,
            "olat":33.7,"olon":-84.4,"dlat":35.1,"dlon":-90.0,
            "distance":380.5,"weight":25000.0,"hours":9.5,"mode":"TL"}]}"#
            .replace('\n', " ");
        let Request::Ingest { records } = parse_request(&line).unwrap() else {
            panic!("not ingest");
        };
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, 7);
        assert_eq!(records[0].req_pickup, Date(733000));
        assert_eq!(records[0].mode, TransMode::Truckload);
        assert!((records[0].total_distance - 380.5).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_become_protocol_errors() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"support"}"#,
            r#"{"op":"support","labels":["x"]}"#,
            r#"{"op":"pattern","support":0}"#,
            r#"{"op":"ping"} trailing"#,
            r#"{"op":"ingest","records":[{"id":1}]}"#,
            r#"{"op":"pattern","labeling":"zz"}"#,
            &format!(
                "{}{}",
                r#"{"op":"ping","pad":""#,
                "x".repeat(MAX_LINE_BYTES)
            ),
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind(), "protocol", "input: {:.60}", bad);
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let line = format!(r#"{{"op":{}1{}}}"#, "[".repeat(40), "]".repeat(40));
        assert_eq!(parse_request(&line).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn error_reply_is_one_line_typed_json() {
        let err = PipelineError::Protocol {
            message: "unknown op `x`\nboom".into(),
        };
        let reply = error_reply(&err);
        assert!(!reply.contains('\n'), "reply must stay one line");
        assert!(reply.starts_with(r#"{"ok":false,"error":{"kind":"protocol""#));
        assert!(reply.contains("\\n"), "newlines escaped, not emitted");
        let JVal::Obj(o) = parse_json(&reply).unwrap() else {
            panic!()
        };
        assert_eq!(get(&o, "ok"), Some(&JVal::Bool(false)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, JVal::Str("a\"b\\c\ndA".to_string()));
        let s = json_string("a\"b\\c\nd");
        assert_eq!(parse_json(&s).unwrap(), JVal::Str("a\"b\\c\nd".to_string()));
    }

    /// Checks the never-panic contract for one line and, on failure,
    /// that the error reply is itself one line of well-formed JSON.
    fn assert_never_panics(line: &str) {
        if let Err(e) = parse_request(line) {
            let reply = error_reply(&e);
            assert!(!reply.contains('\n'), "multi-line error reply for {line:?}");
            let JVal::Obj(o) = parse_json(&reply).expect("error reply re-parses") else {
                panic!("error reply not an object for {line:?}");
            };
            assert_eq!(get(&o, "ok"), Some(&JVal::Bool(false)));
        }
    }

    /// The dependency-free half of the fuzz suite (the proptest half is
    /// `tests/prop.rs`, gated behind the `prop` feature): a fixed-seed
    /// LCG drives random byte lines — embedded NULs, control bytes,
    /// bracket storms — through the parser. Deterministic, so a
    /// regression reproduces identically in CI.
    #[test]
    fn deterministic_fuzz_never_panics() {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            // SplitMix64: dependency-free, full-period, well-mixed.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // Pure random bytes, lossily decoded like the connection thread
        // does with non-UTF-8 input.
        for _ in 0..2_000 {
            let len = (next() % 256) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
            assert_never_panics(&String::from_utf8_lossy(&bytes));
        }
        // Structure-biased lines: random draws from the protocol's own
        // alphabet, which reach much deeper into the parser.
        const ALPHABET: &[&str] = &[
            "{", "}", "[", "]", "\"", "\\", ":", ",", "\u{0}", "op", "\"op\"", "ping", "ingest",
            "records", "null", "true", "-", "1e309", "0.5", "\\u0041", "\\uZZZZ", " ", "\"id\"",
        ];
        for _ in 0..2_000 {
            let parts = (next() % 48) as usize;
            let line: String = (0..parts)
                .map(|_| ALPHABET[(next() as usize) % ALPHABET.len()])
                .collect();
            assert_never_panics(&line);
        }
        // Mutation fuzz: valid requests with random single-byte edits.
        let seeds = [
            r#"{"op":"ping"}"#.to_string(),
            r#"{"op":"support","labeling":"gw","labels":[0,1,2]}"#.to_string(),
            r#"{"op":"pattern","partitions":4,"support":2,"max_edges":3}"#.to_string(),
            r#"{"op":"ingest","records":[{"id":7,"pickup":733000,"olat":33.7,"olon":-84.4,"dlat":35.1,"dlon":-90.0,"distance":380.5,"weight":25000.0,"hours":9.5}]}"#.to_string(),
        ];
        for _ in 0..2_000 {
            let mut bytes = seeds[(next() as usize) % seeds.len()].clone().into_bytes();
            for _ in 0..=(next() % 3) {
                let at = (next() as usize) % bytes.len();
                bytes[at] = (next() & 0xFF) as u8;
            }
            assert_never_panics(&String::from_utf8_lossy(&bytes));
        }
        // Nesting storms beyond MAX_DEPTH must error, never overflow.
        for depth in [MAX_DEPTH + 1, 64, 1024, 4096] {
            let arr = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
            assert_eq!(parse_request(&arr).unwrap_err().kind(), "protocol");
            let obj = format!("{}1{}", "{\"k\":".repeat(depth), "}".repeat(depth));
            assert_eq!(parse_request(&obj).unwrap_err().kind(), "protocol");
        }
    }
}
