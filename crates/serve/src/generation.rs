//! An immutable generation: the unit readers pin and the writer swaps.
//!
//! A generation is the live transaction set at one publish instant plus
//! everything a query needs precomputed from it: the fitted
//! [`BinScheme`] and, per edge labeling, the deduplicated OD
//! [`Graph`] and its [`FrozenGraph`] CSR snapshot. Construction runs
//! the *same* code path as the offline commands (`fit_width_transactions`
//! → `build_od_graph` → `dedup_edges` → `freeze`), which is what makes
//! query replies byte-identical to `tnet mine` / `tnet stats` on a dump
//! of the same snapshot — the differential tests rely on it.
//!
//! Everything here is built by the writer thread *before* the epoch
//! swap; readers touch only `&self`.

use tnet_core::error::PipelineError;
use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_graph::frozen::FrozenGraph;
use tnet_graph::graph::Graph;

/// One edge labeling's view of the snapshot.
pub struct LabeledGraph {
    /// The deduplicated OD graph (arena form — what Algorithm 1 mines).
    pub graph: Graph,
    /// The CSR freeze of `graph` (what support queries walk).
    pub frozen: FrozenGraph,
}

/// Snapshot data that only exists when the dataset is non-empty.
pub struct GenData {
    pub scheme: BinScheme,
    /// Indexed by [`labeling_index`]: OD_GW, OD_TH, OD_TD.
    pub graphs: [LabeledGraph; 3],
}

/// A published snapshot: id, live transactions, and derived graphs.
pub struct Generation {
    /// Monotone publish ordinal (0 = the pre-ingest genesis).
    pub id: u64,
    /// Live transactions (appends minus tombstoned deletes), in ingest
    /// order — the exact set an offline run would read from a CSV dump.
    pub txns: Vec<Transaction>,
    /// `None` only for an empty dataset, which has nothing to fit or
    /// mine; stats still answers, graph queries explain themselves.
    pub data: Option<GenData>,
}

/// The `graphs` slot for a labeling.
pub fn labeling_index(l: EdgeLabeling) -> usize {
    match l {
        EdgeLabeling::GrossWeight => 0,
        EdgeLabeling::TransitHours => 1,
        EdgeLabeling::TotalDistance => 2,
    }
}

impl Generation {
    /// Builds a generation from the live transaction set. Fails only
    /// when bin fitting rejects a non-empty set (degenerate ranges) —
    /// the caller keeps serving the previous generation in that case.
    pub fn build(id: u64, txns: Vec<Transaction>) -> Result<Generation, PipelineError> {
        if txns.is_empty() {
            return Ok(Generation {
                id,
                txns,
                data: None,
            });
        }
        let scheme = BinScheme::fit_width_transactions(&txns)?;
        let build = |labeling| {
            let mut g = build_od_graph(&txns, &scheme, labeling, VertexLabeling::Uniform).graph;
            g.dedup_edges();
            let frozen = g.freeze();
            LabeledGraph { graph: g, frozen }
        };
        let graphs = [
            build(EdgeLabeling::GrossWeight),
            build(EdgeLabeling::TransitHours),
            build(EdgeLabeling::TotalDistance),
        ];
        Ok(Generation {
            id,
            txns,
            data: Some(GenData { scheme, graphs }),
        })
    }

    /// The labeling's view, or a uniform protocol-level explanation for
    /// the empty dataset.
    pub fn labeled(&self, labeling: EdgeLabeling) -> Result<&LabeledGraph, PipelineError> {
        match &self.data {
            Some(d) => Ok(&d.graphs[labeling_index(labeling)]),
            None => Err(PipelineError::Protocol {
                message: format!(
                    "generation {} holds no transactions yet; ingest before querying graphs",
                    self.id
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::view::GraphView;

    fn sample_txns(n: usize) -> Vec<Transaction> {
        let cfg = tnet_data::synth::SynthConfig::scaled(0.01).with_seed(7);
        let mut txns = tnet_data::synth::generate(&cfg).transactions;
        txns.truncate(n);
        txns
    }

    #[test]
    fn empty_generation_has_no_graphs() {
        let g = Generation::build(0, Vec::new()).unwrap();
        assert!(g.data.is_none());
        let Err(err) = g.labeled(EdgeLabeling::GrossWeight) else {
            panic!("empty generation must not expose a graph");
        };
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn build_matches_offline_pipeline() {
        let txns = sample_txns(200);
        let g = Generation::build(3, txns.clone()).unwrap();
        assert_eq!(g.id, 3);
        // Rebuild offline exactly as `tnet mine` does and compare shape.
        let scheme = BinScheme::fit_width_transactions(&txns).unwrap();
        for labeling in [
            EdgeLabeling::GrossWeight,
            EdgeLabeling::TransitHours,
            EdgeLabeling::TotalDistance,
        ] {
            let mut offline =
                build_od_graph(&txns, &scheme, labeling, VertexLabeling::Uniform).graph;
            offline.dedup_edges();
            let lg = g.labeled(labeling).unwrap();
            assert_eq!(lg.graph.vertex_count(), offline.vertex_count());
            assert_eq!(lg.graph.edge_count(), offline.edge_count());
            assert_eq!(lg.frozen.vertex_count(), offline.vertex_count());
            assert_eq!(lg.frozen.edge_count(), offline.edge_count());
        }
    }
}
