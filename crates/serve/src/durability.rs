//! Durability orchestration: recovery at startup, WAL + checkpoint
//! cadence at runtime.
//!
//! Recovery is a three-state machine (DESIGN.md §13):
//!
//! 1. **Load snapshot** — newest valid checkpoint becomes the base live
//!    set; a missing snapshot means an empty base; a damaged one is a
//!    typed refusal.
//! 2. **Replay WAL tail** — every record with `seq >` the snapshot's
//!    `wal_seq` is re-applied in order. A torn final record is
//!    truncated with a warning (crash mid-append); anything else wrong
//!    mid-log is a typed refusal.
//! 3. **Resume** — the writer continues appending at the recovered
//!    sequence; acknowledged-but-unpublished records are back in the
//!    log and flow into the next generation exactly as if the crash
//!    never happened.
//!
//! At runtime, [`Durability`] is owned by the writer thread and decides
//! *when* bytes reach the platter ([`FsyncPolicy`]) and when the log is
//! folded into a checkpoint (`snapshot_every` acknowledged records —
//! transactions appended plus ids deleted, not WAL batches).

use crate::snapshot::{self, Snapshot};
use crate::wal::{self, FsyncPolicy, WalOp, WalWriter};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use tnet_core::error::PipelineError;
use tnet_data::model::Transaction;
use tnet_exec::failpoint;
use tnet_obs::{LatencyHistogram, MetricsRegistry};

/// File name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Path of the WAL in `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Durable-storage knobs, all wired to `tnet serve` flags.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snapshot.bin` (created if
    /// absent).
    pub data_dir: PathBuf,
    /// When acknowledged records reach the platter.
    pub fsync: FsyncPolicy,
    /// Fold the log into a checkpoint every this many acknowledged
    /// records — transactions appended plus ids deleted (0 = never
    /// snapshot; the WAL grows unboundedly).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 0,
        }
    }
}

/// What recovery reconstructed from a data directory.
#[derive(Debug)]
pub struct Recovered {
    /// The live transaction set (snapshot base + replayed tail, minus
    /// tombstones).
    pub live: Vec<Transaction>,
    /// Highest WAL sequence seen; the writer resumes after this.
    pub wal_seq: u64,
    /// WAL records whose effects were re-applied (seq > snapshot).
    pub replayed: u64,
    /// WAL records skipped because the snapshot already held them.
    pub skipped: u64,
    /// Transactions that came from the snapshot base.
    pub snapshot_records: u64,
    /// Bytes of torn tail truncated (0 = the log ended cleanly).
    pub torn_bytes: u64,
}

impl Recovered {
    /// True when the directory held any durable state at all — used to
    /// decide whether `--input` seed data applies or is superseded.
    pub fn has_state(&self) -> bool {
        self.wal_seq > 0 || self.snapshot_records > 0 || !self.live.is_empty()
    }
}

/// Recovers daemon state from `dir`, truncating a torn WAL tail in
/// place. Counters land under `recover.*`; the torn-tail warning goes
/// to stderr (the daemon's operational channel).
pub fn recover(dir: &Path, registry: &MetricsRegistry) -> Result<Recovered, PipelineError> {
    failpoint::hit("serve::recover").map_err(|f| PipelineError::Io(f.to_string()))?;
    std::fs::create_dir_all(dir)
        .map_err(|e| PipelineError::Io(format!("cannot create data dir {}: {e}", dir.display())))?;

    // State 1: the snapshot is the base.
    let snap = snapshot::read(dir)?;
    let (mut log, snap_seq) = match snap {
        Some(Snapshot { wal_seq, txns }) => {
            registry.add("recover.snapshot_records", txns.len() as u64);
            (txns, wal_seq)
        }
        None => (Vec::new(), 0),
    };

    // State 2: replay the WAL tail.
    let path = wal_path(dir);
    let replay = wal::replay(&path)?;
    if replay.torn_bytes > 0 {
        eprintln!(
            "tnet serve: warning: truncating {} torn byte(s) at the tail of {} \
             (crash interrupted the final append; all checksummed records were kept)",
            replay.torn_bytes,
            path.display()
        );
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| PipelineError::Io(format!("cannot open WAL for truncation: {e}")))?;
        f.set_len(replay.valid_len)
            .and_then(|()| f.sync_data())
            .map_err(|e| PipelineError::Io(format!("cannot truncate torn WAL tail: {e}")))?;
        registry.add("recover.torn_bytes", replay.torn_bytes);
        registry.add("recover.torn_truncations", 1);
    }

    let mut deleted: HashSet<u64> = HashSet::new();
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    let mut wal_seq = snap_seq;
    for record in replay.records {
        wal_seq = wal_seq.max(record.seq);
        if record.seq <= snap_seq {
            // The snapshot already incorporates this record — the crash
            // landed between checkpoint rename and WAL truncation.
            skipped += 1;
            continue;
        }
        replayed += 1;
        match record.op {
            WalOp::Append(mut txns) => log.append(&mut txns),
            WalOp::Delete(ids) => deleted.extend(ids),
        }
    }
    let snapshot_records = registry.get("recover.snapshot_records");
    let live: Vec<Transaction> = if deleted.is_empty() {
        log
    } else {
        log.into_iter()
            .filter(|t| !deleted.contains(&t.id))
            .collect()
    };
    registry.add("recover.wal_records", replayed);
    registry.add("recover.wal_skipped", skipped);
    registry.add("recover.live_records", live.len() as u64);
    Ok(Recovered {
        live,
        wal_seq,
        replayed,
        skipped,
        snapshot_records,
        torn_bytes: replay.torn_bytes,
    })
}

/// The writer thread's durable half: owns the WAL appender and decides
/// fsync and checkpoint timing.
pub struct Durability {
    wal: WalWriter,
    dir: PathBuf,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    /// WAL records appended since the last successful checkpoint.
    since_snapshot: u64,
    last_sync: Instant,
    registry: MetricsRegistry,
    fsync_latency: Arc<LatencyHistogram>,
}

impl Durability {
    /// Opens the WAL for appending after [`recover`] established
    /// `wal_seq`.
    pub fn open(
        cfg: &DurabilityConfig,
        wal_seq: u64,
        registry: MetricsRegistry,
        fsync_latency: Arc<LatencyHistogram>,
    ) -> Result<Durability, PipelineError> {
        let wal = WalWriter::open(&wal_path(&cfg.data_dir), wal_seq)?;
        Ok(Durability {
            wal,
            dir: cfg.data_dir.clone(),
            fsync: cfg.fsync,
            snapshot_every: cfg.snapshot_every,
            since_snapshot: 0,
            last_sync: Instant::now(),
            registry,
            fsync_latency,
        })
    }

    /// Appends one op to the WAL and applies the fsync policy. On
    /// `Ok`, an acknowledgment honoring the policy may be sent.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, PipelineError> {
        let seq = self.wal.append(op).inspect_err(|_| {
            self.registry.add("wal.append_failures", 1);
        })?;
        self.registry.add("wal.records", 1);
        // Cadence counts individual records, not batches: a single
        // 10k-record batch should trip a `--snapshot-every 1000` daemon.
        self.since_snapshot += match op {
            WalOp::Append(txns) => txns.len() as u64,
            WalOp::Delete(ids) => ids.len() as u64,
        };
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(d) => {
                if self.last_sync.elapsed() >= d {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// fsyncs outstanding appends now, timing the call into the
    /// `wal.fsync` histogram.
    pub fn sync(&mut self) -> Result<(), PipelineError> {
        let started = Instant::now();
        self.wal.sync().inspect_err(|_| {
            self.registry.add("wal.fsync_failures", 1);
        })?;
        self.fsync_latency.record_duration(started.elapsed());
        self.registry.add("wal.fsyncs", 1);
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Timer hook from the writer loop: under `interval` fsync, flush
    /// when the window has elapsed. Errors are counted inside
    /// [`Durability::sync`]; the loop keeps running.
    pub fn tick(&mut self) {
        if let FsyncPolicy::Interval(d) = self.fsync {
            if self.last_sync.elapsed() >= d {
                let _ = self.sync();
            }
        }
    }

    /// True when the checkpoint cadence is due — split from
    /// [`Durability::maybe_snapshot`] so the writer only materializes
    /// the live set when a checkpoint will actually happen.
    pub fn needs_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every
    }

    /// Checkpoints `live` and truncates the WAL when `snapshot_every`
    /// records have accumulated. Failures are counted, not fatal: the
    /// WAL keeps every record the missing checkpoint would have held,
    /// so durability is unaffected — only replay time grows.
    pub fn maybe_snapshot(&mut self, live: &[Transaction]) -> bool {
        if !self.needs_snapshot() {
            return false;
        }
        self.force_snapshot(live)
    }

    /// Unconditionally checkpoints `live` (used by `maybe_snapshot` and
    /// the shutdown path).
    pub fn force_snapshot(&mut self, live: &[Transaction]) -> bool {
        // The checkpoint must not claim records the page cache still
        // owns: fsync the WAL first so `wal_seq` is durable-or-better
        // everywhere the snapshot asserts it.
        if self.sync().is_err() {
            self.registry.add("snapshot.write_failures", 1);
            return false;
        }
        let snap = Snapshot {
            wal_seq: self.wal.seq,
            txns: live.to_vec(),
        };
        match snapshot::write(&self.dir, &snap) {
            Ok(()) => {
                self.registry.add("snapshot.writes", 1);
                self.registry.add("snapshot.records", live.len() as u64);
                self.since_snapshot = 0;
                match self.wal.truncate() {
                    Ok(()) => {
                        self.registry.add("wal.truncations", 1);
                    }
                    Err(_) => {
                        // Harmless: replay will skip by seq. Counted so
                        // operators can see the log isn't shrinking.
                        self.registry.add("wal.truncation_failures", 1);
                    }
                }
                true
            }
            Err(_) => {
                self.registry.add("snapshot.write_failures", 1);
                false
            }
        }
    }

    /// Current WAL length in bytes (for tests and the `trace` op).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Sequence of the last appended WAL record.
    pub fn wal_seq(&self) -> u64 {
        self.wal.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::{Date, LatLon, TransMode};

    fn txn(id: u64) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(733000),
            req_delivery: Date(733001),
            origin: LatLon::new(29.7, -95.3),
            dest: LatLon::new(32.7, -96.8),
            total_distance: 240.0,
            gross_weight: 30000.0,
            transit_hours: 5.0 + id as f64,
            mode: TransMode::Truckload,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tnet_dur_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn dur(dir: &Path, fsync: FsyncPolicy, every: u64, reg: &MetricsRegistry) -> Durability {
        Durability::open(
            &DurabilityConfig {
                data_dir: dir.to_path_buf(),
                fsync,
                snapshot_every: every,
            },
            0,
            reg.clone(),
            Arc::new(LatencyHistogram::new()),
        )
        .unwrap()
    }

    #[test]
    fn fresh_dir_recovers_empty() {
        let dir = tmp_dir("fresh");
        let reg = MetricsRegistry::new();
        let r = recover(&dir, &reg).unwrap();
        assert!(!r.has_state());
        assert!(r.live.is_empty());
        assert_eq!(r.wal_seq, 0);
    }

    #[test]
    fn wal_only_recovery_reapplies_everything() {
        let dir = tmp_dir("wal_only");
        let reg = MetricsRegistry::new();
        {
            let mut d = dur(&dir, FsyncPolicy::Always, 0, &reg);
            d.append(&WalOp::Append(vec![txn(1), txn(2), txn(3)]))
                .unwrap();
            d.append(&WalOp::Delete(vec![2])).unwrap();
            d.append(&WalOp::Append(vec![txn(4)])).unwrap();
        }
        let r = recover(&dir, &reg).unwrap();
        assert!(r.has_state());
        assert_eq!(r.wal_seq, 3);
        assert_eq!(r.replayed, 3);
        assert_eq!(
            r.live.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![1, 3, 4],
            "delete tombstone applied during replay"
        );
        assert_eq!(reg.get("recover.wal_records"), 3);
        assert_eq!(reg.get("recover.live_records"), 3);
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = tmp_dir("snap_tail");
        let reg = MetricsRegistry::new();
        {
            let mut d = dur(&dir, FsyncPolicy::Never, 0, &reg);
            d.append(&WalOp::Append(vec![txn(1), txn(2)])).unwrap();
            assert!(d.force_snapshot(&[txn(1), txn(2)]));
            assert!(d.wal_len() == 0, "checkpoint truncated the log");
            d.append(&WalOp::Append(vec![txn(3)])).unwrap();
            d.sync().unwrap();
        }
        let r = recover(&dir, &reg).unwrap();
        assert_eq!(r.snapshot_records, 2);
        assert_eq!(r.replayed, 1, "only the post-checkpoint tail replays");
        // One WAL record per batch: the pre-checkpoint batch was seq 1,
        // the tail batch seq 2.
        assert_eq!(r.wal_seq, 2);
        assert_eq!(r.live.len(), 3);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_by_seq() {
        let dir = tmp_dir("skip");
        let reg = MetricsRegistry::new();
        {
            let mut d = dur(&dir, FsyncPolicy::Always, 0, &reg);
            d.append(&WalOp::Append(vec![txn(1)])).unwrap();
            d.append(&WalOp::Append(vec![txn(2)])).unwrap();
            // Simulate the crash window: checkpoint written, WAL NOT
            // truncated.
            snapshot::write(
                &dir,
                &Snapshot {
                    wal_seq: d.wal_seq(),
                    txns: vec![txn(1), txn(2)],
                },
            )
            .unwrap();
        }
        let r = recover(&dir, &reg).unwrap();
        assert_eq!(r.skipped, 2, "both records predate the checkpoint");
        assert_eq!(r.replayed, 0);
        assert_eq!(r.live.len(), 2, "no double-apply");
    }

    #[test]
    fn snapshot_cadence_fires_every_n_records() {
        let dir = tmp_dir("cadence");
        let reg = MetricsRegistry::new();
        let mut d = dur(&dir, FsyncPolicy::Never, 2, &reg);
        d.append(&WalOp::Append(vec![txn(1)])).unwrap();
        assert!(!d.maybe_snapshot(&[txn(1)]), "below threshold");
        d.append(&WalOp::Append(vec![txn(2)])).unwrap();
        assert!(d.maybe_snapshot(&[txn(1), txn(2)]), "threshold reached");
        assert_eq!(reg.get("snapshot.writes"), 1);
        assert_eq!(reg.get("wal.truncations"), 1);
        d.append(&WalOp::Append(vec![txn(3)])).unwrap();
        assert!(!d.maybe_snapshot(&[txn(3)]), "counter reset by checkpoint");
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = tmp_dir("torn");
        let reg = MetricsRegistry::new();
        {
            let mut d = dur(&dir, FsyncPolicy::Always, 0, &reg);
            d.append(&WalOp::Append(vec![txn(1)])).unwrap();
        }
        // Append garbage that looks like a half-written record.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(wal_path(&dir))
            .unwrap();
        f.write_all(&[0x10, 0, 0, 0, 0xAA]).unwrap();
        drop(f);
        let r = recover(&dir, &reg).unwrap();
        assert_eq!(r.torn_bytes, 5);
        assert_eq!(r.live.len(), 1);
        assert_eq!(reg.get("recover.torn_truncations"), 1);
        // The file was actually truncated: a second recovery is clean.
        let reg2 = MetricsRegistry::new();
        let r2 = recover(&dir, &reg2).unwrap();
        assert_eq!(r2.torn_bytes, 0);
        assert_eq!(r2.live.len(), 1);
    }

    #[test]
    fn midlog_corruption_refuses_recovery() {
        let dir = tmp_dir("corrupt");
        let reg = MetricsRegistry::new();
        {
            let mut d = dur(&dir, FsyncPolicy::Always, 0, &reg);
            d.append(&WalOp::Append(vec![txn(1), txn(2)])).unwrap();
            d.append(&WalOp::Append(vec![txn(3)])).unwrap();
        }
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x08; // inside the first record's payload
        std::fs::write(&path, &bytes).unwrap();
        let err = recover(&dir, &reg).unwrap_err();
        assert_eq!(err.kind(), "corruption");
    }

    #[test]
    fn recover_failpoint_injects() {
        let _g = crate::failpoint_test_guard();
        let dir = tmp_dir("failpoint");
        let reg = MetricsRegistry::new();
        failpoint::arm("serve::recover=err").unwrap();
        let err = recover(&dir, &reg).unwrap_err();
        failpoint::disarm();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("serve::recover"));
    }

    #[test]
    fn append_failpoint_counts_and_errors() {
        let _g = crate::failpoint_test_guard();
        let dir = tmp_dir("append_fp");
        let reg = MetricsRegistry::new();
        let mut d = dur(&dir, FsyncPolicy::Always, 0, &reg);
        failpoint::arm("serve::wal_append=err").unwrap();
        let err = d.append(&WalOp::Append(vec![txn(1)])).unwrap_err();
        failpoint::disarm();
        assert_eq!(err.kind(), "io");
        assert_eq!(reg.get("wal.append_failures"), 1);
        // The failed record never reached the log.
        let r = recover(&dir, &MetricsRegistry::new()).unwrap();
        assert!(r.live.is_empty());
    }

    #[test]
    fn always_policy_fsyncs_per_append() {
        let dir = tmp_dir("always");
        let reg = MetricsRegistry::new();
        let mut d = dur(&dir, FsyncPolicy::Always, 0, &reg);
        d.append(&WalOp::Append(vec![txn(1)])).unwrap();
        d.append(&WalOp::Delete(vec![1])).unwrap();
        assert_eq!(reg.get("wal.fsyncs"), 2);
        let mut never = dur(&tmp_dir("never"), FsyncPolicy::Never, 0, &reg);
        let before = reg.get("wal.fsyncs");
        never.append(&WalOp::Append(vec![txn(1)])).unwrap();
        assert_eq!(reg.get("wal.fsyncs"), before, "never policy skips fsync");
    }
}
