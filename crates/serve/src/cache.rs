//! The result cache: LRU over `(generation, canonical query)` keys.
//!
//! Identical queries against the same generation are deterministic, so
//! their serialized replies can be replayed verbatim. Keying on the
//! generation id means a publish invalidates the whole cache *by
//! construction* — stale entries simply stop being asked for and age
//! out of the LRU; there is no invalidation walk and no epoch in the
//! cache itself.
//!
//! The store sits behind one mutex, but the read path never *blocks* on
//! it: lookups and inserts use `try_lock`, and contention is just
//! treated as a miss (the query recomputes — correct either way, since
//! the cache is a pure memo). Recency is a logical tick, not a clock,
//! so eviction order is deterministic and testable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: the generation the reply was computed against plus the
/// canonical form of the query (fixed field order, defaults filled).
pub type CacheKey = (u64, String);

#[derive(Default)]
struct Lru {
    /// value → (serialized reply, last-touched tick).
    map: HashMap<CacheKey, (String, u64)>,
    tick: u64,
}

/// A bounded memo of serialized query replies.
pub struct ResultCache {
    inner: Mutex<Lru>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` replies (0 disables caching:
    /// every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cached reply for `key`, refreshing its recency. A contended
    /// lock counts as a miss rather than blocking the reader.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let Ok(mut lru) = self.inner.try_lock() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        lru.tick += 1;
        let tick = lru.tick;
        match lru.map.get_mut(key) {
            Some((value, touched)) => {
                *touched = tick;
                let v = value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a reply, evicting the least-recently-touched entry if the
    /// cache is full. Skipped entirely under lock contention.
    pub fn put(&self, key: CacheKey, value: String) {
        if self.capacity == 0 {
            return;
        }
        let Ok(mut lru) = self.inner.try_lock() else {
            return;
        };
        lru.tick += 1;
        let tick = lru.tick;
        lru.map.insert(key, (value, tick));
        while lru.map.len() > self.capacity {
            let coldest = lru
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            lru.map.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently stored (test/diagnostic helper).
    pub fn len(&self) -> usize {
        self.inner.lock().map(|l| l.map.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(generation: u64, q: &str) -> CacheKey {
        (generation, q.to_string())
    }

    #[test]
    fn hit_after_put_miss_before() {
        let c = ResultCache::new(4);
        assert_eq!(c.get(&k(1, "stats")), None);
        c.put(k(1, "stats"), "reply".into());
        assert_eq!(c.get(&k(1, "stats")).as_deref(), Some("reply"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn generation_is_part_of_the_key() {
        let c = ResultCache::new(4);
        c.put(k(1, "stats"), "old".into());
        assert_eq!(c.get(&k(2, "stats")), None, "new generation = fresh key");
        assert_eq!(c.get(&k(1, "stats")).as_deref(), Some("old"));
    }

    #[test]
    fn evicts_least_recently_touched_first() {
        let c = ResultCache::new(2);
        c.put(k(1, "a"), "A".into());
        c.put(k(1, "b"), "B".into());
        // Touch `a` so `b` is coldest, then overflow.
        assert!(c.get(&k(1, "a")).is_some());
        c.put(k(1, "c"), "C".into());
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&k(1, "b")), None, "coldest entry evicted");
        assert!(c.get(&k(1, "a")).is_some());
        assert!(c.get(&k(1, "c")).is_some());
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let c = ResultCache::new(2);
        c.put(k(1, "a"), "A".into());
        c.put(k(1, "a"), "A2".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k(1, "a")).as_deref(), Some("A2"));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        c.put(k(1, "a"), "A".into());
        assert_eq!(c.get(&k(1, "a")), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 1);
    }
}
