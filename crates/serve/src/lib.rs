//! `tnet-serve` — the generational pattern-mining daemon.
//!
//! The paper mines one static six-month OD snapshot offline; the
//! ROADMAP's north star is the same discovery pipeline as a long-lived
//! service under continuous traffic. This crate is that serving layer,
//! std-only like the rest of the workspace:
//!
//! - [`epoch`] — the hand-rolled arc-swap: a single writer publishes
//!   immutable [`generation::Generation`] snapshots through a
//!   hazard-pointer cell; readers pin the current one with a few atomic
//!   operations and zero locks.
//! - [`generation`] — the snapshot itself: live transactions plus the
//!   deduplicated OD graph and frozen CSR per edge labeling, built by
//!   the *same* code path as `tnet mine` / `tnet stats` so online
//!   replies are byte-identical to offline runs on the same data.
//! - [`writer`] — the single mutator: batched appends and tombstone
//!   deletes into the transaction log, periodic (or forced) publishes,
//!   and graceful degradation when a publish fails (the `serve::publish`
//!   failpoint tests exactly that).
//! - [`crc`] / [`wal`] / [`snapshot`] / [`durability`] — the durable
//!   half: every accepted mutation is appended to a CRC32C-checksummed
//!   write-ahead log *before* it is acknowledged or publishable,
//!   periodic checkpoints bound replay time, and startup recovery
//!   rebuilds the live set (truncating a torn tail with a warning,
//!   refusing mid-log corruption with a typed error). DESIGN.md §13.
//! - [`cache`] — an LRU memo of serialized replies keyed on
//!   `(generation, canonical query)`, invalidated by generation
//!   turnover rather than by any explicit walk.
//! - [`proto`] — the newline-delimited JSON wire protocol and its typed
//!   [`tnet_core::error::PipelineError`] error replies.
//! - [`query`] / [`server`] — request execution against a pinned
//!   generation, and the accept/connection/shutdown machinery.
//!
//! Architecture, wire schema, and cache policy: DESIGN.md §12. Client
//! example: README "Serving".

pub mod cache;
pub mod crc;
pub mod durability;
pub mod epoch;
pub mod generation;
pub mod proto;
pub mod query;
pub mod server;
pub mod snapshot;
pub mod wal;
pub mod writer;

pub use cache::ResultCache;
pub use durability::{recover, Durability, DurabilityConfig, Recovered};
pub use epoch::{EpochCell, EpochReader};
pub use generation::Generation;
pub use proto::Request;
pub use server::{start, ServeConfig, ServerHandle};
pub use wal::FsyncPolicy;
pub use writer::{IngestOp, WriterConfig};

/// Serializes tests that arm process-global failpoints, across every
/// module of this crate's unit-test binary.
#[cfg(test)]
pub(crate) fn failpoint_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
