//! The single writer: ingest log, tombstones, WAL, and generation
//! publishes.
//!
//! All mutation flows through one thread. Connection threads forward
//! [`IngestOp`]s over an mpsc channel; the writer first makes each
//! batch durable (WAL append + fsync policy, when a
//! [`Durability`] layer is configured), *then* applies it to its
//! in-memory log and acknowledges the waiting connection — so an
//! `"accepted"` reply is a durability promise, not a hope. On a timer,
//! on a batch threshold, or on demand it materializes the live set into
//! a new [`Generation`] and publishes it through the [`EpochCell`]. A
//! failed build (injected via the `serve::publish` failpoint or a real
//! bin-fit rejection) is *not* fatal: the cell keeps the previous
//! generation, a counter records the failure, and the writer retries on
//! the next trigger — the daemon degrades to serving stale data rather
//! than crashing. A failed WAL append nacks the batch and applies
//! nothing: what cannot be made durable never becomes publishable.

use crate::durability::Durability;
use crate::epoch::EpochCell;
use crate::generation::Generation;
use crate::wal::WalOp;
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tnet_core::error::PipelineError;
use tnet_data::model::Transaction;
use tnet_exec::failpoint;
use tnet_obs::{MetricsRegistry, Span};

/// The channel a connection thread waits on for its durability
/// acknowledgment. `Ok(())` means the batch is in the WAL (to the
/// configured fsync guarantee) and applied; `Err` means it was refused
/// and must not be assumed present.
pub type Ack = Sender<Result<(), PipelineError>>;

/// A mutation forwarded from a connection thread. The optional ack is
/// signalled after the durability decision; `None` callers
/// fire-and-forget (tests, internal seeding).
#[derive(Debug)]
pub enum IngestOp {
    /// Append a batch of transactions to the log.
    Append(Vec<Transaction>, Option<Ack>),
    /// Tombstone transactions by id (idempotent; unknown ids are
    /// harmless).
    Delete(Vec<u64>, Option<Ack>),
    /// Publish now, regardless of timer and batch thresholds.
    Flush,
}

/// Writer-side knobs.
#[derive(Clone, Debug)]
pub struct WriterConfig {
    /// Wall-clock cadence of periodic publishes.
    pub publish_interval: Duration,
    /// Publish as soon as this many records (appends + deletes) are
    /// pending, without waiting for the timer.
    pub batch: usize,
}

impl Default for WriterConfig {
    fn default() -> WriterConfig {
        WriterConfig {
            publish_interval: Duration::from_millis(200),
            batch: 4096,
        }
    }
}

/// The writer's mutable state, separated from the thread loop so tests
/// can drive it synchronously.
pub struct Writer {
    log: Vec<Transaction>,
    deleted: HashSet<u64>,
    /// Records applied since the last successful publish.
    pending: usize,
    next_id: u64,
    cell: Arc<EpochCell<Generation>>,
    durability: Option<Durability>,
    registry: MetricsRegistry,
    span: Span,
}

impl Writer {
    /// A writer whose next publish becomes generation `next_id`,
    /// seeded with `log` (the transactions the daemon started with —
    /// already WAL-resident when `durability` is `Some`, because the
    /// server either recovered them from disk or appended them before
    /// construction).
    pub fn new(
        cell: Arc<EpochCell<Generation>>,
        log: Vec<Transaction>,
        next_id: u64,
        durability: Option<Durability>,
        registry: MetricsRegistry,
        span: Span,
    ) -> Writer {
        Writer {
            log,
            deleted: HashSet::new(),
            pending: 0,
            next_id,
            cell,
            durability,
            registry,
            span,
        }
    }

    /// WAL-appends `op` when durability is on. `Ok` means the batch may
    /// be applied and acknowledged.
    fn persist(&mut self, op: &WalOp) -> Result<(), PipelineError> {
        match &mut self.durability {
            Some(d) => d.append(op).map(|_seq| ()),
            None => Ok(()),
        }
    }

    fn send_ack(ack: Option<Ack>, result: Result<(), PipelineError>) {
        if let Some(ack) = ack {
            // A vanished waiter (client hung up mid-request) is fine;
            // the durability decision stands either way.
            let _ = ack.send(result);
        }
    }

    /// Applies one op: durability first, memory second, ack last.
    /// Returns `true` if the op demands an immediate publish.
    pub fn apply(&mut self, op: IngestOp) -> bool {
        match op {
            IngestOp::Append(records, ack) => {
                let _t = self.span.time("serve.ingest");
                let wal_op = WalOp::Append(records);
                match self.persist(&wal_op) {
                    Ok(()) => {
                        let WalOp::Append(mut records) = wal_op else {
                            unreachable!("append op cannot change variant")
                        };
                        self.pending += records.len();
                        self.registry
                            .add("serve.records_ingested", records.len() as u64);
                        self.log.append(&mut records);
                        Self::send_ack(ack, Ok(()));
                        self.checkpoint_if_due();
                    }
                    Err(e) => Self::send_ack(ack, Err(e)),
                }
                false
            }
            IngestOp::Delete(ids, ack) => {
                let _t = self.span.time("serve.ingest");
                let wal_op = WalOp::Delete(ids);
                match self.persist(&wal_op) {
                    Ok(()) => {
                        let WalOp::Delete(ids) = wal_op else {
                            unreachable!("delete op cannot change variant")
                        };
                        self.pending += ids.len();
                        self.registry.add("serve.records_deleted", ids.len() as u64);
                        self.deleted.extend(ids);
                        Self::send_ack(ack, Ok(()));
                        self.checkpoint_if_due();
                    }
                    Err(e) => Self::send_ack(ack, Err(e)),
                }
                false
            }
            IngestOp::Flush => true,
        }
    }

    /// Folds the log into a snapshot checkpoint when the configured
    /// cadence is due, compacting the in-memory log to the live set at
    /// the same time (the tombstones are now in the checkpoint).
    fn checkpoint_if_due(&mut self) {
        if !self
            .durability
            .as_ref()
            .is_some_and(Durability::needs_snapshot)
        {
            return;
        }
        let live = self.live();
        let d = self.durability.as_mut().expect("checked above");
        if d.force_snapshot(&live) {
            self.log = live;
            self.deleted.clear();
        }
    }

    /// Live transactions: the log minus tombstoned ids, in ingest order.
    fn live(&self) -> Vec<Transaction> {
        self.log
            .iter()
            .filter(|t| !self.deleted.contains(&t.id))
            .cloned()
            .collect()
    }

    /// Builds and publishes a new generation. On any failure the
    /// previous generation stays current and the pending counter is
    /// kept, so the next trigger retries with the same data.
    pub fn publish(&mut self) -> bool {
        let _t = self.span.time("serve.publish");
        let built = failpoint::hit("serve::publish")
            .map_err(|f| PipelineError::Io(f.to_string()))
            .and_then(|()| {
                let _f = self.span.time("serve.freeze");
                Generation::build(self.next_id, self.live())
            });
        match built {
            Ok(gen) => {
                self.cell.publish(Arc::new(gen));
                self.next_id += 1;
                self.pending = 0;
                self.registry.add("serve.generations_published", 1);
                true
            }
            Err(_) => {
                // Counted, not fatal: the old generation stays current
                // and the pending records wait for the next trigger.
                self.registry.add("serve.publish_failures", 1);
                false
            }
        }
    }

    /// Records pending since the last successful publish.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The writer thread body: drain ops, publish on batch/timer
    /// triggers, and flush one final generation when `rx` disconnects
    /// (the server hangs up at shutdown).
    pub fn run(mut self, rx: Receiver<IngestOp>, cfg: WriterConfig) {
        let mut last_publish = Instant::now();
        loop {
            // Sleep at most to the next timer tick so an idle daemon
            // still publishes pending records on cadence.
            let elapsed = last_publish.elapsed();
            let wait = cfg.publish_interval.saturating_sub(elapsed);
            let forced = match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(op) => self.apply(op),
                Err(RecvTimeoutError::Timeout) => false,
                Err(RecvTimeoutError::Disconnected) => {
                    // Final flush: make the last generation durable for
                    // any still-draining readers, then settle the WAL
                    // (interval-mode appends may still be in the page
                    // cache) and exit.
                    if self.pending > 0 {
                        self.publish();
                    }
                    if let Some(d) = &mut self.durability {
                        let _ = d.sync();
                    }
                    return;
                }
            };
            // Interval-mode fsync deadline, even while idle.
            if let Some(d) = &mut self.durability {
                d.tick();
            }
            let timer_due = last_publish.elapsed() >= cfg.publish_interval;
            if forced || self.pending >= cfg.batch.max(1) || (timer_due && self.pending > 0) {
                self.publish();
                last_publish = Instant::now();
            } else if timer_due {
                last_publish = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{recover, DurabilityConfig};
    use crate::wal::FsyncPolicy;
    use std::path::PathBuf;
    use tnet_exec::failpoint;
    use tnet_obs::LatencyHistogram;

    fn txn(id: u64, weight: f64) -> Transaction {
        use tnet_data::model::{Date, LatLon, TransMode};
        Transaction {
            id,
            req_pickup: Date(733000),
            req_delivery: Date(733002),
            origin: LatLon::new(33.7, -84.4),
            dest: LatLon::new(35.1 + id as f64 * 0.1, -90.0),
            total_distance: 300.0 + id as f64,
            gross_weight: weight,
            transit_hours: 8.0 + id as f64,
            mode: TransMode::Truckload,
        }
    }

    fn writer() -> (Writer, Arc<EpochCell<Generation>>, MetricsRegistry) {
        let cell = EpochCell::new(Arc::new(Generation::build(0, Vec::new()).unwrap()));
        let registry = MetricsRegistry::new();
        let w = Writer::new(
            Arc::clone(&cell),
            Vec::new(),
            1,
            None,
            registry.clone(),
            Span::disabled(),
        );
        (w, cell, registry)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tnet_writer_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_writer(
        dir: &std::path::Path,
        snapshot_every: u64,
    ) -> (Writer, Arc<EpochCell<Generation>>, MetricsRegistry) {
        let cell = EpochCell::new(Arc::new(Generation::build(0, Vec::new()).unwrap()));
        let registry = MetricsRegistry::new();
        let d = Durability::open(
            &DurabilityConfig {
                data_dir: dir.to_path_buf(),
                fsync: FsyncPolicy::Always,
                snapshot_every,
            },
            0,
            registry.clone(),
            Arc::new(LatencyHistogram::new()),
        )
        .unwrap();
        let w = Writer::new(
            Arc::clone(&cell),
            Vec::new(),
            1,
            Some(d),
            registry.clone(),
            Span::disabled(),
        );
        (w, cell, registry)
    }

    #[test]
    fn appends_and_deletes_shape_the_published_set() {
        let (mut w, cell, _) = writer();
        let reader = cell.register().unwrap();
        w.apply(IngestOp::Append(
            (1..=10).map(|i| txn(i, 1000.0 * i as f64)).collect(),
            None,
        ));
        w.apply(IngestOp::Delete(vec![3, 7, 99], None));
        assert!(w.publish());
        let gen = reader.pin();
        assert_eq!(gen.id, 1);
        assert_eq!(gen.txns.len(), 8, "10 appended minus 2 live deletes");
        assert!(gen.txns.iter().all(|t| t.id != 3 && t.id != 7));
    }

    #[test]
    fn failed_publish_keeps_previous_generation_and_retries() {
        let _g = crate::failpoint_test_guard();
        let (mut w, cell, registry) = writer();
        let reader = cell.register().unwrap();
        w.apply(IngestOp::Append(vec![txn(1, 1000.0), txn(2, 2000.0)], None));
        assert!(w.publish());
        assert_eq!(reader.pin().id, 1);

        w.apply(IngestOp::Append(vec![txn(3, 3000.0)], None));
        failpoint::arm("serve::publish=err").unwrap();
        assert!(!w.publish(), "injected fault fails the publish");
        failpoint::disarm();

        // Still serving generation 1, failure counted, data not lost.
        assert_eq!(reader.pin().id, 1);
        assert_eq!(reader.pin().txns.len(), 2);
        assert_eq!(registry.get("serve.publish_failures"), 1);
        assert_eq!(w.pending(), 1, "pending records survive the failure");

        assert!(w.publish(), "retry succeeds once the fault clears");
        let gen = reader.pin();
        assert_eq!(gen.id, 2);
        assert_eq!(gen.txns.len(), 3);
    }

    #[test]
    fn run_flushes_on_disconnect() {
        let (w, cell, registry) = writer();
        let reader = cell.register().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            w.run(
                rx,
                WriterConfig {
                    publish_interval: Duration::from_secs(3600),
                    batch: usize::MAX,
                },
            )
        });
        tx.send(IngestOp::Append(vec![txn(1, 1000.0), txn(2, 9000.0)], None))
            .unwrap();
        drop(tx);
        h.join().unwrap();
        assert_eq!(reader.pin().txns.len(), 2, "final flush published the log");
        assert_eq!(registry.get("serve.generations_published"), 1);
    }

    #[test]
    fn flush_op_forces_an_immediate_publish() {
        let (w, cell, _) = writer();
        let reader = cell.register().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            w.run(
                rx,
                WriterConfig {
                    publish_interval: Duration::from_secs(3600),
                    batch: usize::MAX,
                },
            )
        });
        tx.send(IngestOp::Append(vec![txn(5, 5000.0), txn(6, 7000.0)], None))
            .unwrap();
        tx.send(IngestOp::Flush).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while reader.publish_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reader.pin().id, 1, "flush published without timer/batch");
        drop(tx);
        h.join().unwrap();
    }

    #[test]
    fn acked_batches_survive_a_writer_drop() {
        let dir = tmp_dir("ack_survives");
        let (mut w, _cell, _reg) = durable_writer(&dir, 0);
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        w.apply(IngestOp::Append(
            vec![txn(1, 1000.0), txn(2, 2000.0)],
            Some(ack_tx),
        ));
        assert!(ack_rx.recv().unwrap().is_ok(), "batch acknowledged");
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        w.apply(IngestOp::Delete(vec![1], Some(ack_tx)));
        assert!(ack_rx.recv().unwrap().is_ok());
        // Drop without publish or shutdown niceties: SIGKILL in miniature.
        drop(w);
        let r = recover(&dir, &MetricsRegistry::new()).unwrap();
        assert_eq!(
            r.live.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![2],
            "acknowledged append and delete both recovered"
        );
    }

    #[test]
    fn wal_failure_nacks_and_applies_nothing() {
        let _g = crate::failpoint_test_guard();
        let dir = tmp_dir("nack");
        let (mut w, cell, registry) = durable_writer(&dir, 0);
        let reader = cell.register().unwrap();
        failpoint::arm("serve::wal_append=err").unwrap();
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        w.apply(IngestOp::Append(vec![txn(1, 1000.0)], Some(ack_tx)));
        failpoint::disarm();
        let nack = ack_rx.recv().unwrap();
        assert!(nack.is_err(), "WAL failure must nack");
        assert_eq!(registry.get("wal.append_failures"), 1);
        assert_eq!(registry.get("serve.records_ingested"), 0);
        assert_eq!(w.pending(), 0, "refused batch is not pending");
        // Nothing publishable came out of the refused batch.
        w.apply(IngestOp::Append(vec![txn(2, 2000.0), txn(3, 3000.0)], None));
        assert!(w.publish());
        let gen = reader.pin();
        assert_eq!(gen.txns.len(), 2);
        assert!(gen.txns.iter().all(|t| t.id != 1), "refused batch absent");
        // And nothing durable either.
        drop(w);
        let r = recover(&dir, &MetricsRegistry::new()).unwrap();
        assert_eq!(r.live.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn checkpoint_cadence_compacts_log_and_truncates_wal() {
        let dir = tmp_dir("cadence");
        let (mut w, _cell, registry) = durable_writer(&dir, 3);
        w.apply(IngestOp::Append(vec![txn(1, 1000.0), txn(2, 2000.0)], None));
        assert_eq!(registry.get("snapshot.writes"), 0, "two records: not yet");
        // The delete is the third acknowledged record (cadence counts
        // records inside each batch, not batches) — it checkpoints the
        // tombstone-compacted live set.
        w.apply(IngestOp::Delete(vec![1], None));
        assert_eq!(
            registry.get("snapshot.writes"),
            1,
            "third record checkpoints"
        );
        assert_eq!(registry.get("wal.truncations"), 1);
        w.apply(IngestOp::Append(vec![txn(3, 3000.0)], None));
        drop(w);
        let reg = MetricsRegistry::new();
        let r = recover(&dir, &reg).unwrap();
        assert_eq!(
            r.live.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![2, 3],
            "checkpoint holds the compacted set; the tail replays on top"
        );
        assert_eq!(
            reg.get("recover.snapshot_records"),
            1,
            "snapshot holds only id 2 (1 was tombstoned before checkpoint)"
        );
        assert_eq!(r.replayed, 1, "the post-checkpoint append replays");
    }
}
