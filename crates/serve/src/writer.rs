//! The single writer: ingest log, tombstones, and generation publishes.
//!
//! All mutation flows through one thread. Connection threads forward
//! [`IngestOp`]s over an mpsc channel; the writer appends to its
//! transaction log, tombstones deletes by id, and — on a timer, on a
//! batch threshold, or on demand — materializes the live set into a new
//! [`Generation`] and publishes it through the [`EpochCell`]. A failed
//! build (injected via the `serve::publish` failpoint or a real
//! bin-fit rejection) is *not* fatal: the cell keeps the previous
//! generation, a counter records the failure, and the writer retries on
//! the next trigger — the daemon degrades to serving stale data rather
//! than crashing.

use crate::epoch::EpochCell;
use crate::generation::Generation;
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tnet_data::model::Transaction;
use tnet_exec::failpoint;
use tnet_obs::{MetricsRegistry, Span};

/// A mutation forwarded from a connection thread.
#[derive(Debug)]
pub enum IngestOp {
    /// Append a batch of transactions to the log.
    Append(Vec<Transaction>),
    /// Tombstone transactions by id (idempotent; unknown ids are
    /// harmless).
    Delete(Vec<u64>),
    /// Publish now, regardless of timer and batch thresholds.
    Flush,
}

/// Writer-side knobs.
#[derive(Clone, Debug)]
pub struct WriterConfig {
    /// Wall-clock cadence of periodic publishes.
    pub publish_interval: Duration,
    /// Publish as soon as this many records (appends + deletes) are
    /// pending, without waiting for the timer.
    pub batch: usize,
}

impl Default for WriterConfig {
    fn default() -> WriterConfig {
        WriterConfig {
            publish_interval: Duration::from_millis(200),
            batch: 4096,
        }
    }
}

/// The writer's mutable state, separated from the thread loop so tests
/// can drive it synchronously.
pub struct Writer {
    log: Vec<Transaction>,
    deleted: HashSet<u64>,
    /// Records applied since the last successful publish.
    pending: usize,
    next_id: u64,
    cell: Arc<EpochCell<Generation>>,
    registry: MetricsRegistry,
    span: Span,
}

impl Writer {
    /// A writer whose next publish becomes generation `next_id`,
    /// seeded with `log` (the transactions the daemon started with).
    pub fn new(
        cell: Arc<EpochCell<Generation>>,
        log: Vec<Transaction>,
        next_id: u64,
        registry: MetricsRegistry,
        span: Span,
    ) -> Writer {
        Writer {
            log,
            deleted: HashSet::new(),
            pending: 0,
            next_id,
            cell,
            registry,
            span,
        }
    }

    /// Applies one op to the log. Returns `true` if the op demands an
    /// immediate publish.
    pub fn apply(&mut self, op: IngestOp) -> bool {
        match op {
            IngestOp::Append(mut records) => {
                let _t = self.span.time("serve.ingest");
                self.pending += records.len();
                self.registry
                    .add("serve.records_ingested", records.len() as u64);
                self.log.append(&mut records);
                false
            }
            IngestOp::Delete(ids) => {
                let _t = self.span.time("serve.ingest");
                self.pending += ids.len();
                self.registry.add("serve.records_deleted", ids.len() as u64);
                self.deleted.extend(ids);
                false
            }
            IngestOp::Flush => true,
        }
    }

    /// Live transactions: the log minus tombstoned ids, in ingest order.
    fn live(&self) -> Vec<Transaction> {
        self.log
            .iter()
            .filter(|t| !self.deleted.contains(&t.id))
            .cloned()
            .collect()
    }

    /// Builds and publishes a new generation. On any failure the
    /// previous generation stays current and the pending counter is
    /// kept, so the next trigger retries with the same data.
    pub fn publish(&mut self) -> bool {
        let _t = self.span.time("serve.publish");
        let built = failpoint::hit("serve::publish")
            .map_err(|f| tnet_core::error::PipelineError::Io(f.to_string()))
            .and_then(|()| {
                let _f = self.span.time("serve.freeze");
                Generation::build(self.next_id, self.live())
            });
        match built {
            Ok(gen) => {
                self.cell.publish(Arc::new(gen));
                self.next_id += 1;
                self.pending = 0;
                self.registry.add("serve.generations_published", 1);
                true
            }
            Err(_) => {
                // Counted, not fatal: the old generation stays current
                // and the pending records wait for the next trigger.
                self.registry.add("serve.publish_failures", 1);
                false
            }
        }
    }

    /// Records pending since the last successful publish.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The writer thread body: drain ops, publish on batch/timer
    /// triggers, and flush one final generation when `rx` disconnects
    /// (the server hangs up at shutdown).
    pub fn run(mut self, rx: Receiver<IngestOp>, cfg: WriterConfig) {
        let mut last_publish = Instant::now();
        loop {
            // Sleep at most to the next timer tick so an idle daemon
            // still publishes pending records on cadence.
            let elapsed = last_publish.elapsed();
            let wait = cfg.publish_interval.saturating_sub(elapsed);
            let forced = match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(op) => self.apply(op),
                Err(RecvTimeoutError::Timeout) => false,
                Err(RecvTimeoutError::Disconnected) => {
                    // Final flush: make the last generation durable for
                    // any still-draining readers, then exit.
                    if self.pending > 0 {
                        self.publish();
                    }
                    return;
                }
            };
            let timer_due = last_publish.elapsed() >= cfg.publish_interval;
            if forced || self.pending >= cfg.batch.max(1) || (timer_due && self.pending > 0) {
                self.publish();
                last_publish = Instant::now();
            } else if timer_due {
                last_publish = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_exec::failpoint;

    fn txn(id: u64, weight: f64) -> Transaction {
        use tnet_data::model::{Date, LatLon, TransMode};
        Transaction {
            id,
            req_pickup: Date(733000),
            req_delivery: Date(733002),
            origin: LatLon::new(33.7, -84.4),
            dest: LatLon::new(35.1 + id as f64 * 0.1, -90.0),
            total_distance: 300.0 + id as f64,
            gross_weight: weight,
            transit_hours: 8.0 + id as f64,
            mode: TransMode::Truckload,
        }
    }

    fn writer() -> (Writer, Arc<EpochCell<Generation>>, MetricsRegistry) {
        let cell = EpochCell::new(Arc::new(Generation::build(0, Vec::new()).unwrap()));
        let registry = MetricsRegistry::new();
        let w = Writer::new(
            Arc::clone(&cell),
            Vec::new(),
            1,
            registry.clone(),
            Span::disabled(),
        );
        (w, cell, registry)
    }

    #[test]
    fn appends_and_deletes_shape_the_published_set() {
        let (mut w, cell, _) = writer();
        let reader = cell.register().unwrap();
        w.apply(IngestOp::Append(
            (1..=10).map(|i| txn(i, 1000.0 * i as f64)).collect(),
        ));
        w.apply(IngestOp::Delete(vec![3, 7, 99]));
        assert!(w.publish());
        let gen = reader.pin();
        assert_eq!(gen.id, 1);
        assert_eq!(gen.txns.len(), 8, "10 appended minus 2 live deletes");
        assert!(gen.txns.iter().all(|t| t.id != 3 && t.id != 7));
    }

    #[test]
    fn failed_publish_keeps_previous_generation_and_retries() {
        let (mut w, cell, registry) = writer();
        let reader = cell.register().unwrap();
        w.apply(IngestOp::Append(vec![txn(1, 1000.0), txn(2, 2000.0)]));
        assert!(w.publish());
        assert_eq!(reader.pin().id, 1);

        w.apply(IngestOp::Append(vec![txn(3, 3000.0)]));
        failpoint::arm("serve::publish=err").unwrap();
        assert!(!w.publish(), "injected fault fails the publish");
        failpoint::disarm();

        // Still serving generation 1, failure counted, data not lost.
        assert_eq!(reader.pin().id, 1);
        assert_eq!(reader.pin().txns.len(), 2);
        assert_eq!(registry.get("serve.publish_failures"), 1);
        assert_eq!(w.pending(), 1, "pending records survive the failure");

        assert!(w.publish(), "retry succeeds once the fault clears");
        let gen = reader.pin();
        assert_eq!(gen.id, 2);
        assert_eq!(gen.txns.len(), 3);
    }

    #[test]
    fn run_flushes_on_disconnect() {
        let (w, cell, registry) = writer();
        let reader = cell.register().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            w.run(
                rx,
                WriterConfig {
                    publish_interval: Duration::from_secs(3600),
                    batch: usize::MAX,
                },
            )
        });
        tx.send(IngestOp::Append(vec![txn(1, 1000.0), txn(2, 9000.0)]))
            .unwrap();
        drop(tx);
        h.join().unwrap();
        assert_eq!(reader.pin().txns.len(), 2, "final flush published the log");
        assert_eq!(registry.get("serve.generations_published"), 1);
    }

    #[test]
    fn flush_op_forces_an_immediate_publish() {
        let (w, cell, _) = writer();
        let reader = cell.register().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            w.run(
                rx,
                WriterConfig {
                    publish_interval: Duration::from_secs(3600),
                    batch: usize::MAX,
                },
            )
        });
        tx.send(IngestOp::Append(vec![txn(5, 5000.0), txn(6, 7000.0)]))
            .unwrap();
        tx.send(IngestOp::Flush).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while reader.publish_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reader.pin().id, 1, "flush published without timer/batch");
        drop(tx);
        h.join().unwrap();
    }
}
