//! The write-ahead log: length-prefixed, CRC32C-checksummed records.
//!
//! Every accepted ingest/delete batch is appended here by the writer
//! thread *before* it can appear in a published generation, so a
//! SIGKILL at any instant loses at most batches that were never
//! acknowledged. On-disk framing, all little-endian:
//!
//! ```text
//! record  := len:u32  masked_crc:u32  payload[len]
//! payload := seq:u64  op:u8  body
//! body    := append → count:u32 (txn)×count
//!          | delete → count:u32 (id:u64)×count
//! ```
//!
//! `seq` is a monotone record number that survives WAL truncation: a
//! snapshot checkpoint records the highest seq it incorporates, and
//! replay skips records at or below it, which is what makes the
//! "snapshot, then truncate" pair crash-safe in either order.
//!
//! Replay classifies damage two ways (DESIGN.md §13):
//!
//! - **Torn tail** — the file ends before a record completes (partial
//!   header, or a declared length that runs past EOF). This is the
//!   signature of a crash mid-append; the tail is truncated with a
//!   warning and recovery proceeds. Everything acknowledged under
//!   `fsync always` precedes the torn record by construction.
//! - **Mid-log corruption** — a complete record whose checksum or
//!   structure is wrong, or an absurd declared length. A bit rotted or
//!   something rewrote history; replay refuses with a typed
//!   [`PipelineError::Corruption`] rather than silently dropping
//!   records that later, valid records may depend on.

use crate::crc;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use tnet_core::error::PipelineError;
use tnet_data::model::{Date, LatLon, TransMode, Transaction};
use tnet_exec::failpoint;

/// Hard cap on one record's payload. A real batch is bounded by the
/// 64 KiB request-line cap upstream; anything claiming more than this
/// is a corrupt length prefix, not a big batch.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of one encoded [`Transaction`].
const TXN_BYTES: usize = 8 + 4 + 4 + 2 + 2 + 2 + 2 + 8 + 8 + 8 + 1;

/// A durable mutation, mirroring the writer's ingest ops.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    Append(Vec<Transaction>),
    Delete(Vec<u64>),
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
}

// ------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn encode_txn(out: &mut Vec<u8>, t: &Transaction) {
    put_u64(out, t.id);
    put_u32(out, t.req_pickup.0);
    put_u32(out, t.req_delivery.0);
    out.extend_from_slice(&t.origin.lat_deci.to_le_bytes());
    out.extend_from_slice(&t.origin.lon_deci.to_le_bytes());
    out.extend_from_slice(&t.dest.lat_deci.to_le_bytes());
    out.extend_from_slice(&t.dest.lon_deci.to_le_bytes());
    out.extend_from_slice(&t.total_distance.to_le_bytes());
    out.extend_from_slice(&t.gross_weight.to_le_bytes());
    out.extend_from_slice(&t.transit_hours.to_le_bytes());
    out.push(match t.mode {
        TransMode::Truckload => 0,
        TransMode::LessThanTruckload => 1,
    });
}

/// Encodes a record's payload (seq + op + body).
pub fn encode_payload(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, seq);
    match op {
        WalOp::Append(txns) => {
            out.push(1);
            put_u32(&mut out, txns.len() as u32);
            out.reserve(txns.len() * TXN_BYTES);
            for t in txns {
                encode_txn(&mut out, t);
            }
        }
        WalOp::Delete(ids) => {
            out.push(2);
            put_u32(&mut out, ids.len() as u32);
            for &id in ids {
                put_u64(&mut out, id);
            }
        }
    }
    out
}

/// Frames a payload as a full on-disk record.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc::mask(crc::crc32c(payload)));
    out.extend_from_slice(payload);
    out
}

// ------------------------------------------------------------- decoding

/// A byte cursor with typed little-endian reads, shared with the
/// snapshot codec.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i16(&mut self) -> Option<i16> {
        self.take(2)
            .map(|b| i16::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
    }
}

pub(crate) fn decode_txn(c: &mut Cursor) -> Option<Transaction> {
    Some(Transaction {
        id: c.u64()?,
        req_pickup: Date(c.u32()?),
        req_delivery: Date(c.u32()?),
        origin: LatLon {
            lat_deci: c.i16()?,
            lon_deci: c.i16()?,
        },
        dest: LatLon {
            lat_deci: c.i16()?,
            lon_deci: c.i16()?,
        },
        total_distance: c.f64()?,
        gross_weight: c.f64()?,
        transit_hours: c.f64()?,
        mode: match c.u8()? {
            0 => TransMode::Truckload,
            1 => TransMode::LessThanTruckload,
            _ => return None,
        },
    })
}

/// Decodes a CRC-verified payload. `None` means the structure is wrong
/// even though the checksum passed — the caller reports corruption.
pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let seq = c.u64()?;
    let op = match c.u8()? {
        1 => {
            let count = c.u32()? as usize;
            let mut txns = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                txns.push(decode_txn(&mut c)?);
            }
            WalOp::Append(txns)
        }
        2 => {
            let count = c.u32()? as usize;
            let mut ids = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                ids.push(c.u64()?);
            }
            WalOp::Delete(ids)
        }
        _ => return None,
    };
    if c.pos != payload.len() {
        return None; // trailing bytes: a length lie the CRC happened to bless
    }
    Some(WalRecord { seq, op })
}

// -------------------------------------------------------------- replay

/// The outcome of replaying a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past the last valid record — where a torn tail
    /// (if any) starts, and the length to truncate the file back to.
    pub valid_len: u64,
    /// Bytes of torn tail dropped (0 = the file ended cleanly).
    pub torn_bytes: u64,
}

fn corrupt(path: &Path, offset: u64, message: impl Into<String>) -> PipelineError {
    PipelineError::Corruption {
        path: path.display().to_string(),
        offset,
        message: message.into(),
    }
}

/// Reads and verifies every record in `path`. A missing file replays
/// as empty. Torn tails are reported, not fatal; mid-log corruption is
/// a typed refusal (see module docs for the distinction).
pub fn replay(path: &Path) -> Result<Replay, PipelineError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            return Err(PipelineError::Io(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return Ok(Replay {
                records,
                valid_len: pos as u64,
                torn_bytes: 0,
            });
        }
        // Partial header at EOF: torn.
        if bytes.len() - pos < 8 {
            return Ok(Replay {
                records,
                valid_len: pos as u64,
                torn_bytes: (bytes.len() - pos) as u64,
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let stored_crc = crc::unmask(u32::from_le_bytes(
            bytes[pos + 4..pos + 8].try_into().unwrap(),
        ));
        if len > MAX_RECORD_BYTES {
            return Err(corrupt(
                path,
                pos as u64,
                format!(
                    "record claims {len} bytes (cap {MAX_RECORD_BYTES}); length prefix is rotten"
                ),
            ));
        }
        let body_start = pos + 8;
        // Declared length runs past EOF: torn (the crash interrupted
        // this very append).
        if bytes.len() - body_start < len as usize {
            return Ok(Replay {
                records,
                valid_len: pos as u64,
                torn_bytes: (bytes.len() - pos) as u64,
            });
        }
        let payload = &bytes[body_start..body_start + len as usize];
        if crc::crc32c(payload) != stored_crc {
            return Err(corrupt(
                path,
                pos as u64,
                "record checksum mismatch (CRC32C)",
            ));
        }
        let Some(record) = decode_payload(payload) else {
            return Err(corrupt(
                path,
                pos as u64,
                "record checksum passed but the payload structure is invalid",
            ));
        };
        if let Some(prev) = records.last() {
            if record.seq <= prev.seq {
                return Err(corrupt(
                    path,
                    pos as u64,
                    format!(
                        "sequence went backwards ({} after {})",
                        record.seq, prev.seq
                    ),
                ));
            }
        }
        records.push(record);
        pos = body_start + len as usize;
    }
}

// -------------------------------------------------------------- writer

/// When appended records reach the platter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record — an acknowledgment implies
    /// the record survives power loss.
    Always,
    /// fsync on a timer (milliseconds); an acknowledgment implies the
    /// record survives a process SIGKILL, and survives power loss after
    /// at most this window.
    Interval(std::time::Duration),
    /// Never fsync explicitly; the OS page cache decides.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval` (default 100 ms), or
    /// `interval:MS`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(std::time::Duration::from_millis(100))),
            _ => {
                let ms: u64 = s.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(std::time::Duration::from_millis(
                    ms.max(1),
                )))
            }
        }
    }

    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// The append half of the WAL, owned by the writer thread.
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// Sequence of the last appended (or recovered) record.
    pub seq: u64,
    /// True when bytes were written since the last fsync.
    dirty: bool,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL for appending, continuing
    /// after sequence `seq`.
    pub fn open(path: &Path, seq: u64) -> Result<WalWriter, PipelineError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PipelineError::Io(format!("cannot open WAL {}: {e}", path.display())))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            seq,
            dirty: false,
        })
    }

    /// Appends one op as the next record and flushes it to the OS.
    /// Durability beyond the page cache is [`WalWriter::sync`]'s job.
    /// Returns the record's sequence number.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, PipelineError> {
        failpoint::hit("serve::wal_append").map_err(|f| PipelineError::Io(f.to_string()))?;
        let seq = self.seq + 1;
        let record = frame(&encode_payload(seq, op));
        self.file
            .write_all(&record)
            .and_then(|()| self.file.flush())
            .map_err(|e| PipelineError::Io(format!("WAL append failed: {e}")))?;
        self.seq = seq;
        self.dirty = true;
        Ok(seq)
    }

    /// fsyncs outstanding appends. A no-op when nothing was written
    /// since the last sync.
    pub fn sync(&mut self) -> Result<(), PipelineError> {
        if !self.dirty {
            return Ok(());
        }
        failpoint::hit("serve::wal_fsync").map_err(|f| PipelineError::Io(f.to_string()))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| PipelineError::Io(format!("WAL fsync failed: {e}")))?;
        self.dirty = false;
        Ok(())
    }

    /// Truncates the log to empty after a snapshot made its records
    /// redundant. Sequence numbering continues — replay skips by seq,
    /// so a crash between snapshot and truncation double-applies
    /// nothing.
    pub fn truncate(&mut self) -> Result<(), PipelineError> {
        self.file
            .flush()
            .and_then(|()| self.file.get_ref().set_len(0))
            .and_then(|()| self.file.get_ref().sync_data())
            .map_err(|e| {
                PipelineError::Io(format!("cannot truncate WAL {}: {e}", self.path.display()))
            })?;
        self.dirty = false;
        Ok(())
    }

    /// Bytes currently in the log file.
    pub fn len(&self) -> u64 {
        self.file.get_ref().metadata().map(|m| m.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(733000),
            req_delivery: Date(733002 + id as u32 % 3),
            origin: LatLon::new(33.7, -84.4),
            dest: LatLon::new(35.1 + id as f64 * 0.1, -90.0),
            total_distance: 300.0 + id as f64,
            gross_weight: 1000.0 * (id + 1) as f64,
            transit_hours: 8.0 + id as f64,
            mode: if id.is_multiple_of(2) {
                TransMode::Truckload
            } else {
                TransMode::LessThanTruckload
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tnet_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn write_ops(path: &Path, ops: &[WalOp]) -> WalWriter {
        let mut w = WalWriter::open(path, 0).unwrap();
        for op in ops {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        w
    }

    #[test]
    fn round_trips_appends_and_deletes() {
        let path = tmp("roundtrip");
        let ops = vec![
            WalOp::Append(vec![txn(1), txn(2), txn(3)]),
            WalOp::Delete(vec![2, 99]),
            WalOp::Append(vec![txn(4)]),
        ];
        write_ops(&path, &ops);
        let replay = replay(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(
            replay.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for (r, op) in replay.records.iter().zip(&ops) {
            assert_eq!(&r.op, op, "decoded op diverged");
        }
        assert_eq!(replay.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = tmp("missing").with_extension("nope");
        let r = replay(&path).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let path = tmp("torn");
        write_ops(
            &path,
            &[
                WalOp::Append(vec![txn(1), txn(2)]),
                WalOp::Append(vec![txn(3)]),
            ],
        );
        let full = std::fs::metadata(&path).unwrap().len();
        // Cut into the middle of the second record's payload.
        let cut = full - 10;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 1, "only the intact record survives");
        assert_eq!(r.torn_bytes, cut - r.valid_len);
        assert!(r.valid_len < cut);

        // Truncating at the reported valid_len yields a clean log again.
        f.set_len(r.valid_len).unwrap();
        let clean = replay(&path).unwrap();
        assert_eq!(clean.records.len(), 1);
        assert_eq!(clean.torn_bytes, 0);
    }

    #[test]
    fn partial_header_at_eof_is_torn() {
        let path = tmp("torn_header");
        write_ops(&path, &[WalOp::Delete(vec![7])]);
        let valid = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap(); // 3 of 8 header bytes
        drop(f);
        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.valid_len, valid);
        assert_eq!(r.torn_bytes, 3);
    }

    #[test]
    fn midlog_bitflip_is_typed_corruption() {
        let path = tmp("flip");
        write_ops(
            &path,
            &[
                WalOp::Append(vec![txn(1), txn(2)]),
                WalOp::Append(vec![txn(3)]),
            ],
        );
        // Flip one byte inside the FIRST record's payload: mid-log, a
        // later valid record follows, so this must refuse.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = replay(&path).unwrap_err();
        assert_eq!(err.kind(), "corruption");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let path = tmp("len");
        write_ops(&path, &[WalOp::Delete(vec![1])]);
        let mut bytes = std::fs::read(&path).unwrap();
        // Blow the length prefix past the cap.
        bytes[3] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = replay(&path).unwrap_err();
        assert_eq!(err.kind(), "corruption");
        assert!(err.to_string().contains("length prefix"), "{err}");
    }

    #[test]
    fn truncate_resets_bytes_but_not_seq() {
        let path = tmp("rotate");
        let mut w = write_ops(&path, &[WalOp::Delete(vec![1]), WalOp::Delete(vec![2])]);
        assert_eq!(w.seq, 2);
        w.truncate().unwrap();
        assert!(w.is_empty());
        w.append(&WalOp::Delete(vec![3])).unwrap();
        w.sync().unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].seq, 3, "seq continues across truncation");
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(std::time::Duration::from_millis(100)))
        );
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Some(FsyncPolicy::Interval(std::time::Duration::from_millis(250)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("interval:x"), None);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap().name(),
            "interval:250"
        );
    }
}
