//! The generation cell: a hand-rolled `arc-swap` on hazard pointers.
//!
//! One writer publishes successive immutable generations; many readers
//! pin the current one without ever blocking. The obvious safe-Rust
//! shapes all fail the "no locks on the read path" requirement:
//! `RwLock<Arc<T>>` blocks readers during a publish, and a bare
//! `AtomicPtr<T>` of `Arc::into_raw` pointers has a use-after-free
//! window between loading the pointer and bumping its refcount. The
//! classic fix is a hazard pointer: a reader announces the pointer it
//! is about to touch in a slot the writer scans before reclaiming.
//!
//! Protocol (all accesses `SeqCst`, so every argument below can lean on
//! the single total order `S`):
//!
//! - **Reader pin**: load `current` → store it in the reader's hazard
//!   slot → re-load `current`. If the validation load still sees the
//!   same pointer, bump the strong count, clear the hazard, and return
//!   a plain `Arc<T>`; otherwise retry with the fresh pointer.
//! - **Writer publish**: swap `current` to the new pointer, push the
//!   old one onto the retired list, then reclaim every retired pointer
//!   not present in any hazard slot.
//!
//! Why the validation load makes this sound: suppose a reader's
//! validation load V returns pointer `p`. The writer's swap W that
//! unpublishes `p` writes a different value to `current`, so V precedes
//! W in `S`. The hazard store H precedes V (program order), and W
//! precedes the writer's hazard scan C (program order), so H precedes C
//! in `S`: the scan observes the hazard and defers reclaiming `p`. The
//! reader clears its hazard only after `Arc::increment_strong_count`,
//! at which point it owns a counted reference and reclamation of the
//! retired count is harmless. Pointers deferred by a live hazard are
//! retried on the next publish and when the cell drops. ABA is benign:
//! each publish leaks-then-swaps a fresh `Arc` allocation whose
//! reclamation is gated on the hazard scan, so a slot can never hold a
//! stale pointer that was already freed.
//!
//! This module owns the only `unsafe` in the workspace; everything it
//! exports (`EpochCell::publish`, `EpochReader::pin`) is a safe API.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Fixed number of hazard slots — the hard cap on *concurrent*
/// registered readers (connection threads), not on connections over a
/// daemon's lifetime. Registration hands back slots on drop.
pub const MAX_READERS: usize = 128;

/// A single-writer, many-reader cell holding the current generation.
///
/// Readers never block: [`EpochReader::pin`] is a handful of atomic
/// operations and one refcount increment. The writer pays for
/// reclamation ([`EpochCell::publish`] takes a private mutex for the
/// retired list, which no reader ever touches).
pub struct EpochCell<T> {
    current: AtomicPtr<T>,
    /// Hazard slots: a null entry is "not reading"; a non-null entry
    /// pins that pointer against reclamation.
    hazards: Vec<AtomicPtr<T>>,
    /// Slot ownership, so readers can register/unregister concurrently.
    claimed: Vec<AtomicBool>,
    /// Unpublished pointers awaiting reclamation. Writer-side only.
    retired: Mutex<Vec<*mut T>>,
    /// Number of successful publishes (the current generation's ordinal
    /// position); readable without pinning.
    publishes: AtomicU64,
}

// The raw pointers inside are `Arc::into_raw` of `T` and only ever
// dereferenced through counted `Arc`s; sharing them across threads is
// exactly as safe as sharing `Arc<T>`.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell whose first generation is `initial`.
    pub fn new(initial: Arc<T>) -> Arc<EpochCell<T>> {
        Arc::new(EpochCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            hazards: (0..MAX_READERS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            claimed: (0..MAX_READERS).map(|_| AtomicBool::new(false)).collect(),
            retired: Mutex::new(Vec::new()),
            publishes: AtomicU64::new(0),
        })
    }

    /// Publishes `next` as the current generation and reclaims every
    /// unpinned predecessor. Single logical writer; calling from two
    /// threads is safe but the last swap wins.
    pub fn publish(&self, next: Arc<T>) {
        let new_ptr = Arc::into_raw(next) as *mut T;
        let old = self.current.swap(new_ptr, SeqCst);
        self.publishes.fetch_add(1, SeqCst);
        let mut retired = self.retired.lock().unwrap();
        retired.push(old);
        self.reclaim(&mut retired);
    }

    /// Number of publishes so far (0 = still on the initial value).
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(SeqCst)
    }

    /// Drops the retired pointers no hazard slot is protecting.
    /// Caller holds the retired-list lock (writer side only).
    fn reclaim(&self, retired: &mut Vec<*mut T>) {
        retired.retain(|&p| {
            let pinned = self.hazards.iter().any(|h| h.load(SeqCst) == p);
            if !pinned {
                // The retired entry owns the strong count that
                // `Arc::into_raw` leaked at publish time; no hazard
                // guards `p` (see module docs), so reconstituting and
                // dropping that count is the unique release of it.
                unsafe { drop(Arc::from_raw(p)) };
            }
            pinned
        });
    }

    /// Registers a reader, claiming a hazard slot. Returns `None` when
    /// all [`MAX_READERS`] slots are in use.
    pub fn register(self: &Arc<Self>) -> Option<EpochReader<T>> {
        for slot in 0..MAX_READERS {
            if self.claimed[slot]
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                return Some(EpochReader {
                    cell: Arc::clone(self),
                    slot,
                });
            }
        }
        None
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // No readers can exist here: every `EpochReader` holds an
        // `Arc<EpochCell>`, so the cell only drops after the last
        // reader (and its transient hazard) is gone.
        let retired = self.retired.get_mut().unwrap();
        retired.push(self.current.load(SeqCst));
        for &p in retired.iter() {
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

/// A registered reader: owns one hazard slot of its cell.
pub struct EpochReader<T> {
    cell: Arc<EpochCell<T>>,
    slot: usize,
}

impl<T> EpochReader<T> {
    /// Pins and returns the current generation. Lock-free: retries only
    /// while the writer publishes concurrently, and each retry adopts
    /// the newer pointer.
    pub fn pin(&self) -> Arc<T> {
        let hazard = &self.cell.hazards[self.slot];
        loop {
            let p = self.cell.current.load(SeqCst);
            hazard.store(p, SeqCst);
            if self.cell.current.load(SeqCst) == p {
                // Validated: any writer that unpublishes `p` from here
                // on must observe our hazard before reclaiming (module
                // docs). Take a counted reference, then unpin.
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                hazard.store(std::ptr::null_mut(), SeqCst);
                return arc;
            }
            // Publish raced between load and validate; drop the stale
            // hazard and retry on the fresh pointer.
            hazard.store(std::ptr::null_mut(), SeqCst);
        }
    }

    /// Publishes seen by the cell — lets a reader report how far behind
    /// its pinned generation is without pinning again.
    pub fn publish_count(&self) -> u64 {
        self.cell.publish_count()
    }
}

impl<T> Drop for EpochReader<T> {
    fn drop(&mut self) {
        // Pin never leaves a hazard set past its return, but clear
        // defensively before handing the slot back.
        self.cell.hazards[self.slot].store(std::ptr::null_mut(), SeqCst);
        self.cell.claimed[self.slot].store(false, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A generation payload with an internal consistency invariant and
    /// a drop counter, so tests can detect both torn reads and leaks.
    struct Payload {
        a: u64,
        b: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Payload {
        fn new(v: u64, drops: &Arc<AtomicUsize>) -> Arc<Payload> {
            Arc::new(Payload {
                a: v,
                b: v.wrapping_mul(2).wrapping_add(1),
                drops: Arc::clone(drops),
            })
        }
    }

    impl Drop for Payload {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn pin_sees_published_value() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Payload::new(1, &drops));
        let r = cell.register().unwrap();
        assert_eq!(r.pin().a, 1);
        cell.publish(Payload::new(2, &drops));
        assert_eq!(r.pin().a, 2);
        assert_eq!(cell.publish_count(), 1);
    }

    #[test]
    fn old_generation_survives_while_pinned() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Payload::new(1, &drops));
        let r = cell.register().unwrap();
        let pinned = r.pin();
        cell.publish(Payload::new(2, &drops));
        cell.publish(Payload::new(3, &drops));
        // Generation 2 had no readers and is reclaimed; generation 1 is
        // kept alive by our Arc even though the writer retired it.
        assert_eq!(pinned.a, 1);
        assert_eq!(pinned.b, 3);
        assert!(drops.load(SeqCst) <= 1);
        drop(pinned);
        drop(r);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 3, "all generations reclaimed");
    }

    #[test]
    fn slots_exhaust_and_recycle() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Payload::new(1, &drops));
        let readers: Vec<_> = (0..MAX_READERS).map(|_| cell.register().unwrap()).collect();
        assert!(cell.register().is_none(), "slots exhausted");
        drop(readers);
        assert!(cell.register().is_some(), "slots handed back on drop");
    }

    #[test]
    fn concurrent_pins_never_tear_and_never_leak() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = EpochCell::new(Payload::new(0, &drops));
        const PUBLISHES: u64 = 2_000;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = cell.register().unwrap();
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let g = reader.pin();
                        // Invariant holds on every observed generation
                        // (a torn or freed read would break it).
                        assert_eq!(g.b, g.a.wrapping_mul(2).wrapping_add(1));
                        // Generations are observed monotonically.
                        assert!(g.a >= last, "went backwards: {} < {last}", g.a);
                        last = g.a;
                        if g.a == PUBLISHES {
                            return;
                        }
                    }
                });
            }
            let drops = Arc::clone(&drops);
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for v in 1..=PUBLISHES {
                    cell.publish(Payload::new(v, &drops));
                }
            });
        });
        drop(cell);
        assert_eq!(
            drops.load(SeqCst) as u64,
            PUBLISHES + 1,
            "every generation dropped exactly once"
        );
    }
}
