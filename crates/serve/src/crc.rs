//! CRC32C (Castagnoli) — the checksum guarding WAL records and
//! snapshot files.
//!
//! Std-only like the rest of the workspace: a classic 256-entry
//! table-driven implementation of the iSCSI/ext4 polynomial
//! (reflected `0x82F63B78`). Castagnoli rather than the zlib CRC32
//! because its error-detection properties for short records are
//! strictly better and it is what every production WAL (RocksDB,
//! LevelDB, Kafka) uses, so on-disk tooling expectations match.
//!
//! Checksums are stored *masked* (the LevelDB/RocksDB rotation trick):
//! a WAL that itself embeds checksummed payloads would otherwise risk
//! a record whose body contains its own CRC verifying trivially.

/// Generates the lookup table at first use (const fn, so it lives in
/// rodata — no OnceLock, no allocation).
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32C of `data` (unmasked).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The rotation+offset mask applied before a checksum is stored.
const MASK_DELTA: u32 = 0xA282_EAD8;

/// Masks a raw CRC for storage.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Recovers the raw CRC from its stored masked form.
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // 32 zero bytes — the iSCSI test vector.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 0xFF bytes.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the writer appends every accepted batch";
        let want = crc32c(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), want, "missed flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn mask_round_trips_and_differs() {
        for crc in [0u32, 1, 0xE306_9283, u32::MAX] {
            assert_eq!(unmask(mask(crc)), crc);
            assert_ne!(mask(crc), crc, "mask must change the stored form");
        }
    }
}
