//! Query execution against a pinned generation.
//!
//! Each function here is a thin shim over the exact library calls the
//! offline CLI commands make, rendering the same text those commands
//! print. That is deliberate: the acceptance bar for the daemon is that
//! a reply computed against pinned generation G is *byte-identical* to
//! running `tnet stats` / `tnet mine` on a CSV dump of G's
//! transactions, so the shims must not "improve" on the offline
//! formatting — they embed it.

use crate::generation::Generation;
use crate::proto::{json_string, Request};
use tnet_core::error::PipelineError;
use tnet_core::patterns::{classify, interestingness};
use tnet_data::stats::dataset_stats;
use tnet_exec::Exec;
use tnet_fsg::{mine_with, FsgConfig, Support};
use tnet_graph::traverse::count_label_walks;
use tnet_graph::view::GraphView;
use tnet_partition::single_graph::mine_single_graph;

/// Executes a cacheable query (`stats` / `support` / `pattern`) and
/// returns the serialized one-line reply. Non-query ops (ping, trace,
/// mutations, shutdown) are the server loop's business, not ours.
pub fn execute(gen: &Generation, req: &Request, exec: &Exec) -> Result<String, PipelineError> {
    match req {
        Request::Stats => stats_reply(gen),
        Request::Support { labeling, labels } => {
            let lg = gen.labeled(*labeling)?;
            let count = count_label_walks(&lg.frozen, labels);
            Ok(format!(
                "{{\"ok\":true,\"op\":\"support\",\"generation\":{},\"labeling\":{},\
                 \"count\":{count},\"vertices\":{},\"edges\":{}}}",
                gen.id,
                json_string(labeling.name()),
                lg.frozen.vertex_count(),
                lg.frozen.edge_count(),
            ))
        }
        Request::Pattern {
            labeling,
            strategy,
            partitions,
            support,
            max_edges,
            reps,
            top,
        } => {
            let lg = gen.labeled(*labeling)?;
            // Mirrors `tnet mine` exactly: same FsgConfig, same seed,
            // same sort, same line format. Changing anything here
            // breaks the serve-vs-offline differential test.
            let cfg = FsgConfig::default()
                .with_support(Support::Count(*support))
                .with_max_edges(*max_edges)
                .with_memory_budget(512 << 20);
            let mut patterns = mine_single_graph(
                &lg.graph,
                *partitions,
                *reps,
                *strategy,
                42,
                exec,
                |t, e| match mine_with(t, &cfg, e) {
                    Ok(out) => out
                        .patterns
                        .into_iter()
                        .map(|p| (p.graph, p.support))
                        .collect(),
                    Err(_) => Vec::new(),
                },
            );
            patterns.sort_by(|a, b| {
                interestingness(&b.pattern, b.support)
                    .total()
                    .total_cmp(&interestingness(&a.pattern, a.support).total())
            });
            let lines: Vec<String> = patterns
                .iter()
                .take(*top)
                .map(|p| {
                    json_string(&format!(
                        "  support {:>5}  {} edges  {:<14} score {:.0}",
                        p.support,
                        p.pattern.edge_count(),
                        classify(&p.pattern).name(),
                        interestingness(&p.pattern, p.support).total()
                    ))
                })
                .collect();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"pattern\",\"generation\":{},\"labeling\":{},\
                 \"patterns\":{},\"lines\":[{}]}}",
                gen.id,
                json_string(labeling.name()),
                patterns.len(),
                lines.join(","),
            ))
        }
        other => Err(PipelineError::Protocol {
            message: format!("op {other:?} is not a generation query"),
        }),
    }
}

fn stats_reply(gen: &Generation) -> Result<String, PipelineError> {
    if gen.txns.is_empty() {
        return Err(PipelineError::Protocol {
            message: format!(
                "generation {} holds no transactions yet; ingest before querying stats",
                gen.id
            ),
        });
    }
    // The exact text `tnet stats` prints for this transaction set.
    let report = dataset_stats(&gen.txns).to_string();
    Ok(format!(
        "{{\"ok\":true,\"op\":\"stats\",\"generation\":{},\"transactions\":{},\"report\":{}}}",
        gen.id,
        gen.txns.len(),
        json_string(&report),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    fn generation(n: usize) -> Generation {
        let cfg = tnet_data::synth::SynthConfig::scaled(0.01).with_seed(7);
        let mut txns = tnet_data::synth::generate(&cfg).transactions;
        txns.truncate(n);
        Generation::build(1, txns).unwrap()
    }

    #[test]
    fn stats_embeds_offline_render() {
        let g = generation(150);
        let reply = execute(&g, &Request::Stats, &Exec::sequential()).unwrap();
        let offline = dataset_stats(&g.txns).to_string();
        assert!(reply.contains(&json_string(&offline)));
        assert!(reply.starts_with("{\"ok\":true,\"op\":\"stats\",\"generation\":1,"));
    }

    #[test]
    fn support_counts_walks_on_the_frozen_graph() {
        let g = generation(150);
        let req = parse_request(r#"{"op":"support","labeling":"gw","labels":[0]}"#).unwrap();
        let reply = execute(&g, &req, &Exec::sequential()).unwrap();
        let lg = g
            .labeled(tnet_data::od_graph::EdgeLabeling::GrossWeight)
            .unwrap();
        let want = count_label_walks(&lg.frozen, &[tnet_graph::graph::ELabel(0)]);
        assert!(reply.contains(&format!("\"count\":{want}")), "{reply}");
    }

    #[test]
    fn pattern_reply_is_deterministic_across_thread_counts() {
        let g = generation(150);
        let req =
            parse_request(r#"{"op":"pattern","partitions":4,"support":2,"max_edges":3,"reps":1}"#)
                .unwrap();
        let seq = execute(&g, &req, &Exec::sequential()).unwrap();
        let par = execute(&g, &req, &Exec::new(4)).unwrap();
        assert_eq!(
            seq, par,
            "chunking must keep replies thread-count independent"
        );
        assert!(seq.contains("\"lines\":["));
    }

    #[test]
    fn queries_on_the_genesis_generation_explain_themselves() {
        let g = Generation::build(0, Vec::new()).unwrap();
        for line in [
            r#"{"op":"stats"}"#,
            r#"{"op":"support","labels":[1]}"#,
            r#"{"op":"pattern"}"#,
        ] {
            let req = parse_request(line).unwrap();
            let err = execute(&g, &req, &Exec::sequential()).unwrap_err();
            assert_eq!(err.kind(), "protocol", "{line}");
        }
    }
}
