//! The daemon: accept loop, connection threads, and shutdown sequencing.
//!
//! Thread model (see DESIGN.md §12):
//!
//! - **accept thread** — non-blocking accept loop; spawns one thread
//!   per connection and joins them all when shutdown begins (drain).
//! - **connection threads** — each owns a registered [`EpochReader`]
//!   and a private [`Exec`]; reads newline-delimited JSON requests,
//!   answers queries against the generation it pins *per request*, and
//!   forwards mutations to the writer channel. No locks anywhere on
//!   this path: pinning is the hazard-pointer protocol and the result
//!   cache degrades contention to a miss.
//! - **writer thread** — the only mutator; see [`crate::writer`].
//!
//! Shutdown (stdin EOF, a `shutdown` request, or SIGTERM turned into
//! [`ServerHandle::shutdown`]) cancels one token. The accept loop stops
//! accepting and joins connection threads, which finish their in-flight
//! request and close; then the ingest channel drops, which tells the
//! writer to flush a final generation and exit.

use crate::cache::ResultCache;
use crate::durability::{self, Durability, DurabilityConfig};
use crate::epoch::EpochCell;
use crate::generation::Generation;
use crate::proto::{self, Request, MAX_LINE_BYTES};
use crate::query;
use crate::wal::WalOp;
use crate::writer::{IngestOp, Writer, WriterConfig};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tnet_core::error::PipelineError;
use tnet_data::model::Transaction;
use tnet_exec::{CancelToken, Exec};
use tnet_obs::{LatencyHistogram, MetricsRegistry, Span, Tracer};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads for each connection's query executor.
    pub threads: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Writer cadence and batching.
    pub writer: WriterConfig,
    /// Transactions the daemon starts with (generation 0). Ignored —
    /// with a stderr note — when `durability` is configured and the
    /// data directory already holds recovered state.
    pub initial: Vec<Transaction>,
    /// WAL + snapshot + recovery; `None` runs fully in-memory (the
    /// pre-durability behavior, still the default for tests).
    pub durability: Option<DurabilityConfig>,
    /// Collect a span tree (rendered by the CLI at exit).
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_capacity: 256,
            writer: WriterConfig::default(),
            initial: Vec::new(),
            durability: None,
            trace: false,
        }
    }
}

/// State shared by every connection thread.
struct Shared {
    cell: Arc<EpochCell<Generation>>,
    cache: ResultCache,
    registry: MetricsRegistry,
    latency: LatencyHistogram,
    /// WAL fsync latency, recorded by the writer thread and exported
    /// through the `trace` op.
    fsync_latency: Arc<LatencyHistogram>,
    shutdown: CancelToken,
    threads: usize,
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::join`] aborts rather than drains; call `join`.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    tracer: Option<Tracer>,
    ingest: Mutex<Option<Sender<IngestOp>>>,
    accept_thread: Option<JoinHandle<()>>,
    writer_thread: Option<JoinHandle<()>>,
}

/// Starts the daemon: recovers durable state (when configured), binds,
/// publishes generation 0, and spawns the writer and accept threads.
///
/// Recovery order matters: the WAL and snapshot are read *before* the
/// socket binds, so a corrupt data directory refuses startup (typed
/// [`PipelineError::Corruption`], CLI exit 1) rather than serving
/// wrong answers on a live port.
pub fn start(cfg: ServeConfig) -> Result<ServerHandle, PipelineError> {
    let tracer = cfg.trace.then(|| Tracer::new("serve"));
    let span = tracer.as_ref().map_or_else(Span::disabled, |t| t.root());
    let registry = MetricsRegistry::new();
    let fsync_latency = Arc::new(LatencyHistogram::new());

    let (initial, durable) = match &cfg.durability {
        Some(dcfg) => {
            let _t = span.time("serve.recover");
            let recovered = durability::recover(&dcfg.data_dir, &registry)?;
            let mut d = Durability::open(
                dcfg,
                recovered.wal_seq,
                registry.clone(),
                Arc::clone(&fsync_latency),
            )?;
            let seed = if recovered.has_state() {
                if !cfg.initial.is_empty() {
                    eprintln!(
                        "tnet serve: note: {} already holds durable state \
                         ({} live record(s) recovered); ignoring the {} seed record(s)",
                        dcfg.data_dir.display(),
                        recovered.live.len(),
                        cfg.initial.len()
                    );
                }
                recovered.live
            } else {
                // Seed data enters through the WAL like any other batch
                // so *everything* publishable is durable from day one.
                if !cfg.initial.is_empty() {
                    d.append(&WalOp::Append(cfg.initial.clone()))?;
                    d.sync()?;
                }
                cfg.initial
            };
            (seed, Some(d))
        }
        None => (cfg.initial, None),
    };
    let genesis = {
        let _t = span.time("serve.genesis");
        Generation::build(0, initial.clone())?
    };
    let cell = EpochCell::new(Arc::new(genesis));

    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| PipelineError::Io(format!("cannot bind {}: {e}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| PipelineError::Io(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| PipelineError::Io(e.to_string()))?;

    let (ingest_tx, ingest_rx) = mpsc::channel::<IngestOp>();
    let writer = Writer::new(
        Arc::clone(&cell),
        initial,
        1,
        durable,
        registry.clone(),
        span.clone(),
    );
    let writer_cfg = cfg.writer.clone();
    let writer_thread = std::thread::Builder::new()
        .name("tnet-serve-writer".into())
        .spawn(move || writer.run(ingest_rx, writer_cfg))
        .map_err(|e| PipelineError::Io(e.to_string()))?;

    let shared = Arc::new(Shared {
        cell,
        cache: ResultCache::new(cfg.cache_capacity),
        registry: registry.clone(),
        latency: LatencyHistogram::new(),
        fsync_latency,
        shutdown: CancelToken::new(),
        threads: cfg.threads,
    });

    let accept_shared = Arc::clone(&shared);
    let accept_ingest = ingest_tx.clone();
    let accept_thread = std::thread::Builder::new()
        .name("tnet-serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared, accept_ingest))
        .map_err(|e| PipelineError::Io(e.to_string()))?;

    Ok(ServerHandle {
        addr,
        shared,
        tracer,
        ingest: Mutex::new(Some(ingest_tx)),
        accept_thread: Some(accept_thread),
        writer_thread: Some(writer_thread),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.shared.shutdown.cancel();
    }

    /// A clonable token that triggers shutdown when cancelled — for
    /// watcher threads (stdin EOF, signal handlers) that outlive any
    /// borrow of the handle.
    pub fn shutdown_trigger(&self) -> CancelToken {
        self.shared.shutdown.clone()
    }

    /// True once shutdown has been requested (by any path).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.is_cancelled()
    }

    /// Blocks until shutdown is requested.
    pub fn wait(&self) {
        while !self
            .shared
            .shutdown
            .sleep_until_cancelled(Duration::from_secs(3600))
        {}
    }

    /// The daemon's metrics registry (live, shared with all threads).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// The span tree collected so far, when tracing was enabled.
    pub fn trace_snapshot(&self) -> Option<tnet_obs::SpanNode> {
        self.tracer.as_ref().map(|t| t.snapshot())
    }

    /// Drains and stops everything: connections finish their in-flight
    /// request, the writer flushes a final generation, all threads
    /// join. Idempotent; takes `&mut self` so the caller can still read
    /// metrics and trace snapshots afterwards. Returns an error if any
    /// daemon thread panicked.
    pub fn join(&mut self) -> Result<(), PipelineError> {
        self.shutdown();
        let mut failed = false;
        if let Some(h) = self.accept_thread.take() {
            failed |= h.join().is_err();
        }
        // Hang up the writer only after every connection thread (each
        // holding a sender clone) is gone, so the final flush sees all
        // accepted ingests.
        drop(self.ingest.lock().expect("ingest sender lock").take());
        if let Some(h) = self.writer_thread.take() {
            failed |= h.join().is_err();
        }
        if failed {
            return Err(PipelineError::Panic {
                section: "serve".into(),
                message: "a daemon thread panicked during shutdown".into(),
            });
        }
        Ok(())
    }
}

/// Accepts connections until shutdown, then joins every connection
/// thread (the drain).
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, ingest: Sender<IngestOp>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.registry.add("serve.connections", 1);
                let conn_shared = Arc::clone(&shared);
                let conn_ingest = ingest.clone();
                match std::thread::Builder::new()
                    .name("tnet-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared, conn_ingest))
                {
                    Ok(h) => conns.push(h),
                    Err(_) => shared.registry.add("serve.spawn_failures", 1),
                }
                // Reap finished threads opportunistically so a
                // long-lived daemon doesn't accumulate handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if shared
                    .shutdown
                    .sleep_until_cancelled(Duration::from_millis(5))
                {
                    break;
                }
            }
            Err(_) => {
                // Transient accept failure (fd exhaustion, aborted
                // handshake): back off briefly instead of spinning.
                if shared
                    .shutdown
                    .sleep_until_cancelled(Duration::from_millis(5))
                {
                    break;
                }
            }
        }
        if shared.shutdown.is_cancelled() {
            break;
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Outcome of reading one request line.
enum LineRead {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; the excess was discarded
    /// up to the newline.
    Oversized(usize),
    /// Peer closed or the connection should end.
    Closed,
}

/// Reads one newline-terminated request, polling the shutdown token on
/// read timeouts so a drain isn't held hostage by an idle client.
fn read_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> LineRead {
    let mut acc: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut discarded = 0usize;
    loop {
        match reader.read_until(b'\n', &mut acc) {
            Ok(0) => return LineRead::Closed,
            Ok(_) if acc.last() != Some(&b'\n') => {
                // Partial read (timeout split the line); fall through to
                // the oversize check, then keep reading.
            }
            Ok(_) => {
                acc.pop();
                if acc.last() == Some(&b'\r') {
                    acc.pop();
                }
                if discarding {
                    return LineRead::Oversized(discarded + acc.len());
                }
                if acc.len() > MAX_LINE_BYTES {
                    return LineRead::Oversized(acc.len());
                }
                return match String::from_utf8(acc) {
                    Ok(line) => LineRead::Line(line),
                    Err(_) => LineRead::Line("\u{FFFD}".to_string()),
                };
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // An in-flight request line is allowed to finish during
                // drain, but an idle connection closes.
                if shared.shutdown.is_cancelled() && acc.is_empty() {
                    return LineRead::Closed;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Closed,
        }
        // Oversized in progress: drop what we have and keep consuming
        // to the newline so the *next* request starts clean.
        if acc.len() > MAX_LINE_BYTES {
            discarding = true;
            discarded += acc.len();
            acc.clear();
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &str) -> bool {
    // One write per reply (payload + newline in a single buffer): two
    // small writes back-to-back would trip Nagle + delayed-ACK on a
    // nodelay-less peer, turning a sub-millisecond round trip into a
    // ~40ms stall.
    let mut line = Vec::with_capacity(reply.len() + 1);
    line.extend_from_slice(reply.as_bytes());
    line.push(b'\n');
    stream.write_all(&line).is_ok()
}

fn protocol_error(message: String) -> PipelineError {
    PipelineError::Protocol { message }
}

/// One connection's request/reply loop.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>, ingest: Sender<IngestOp>) {
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    // Replies are single small segments; never hold them for Nagle.
    let _ = stream.set_nodelay(true);
    let Some(reader) = shared.cell.register() else {
        // All hazard slots busy: refuse with a typed *retryable* error
        // instead of serving a connection that could never pin a
        // generation. Clients see kind "overloaded" and back off.
        shared.registry.add("serve.readers_rejected", 1);
        shared.registry.add("serve.connections_rejected", 1);
        let err = PipelineError::Overloaded {
            message: format!(
                "all {} reader slots are pinned; back off and retry",
                crate::epoch::MAX_READERS
            ),
        };
        let _ = write_reply(&mut out, &proto::error_reply(&err));
        return;
    };
    let exec = Exec::new(shared.threads);
    let mut buf_reader = BufReader::new(stream);

    loop {
        let line = match read_line(&mut buf_reader, &shared) {
            LineRead::Closed => return,
            LineRead::Oversized(len) => {
                shared.registry.add("serve.query_errors", 1);
                let err = protocol_error(format!(
                    "request line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte limit"
                ));
                if !write_reply(&mut out, &proto::error_reply(&err)) {
                    return;
                }
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match proto::parse_request(&line) {
            Ok(r) => r,
            Err(e) => {
                shared.registry.add("serve.query_errors", 1);
                if !write_reply(&mut out, &proto::error_reply(&e)) {
                    return;
                }
                continue;
            }
        };
        let close_after = request == Request::Shutdown;
        let reply = dispatch(&request, &shared, &reader, &ingest, &exec);
        if !write_reply(&mut out, &reply) || close_after {
            return;
        }
    }
}

/// Executes one request and serializes its reply.
fn dispatch(
    request: &Request,
    shared: &Shared,
    reader: &crate::epoch::EpochReader<Generation>,
    ingest: &Sender<IngestOp>,
    exec: &Exec,
) -> String {
    match request {
        Request::Ping => {
            let gen = reader.pin();
            format!("{{\"ok\":true,\"op\":\"ping\",\"generation\":{}}}", gen.id)
        }
        Request::Shutdown => {
            shared.shutdown.cancel();
            "{\"ok\":true,\"op\":\"shutdown\"}".to_string()
        }
        Request::Trace => trace_reply(shared),
        Request::Ingest { records } => {
            let (ack_tx, ack_rx) = mpsc::channel();
            mutate(
                ingest,
                IngestOp::Append(records.clone(), Some(ack_tx)),
                ack_rx,
                "ingest",
                records.len(),
            )
        }
        Request::Delete { ids } => {
            let (ack_tx, ack_rx) = mpsc::channel();
            mutate(
                ingest,
                IngestOp::Delete(ids.clone(), Some(ack_tx)),
                ack_rx,
                "delete",
                ids.len(),
            )
        }
        // The cacheable generation queries.
        Request::Stats | Request::Support { .. } | Request::Pattern { .. } => {
            let started = Instant::now();
            let gen = reader.pin();
            let canonical = request.canonical();
            let key = canonical.map(|q| (gen.id, q));
            if let Some(key) = &key {
                if let Some(hit) = shared.cache.get(key) {
                    shared.registry.add("serve.queries", 1);
                    shared.latency.record(started.elapsed().as_nanos() as u64);
                    return finalize(request, hit, shared);
                }
            }
            let reply = match query::execute(&gen, request, exec) {
                Ok(reply) => {
                    if let Some(key) = key {
                        shared.cache.put(key, reply.clone());
                    }
                    shared.registry.add("serve.queries", 1);
                    reply
                }
                Err(e) => {
                    shared.registry.add("serve.query_errors", 1);
                    proto::error_reply(&e)
                }
            };
            // How many publishes landed while this query ran against
            // its pinned snapshot — the staleness readers tolerate.
            let lag = shared.cell.publish_count().saturating_sub(gen.id);
            shared.registry.record_max("serve.pinned_lag_max", lag);
            shared.latency.record(started.elapsed().as_nanos() as u64);
            finalize(request, reply, shared)
        }
    }
}

/// Sends a mutation to the writer and waits for its durability
/// acknowledgment: with a WAL configured, `"accepted"` means the batch
/// is on disk (to the fsync policy's guarantee); a WAL refusal comes
/// back as the writer's typed error instead of a false promise.
fn mutate(
    ingest: &Sender<IngestOp>,
    op: IngestOp,
    ack: mpsc::Receiver<Result<(), PipelineError>>,
    name: &str,
    n: usize,
) -> String {
    if ingest.send(op).is_err() {
        return proto::error_reply(&PipelineError::Io(format!(
            "daemon is shutting down; {name} rejected"
        )));
    }
    match ack.recv() {
        Ok(Ok(())) => format!("{{\"ok\":true,\"op\":\"{name}\",\"accepted\":{n}}}"),
        Ok(Err(e)) => proto::error_reply(&e),
        Err(_) => proto::error_reply(&PipelineError::Io(format!(
            "daemon exited before acknowledging the {name}"
        ))),
    }
}

/// Post-processes a cacheable reply. Stats replies get the live
/// `connections_rejected` counter spliced in *outside* the cache (the
/// cached body stays counter-free, so a hit under a changed counter is
/// never stale).
fn finalize(request: &Request, reply: String, shared: &Shared) -> String {
    if !matches!(request, Request::Stats) || !reply.starts_with("{\"ok\":true") {
        return reply;
    }
    let mut reply = reply;
    let rejected = shared.registry.get("serve.connections_rejected");
    reply.truncate(reply.len() - 1);
    reply.push_str(&format!(",\"connections_rejected\":{rejected}}}"));
    reply
}

/// The `trace` op: every counter the daemon keeps, as one flat JSON
/// object (deterministic key order).
fn trace_reply(shared: &Shared) -> String {
    let mut metrics = shared.registry.snapshot();
    metrics.insert("serve.cache_hits".into(), shared.cache.hits());
    metrics.insert("serve.cache_misses".into(), shared.cache.misses());
    metrics.insert("serve.cache_evictions".into(), shared.cache.evictions());
    metrics.insert("serve.publishes_seen".into(), shared.cell.publish_count());
    shared
        .latency
        .snapshot()
        .publish("serve.query_latency", &mut |name, v| {
            metrics.insert(name.to_string(), v);
        });
    shared
        .fsync_latency
        .snapshot()
        .publish("wal.fsync", &mut |name, v| {
            metrics.insert(name.to_string(), v);
        });
    let fields: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("{}:{v}", proto::json_string(k)))
        .collect();
    format!(
        "{{\"ok\":true,\"op\":\"trace\",\"metrics\":{{{}}}}}",
        fields.join(",")
    )
}
