//! Snapshot checkpoints: the live transaction set, materialized.
//!
//! A snapshot lets the WAL be truncated — without one, recovery replay
//! time grows without bound under sustained ingest. The file is the
//! *live* set (log minus tombstones) plus the highest WAL sequence it
//! incorporates, self-checksummed, laid out little-endian:
//!
//! ```text
//! magic "TNETSNAP"  version:u32  wal_seq:u64  count:u64  (txn)×count
//! masked_crc:u32   — CRC32C over every preceding byte
//! ```
//!
//! Writes are atomic: the bytes go to `snapshot.tmp`, which is fsynced,
//! renamed over `snapshot.bin`, and the directory fsynced — so a crash
//! at any instant leaves either the old snapshot or the new one, never
//! a half-written hybrid. Only *after* the rename does the caller
//! truncate the WAL; a crash in between replays some WAL records whose
//! effects the snapshot already holds, which the `wal_seq` skip rule
//! makes a no-op.
//!
//! A snapshot that fails its checksum or structure is refused with a
//! typed [`PipelineError::Corruption`] — same policy as mid-log WAL
//! damage, and for the same reason: it is the *base* state, and serving
//! from a half-trusted base silently corrupts every answer.

use crate::crc;
use crate::wal::{decode_txn, encode_txn, Cursor};
use std::io::Write;
use std::path::{Path, PathBuf};
use tnet_core::error::PipelineError;
use tnet_data::model::Transaction;
use tnet_exec::failpoint;

const MAGIC: &[u8; 8] = b"TNETSNAP";
const VERSION: u32 = 1;

/// File name of the current snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name the atomic write stages through.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// A checkpoint: the live set as of WAL sequence `wal_seq`.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Highest WAL record sequence whose effects are included. Replay
    /// skips records at or below this.
    pub wal_seq: u64,
    /// The live transactions (tombstones already applied).
    pub txns: Vec<Transaction>,
}

/// Path of the current snapshot in `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Serializes a snapshot to its on-disk byte form.
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + snap.txns.len() * 49);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&snap.wal_seq.to_le_bytes());
    out.extend_from_slice(&(snap.txns.len() as u64).to_le_bytes());
    for t in &snap.txns {
        encode_txn(&mut out, t);
    }
    let crc = crc::mask(crc::crc32c(&out));
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn corrupt(path: &Path, offset: u64, message: impl Into<String>) -> PipelineError {
    PipelineError::Corruption {
        path: path.display().to_string(),
        offset,
        message: message.into(),
    }
}

/// Decodes and verifies snapshot bytes. `path` is only for error
/// attribution.
pub fn decode(bytes: &[u8], path: &Path) -> Result<Snapshot, PipelineError> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 4 {
        return Err(corrupt(path, 0, "snapshot file is too short to be valid"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = crc::unmask(u32::from_le_bytes(crc_bytes.try_into().unwrap()));
    if crc::crc32c(body) != stored {
        return Err(corrupt(path, 0, "snapshot checksum mismatch (CRC32C)"));
    }
    let mut c = Cursor::new(body);
    if c.take(MAGIC.len()) != Some(&MAGIC[..]) {
        return Err(corrupt(path, 0, "bad snapshot magic"));
    }
    let version = c
        .u32()
        .ok_or_else(|| corrupt(path, c.pos() as u64, "truncated snapshot header"))?;
    if version != VERSION {
        return Err(corrupt(
            path,
            8,
            format!("snapshot version {version} (this build reads {VERSION})"),
        ));
    }
    let wal_seq = c
        .u64()
        .ok_or_else(|| corrupt(path, c.pos() as u64, "truncated snapshot header"))?;
    let count = c
        .u64()
        .ok_or_else(|| corrupt(path, c.pos() as u64, "truncated snapshot header"))?;
    let mut txns = Vec::with_capacity(usize::try_from(count).unwrap_or(0).min(1 << 24));
    for i in 0..count {
        let t = decode_txn(&mut c).ok_or_else(|| {
            corrupt(
                path,
                c.pos() as u64,
                format!("snapshot record {i} of {count} is truncated or malformed"),
            )
        })?;
        txns.push(t);
    }
    if c.pos() != body.len() {
        return Err(corrupt(
            path,
            c.pos() as u64,
            "snapshot has trailing bytes after the declared records",
        ));
    }
    Ok(Snapshot { wal_seq, txns })
}

/// Writes `snap` atomically into `dir` (tmp + fsync + rename + dir
/// fsync). On return the snapshot is durable; the caller may truncate
/// the WAL.
pub fn write(dir: &Path, snap: &Snapshot) -> Result<(), PipelineError> {
    failpoint::hit("serve::snapshot_write").map_err(|f| PipelineError::Io(f.to_string()))?;
    let tmp = dir.join(SNAPSHOT_TMP);
    let dst = snapshot_path(dir);
    let bytes = encode(snap);
    let io = |e: std::io::Error, what: &str| {
        PipelineError::Io(format!("snapshot {what} failed in {}: {e}", dir.display()))
    };
    let mut f = std::fs::File::create(&tmp).map_err(|e| io(e, "create"))?;
    f.write_all(&bytes).map_err(|e| io(e, "write"))?;
    f.sync_all().map_err(|e| io(e, "fsync"))?;
    drop(f);
    std::fs::rename(&tmp, &dst).map_err(|e| io(e, "rename"))?;
    // Make the rename itself durable. A failure here is tolerable on
    // filesystems without directory fsync; the rename is still ordered
    // after the data sync.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads the snapshot from `dir`, if one exists. Missing ⇒ `Ok(None)`
/// (a fresh data directory); damaged ⇒ typed corruption.
pub fn read(dir: &Path) -> Result<Option<Snapshot>, PipelineError> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(PipelineError::Io(format!(
                "cannot read snapshot {}: {e}",
                path.display()
            )))
        }
    };
    decode(&bytes, &path).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::{Date, LatLon, TransMode};

    fn txn(id: u64) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(733000 + id as u32),
            req_delivery: Date(733003),
            origin: LatLon::new(40.7, -74.0),
            dest: LatLon::new(41.8, -87.6),
            total_distance: 790.0,
            gross_weight: 18000.0 + id as f64,
            transit_hours: 18.0,
            mode: TransMode::LessThanTruckload,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tnet_snap_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        let snap = Snapshot {
            wal_seq: 42,
            txns: (1..=5).map(txn).collect(),
        };
        write(&dir, &snap).unwrap();
        let loaded = read(&dir).unwrap().expect("snapshot exists");
        assert_eq!(loaded, snap);
        assert!(
            !dir.join(SNAPSHOT_TMP).exists(),
            "tmp staging file must not linger"
        );
    }

    #[test]
    fn empty_dir_reads_none() {
        let dir = tmp_dir("fresh");
        assert!(read(&dir).unwrap().is_none());
    }

    #[test]
    fn empty_live_set_round_trips() {
        let dir = tmp_dir("empty");
        let snap = Snapshot {
            wal_seq: 7,
            txns: Vec::new(),
        };
        write(&dir, &snap).unwrap();
        assert_eq!(read(&dir).unwrap().unwrap(), snap);
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmp_dir("rewrite");
        write(
            &dir,
            &Snapshot {
                wal_seq: 1,
                txns: vec![txn(1)],
            },
        )
        .unwrap();
        let newer = Snapshot {
            wal_seq: 9,
            txns: vec![txn(2), txn(3)],
        };
        write(&dir, &newer).unwrap();
        assert_eq!(read(&dir).unwrap().unwrap(), newer);
    }

    #[test]
    fn bitflip_anywhere_is_corruption() {
        let dir = tmp_dir("flip");
        let snap = Snapshot {
            wal_seq: 3,
            txns: (1..=3).map(txn).collect(),
        };
        write(&dir, &snap).unwrap();
        let clean = std::fs::read(snapshot_path(&dir)).unwrap();
        // Flip a byte in the header, the body, and the trailer.
        for at in [4usize, clean.len() / 2, clean.len() - 2] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x01;
            std::fs::write(snapshot_path(&dir), &bytes).unwrap();
            let err = read(&dir).unwrap_err();
            assert_eq!(err.kind(), "corruption", "flip at byte {at}");
        }
    }

    #[test]
    fn truncated_file_is_corruption() {
        let dir = tmp_dir("trunc");
        write(
            &dir,
            &Snapshot {
                wal_seq: 2,
                txns: vec![txn(1), txn(2)],
            },
        )
        .unwrap();
        let bytes = std::fs::read(snapshot_path(&dir)).unwrap();
        std::fs::write(snapshot_path(&dir), &bytes[..bytes.len() - 10]).unwrap();
        assert_eq!(read(&dir).unwrap_err().kind(), "corruption");
        // Degenerate: a nearly-empty file.
        std::fs::write(snapshot_path(&dir), b"TN").unwrap();
        assert_eq!(read(&dir).unwrap_err().kind(), "corruption");
    }

    #[test]
    fn wrong_version_is_refused() {
        let dir = tmp_dir("version");
        let snap = Snapshot {
            wal_seq: 1,
            txns: vec![txn(1)],
        };
        let mut bytes = encode(&snap);
        bytes[8] = 99; // version field
                       // Re-seal the checksum so only the version is "wrong".
        let body_len = bytes.len() - 4;
        let crc = crc::mask(crc::crc32c(&bytes[..body_len]));
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(snapshot_path(&dir), &bytes).unwrap();
        let err = read(&dir).unwrap_err();
        assert_eq!(err.kind(), "corruption");
        assert!(err.to_string().contains("version 99"), "{err}");
    }
}
