//! End-to-end tests against a live `tnet-serve` daemon on a loopback
//! TCP port: generation pinning, cache semantics, thread-count
//! determinism, drain-on-shutdown, protocol-error recovery, and the
//! serve-vs-offline differential the ISSUE's acceptance bar names.
//!
//! Every test starts its own daemon on an ephemeral port, so the tests
//! are free to run in parallel. The publish-failpoint test lives in its
//! own integration binary (`publish_failpoint.rs`) because armed
//! failpoints are process-global.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_graph::traverse::count_label_walks;
use tnet_serve::proto::{json_string, parse_request};
use tnet_serve::{query, EpochCell, Generation, ServeConfig, ServerHandle, WriterConfig};

fn txns(scale: f64, seed: u64) -> Vec<Transaction> {
    let cfg = tnet_data::synth::SynthConfig::scaled(scale).with_seed(seed);
    tnet_data::synth::generate(&cfg).transactions
}

/// A daemon that publishes eagerly (short timer) — for turnover tests.
fn churny_config(initial: Vec<Transaction>) -> ServeConfig {
    ServeConfig {
        writer: WriterConfig {
            publish_interval: Duration::from_millis(25),
            batch: 4096,
        },
        initial,
        ..ServeConfig::default()
    }
}

/// A daemon that never publishes on its own during a test (hour-long
/// timer, huge batch) — generation 0 stays pinned however long queries
/// and ingests interleave.
fn quiescent_config(initial: Vec<Transaction>) -> ServeConfig {
    ServeConfig {
        writer: WriterConfig {
            publish_interval: Duration::from_secs(3600),
            batch: 1 << 20,
        },
        initial,
        ..ServeConfig::default()
    }
}

/// One request/reply client over real TCP.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        let mut buf = line.as_bytes().to_vec();
        buf.push(b'\n');
        self.stream.write_all(&buf).expect("send");
        self.recv()
    }

    /// Sends without reading the reply (for in-flight drain tests).
    fn send_only(&mut self, line: &str) {
        let mut buf = line.as_bytes().to_vec();
        buf.push(b'\n');
        self.stream.write_all(&buf).expect("send");
    }

    fn recv(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        reply.trim_end().to_string()
    }
}

/// Extracts `"key":<u64>` from a one-line JSON reply. Good enough for
/// the flat replies the daemon emits; avoids a JSON-parser dependency.
fn field_u64(reply: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let at = reply
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {reply}"));
    reply[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {reply}"))
}

/// A counter out of the `trace` reply's metrics object.
fn metric(client: &mut Client, name: &str) -> u64 {
    let reply = client.send(r#"{"op":"trace"}"#);
    field_u64(&reply, name)
}

/// Polls `ping` until the served generation reaches `want`.
fn wait_for_generation(client: &mut Client, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let gen = field_u64(&client.send(r#"{"op":"ping"}"#), "generation");
        if gen >= want {
            return gen;
        }
        assert!(Instant::now() < deadline, "generation never reached {want}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A reader pinned to generation G keeps getting byte-identical replies
/// while (and after) G+1 publishes — the epoch cell's core contract,
/// exercised through the same query path the daemon serves.
#[test]
fn pinned_generation_stays_byte_identical_while_next_publishes() {
    let mut data = txns(0.01, 7);
    data.truncate(300);
    let gen1 = Arc::new(Generation::build(1, data.clone()).unwrap());
    let cell = EpochCell::new(gen1);
    let reader = cell.register().unwrap();
    let pinned = reader.pin();

    let exec = Exec::sequential();
    let requests = [
        r#"{"op":"stats"}"#,
        r#"{"op":"support","labeling":"gw","labels":[0,1]}"#,
        r#"{"op":"pattern","partitions":4,"support":2,"max_edges":3,"reps":1}"#,
    ];
    let before: Vec<String> = requests
        .iter()
        .map(|line| query::execute(&pinned, &parse_request(line).unwrap(), &exec).unwrap())
        .collect();

    // G+1: a strictly larger transaction set, published mid-flight.
    let mut grown = data.clone();
    grown.extend(
        txns(0.01, 8)
            .into_iter()
            .take(100)
            .enumerate()
            .map(|(i, mut t)| {
                t.id = 1_000_000 + i as u64;
                t
            }),
    );
    cell.publish(Arc::new(Generation::build(2, grown).unwrap()));

    for (line, want) in requests.iter().zip(&before) {
        let got = query::execute(&pinned, &parse_request(line).unwrap(), &exec).unwrap();
        assert_eq!(&got, want, "pinned reply changed after publish: {line}");
    }
    // A fresh pin observes the new generation; the old Arc stays valid.
    assert_eq!(reader.pin().id, 2);
    assert_eq!(pinned.id, 1);
}

/// Cache keys carry the generation id: a publish invalidates every
/// cached reply without any explicit eviction walk.
#[test]
fn generation_turnover_invalidates_cache_keys() {
    let mut handle = tnet_serve::start(churny_config(txns(0.005, 7))).unwrap();
    let mut c = Client::connect(&handle);

    assert!(c.send(r#"{"op":"stats"}"#).contains("\"ok\":true"));
    assert_eq!(metric(&mut c, "serve.cache_misses"), 1);
    assert!(c.send(r#"{"op":"stats"}"#).contains("\"ok\":true"));
    assert_eq!(
        metric(&mut c, "serve.cache_hits"),
        1,
        "repeat within a generation hits"
    );

    let accepted = c.send(r#"{"op":"ingest","records":[{"id":900001,"pickup":733040,"olat":40.1,"olon":-88.0,"dlat":41.9,"dlon":-87.6,"distance":180.0,"weight":9500.0,"hours":8.0}]}"#);
    assert!(accepted.contains("\"accepted\":1"), "{accepted}");
    wait_for_generation(&mut c, 1);

    assert!(c.send(r#"{"op":"stats"}"#).contains("\"generation\":1"));
    assert_eq!(
        metric(&mut c, "serve.cache_misses"),
        2,
        "new generation means a new key: the old entry must not answer"
    );
    handle.shutdown();
    handle.wait();
    handle.join().unwrap();
}

/// Eviction follows recency, not insertion order, and the counters the
/// trace op exports track it exactly.
#[test]
fn lru_eviction_follows_recency_at_server_level() {
    let mut cfg = quiescent_config(txns(0.005, 7));
    cfg.cache_capacity = 2;
    let mut handle = tnet_serve::start(cfg).unwrap();
    let mut c = Client::connect(&handle);

    let s1 = r#"{"op":"support","labeling":"gw","labels":[0]}"#;
    let s2 = r#"{"op":"support","labeling":"gw","labels":[1]}"#;
    let s3 = r#"{"op":"support","labeling":"gw","labels":[0,1]}"#;
    // miss, miss, hit(s1), miss(s3 evicts s2), miss(s2 evicts s1),
    // hit(s3), miss(s1) — recency protects s1 at step 3 and s3 at
    // step 6, insertion order alone would evict differently.
    for line in [s1, s2, s1, s3, s2, s3, s1] {
        assert!(c.send(line).contains("\"ok\":true"));
    }
    assert_eq!(metric(&mut c, "serve.cache_hits"), 2);
    assert_eq!(metric(&mut c, "serve.cache_misses"), 5);
    assert_eq!(metric(&mut c, "serve.cache_evictions"), 3);
    handle.shutdown();
    handle.wait();
    handle.join().unwrap();
}

/// The same query answered on daemons sized 1, 2, and 8 worker threads
/// — with concurrent clients and a concurrent (unpublished) ingest
/// stream — produces byte-identical replies everywhere.
#[test]
fn replies_identical_across_reader_thread_counts_under_ingest() {
    let data = txns(0.005, 7);
    let lines = [
        r#"{"op":"stats"}"#,
        r#"{"op":"support","labeling":"td","labels":[1,0]}"#,
        r#"{"op":"pattern","partitions":4,"support":2,"max_edges":3,"reps":1,"top":10}"#,
    ];
    let mut per_thread_count: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut cfg = quiescent_config(data.clone());
        cfg.threads = threads;
        // Disable the cache so every client genuinely recomputes.
        cfg.cache_capacity = 0;
        let mut handle = tnet_serve::start(cfg).unwrap();

        let replies: Vec<Vec<String>> = std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                let mut c = Client::connect(&handle);
                for batch in 0..5 {
                    let recs: Vec<String> = (0..8)
                        .map(|i| {
                            format!(
                                "{{\"id\":{},\"pickup\":733040,\"olat\":40.5,\"olon\":-88.0,\
                                 \"dlat\":41.9,\"dlon\":-87.6,\"distance\":200.0,\
                                 \"weight\":9000.0,\"hours\":9.0}}",
                                800_000 + batch * 8 + i
                            )
                        })
                        .collect();
                    let reply = c.send(&format!(
                        "{{\"op\":\"ingest\",\"records\":[{}]}}",
                        recs.join(",")
                    ));
                    assert!(reply.contains("\"accepted\":8"), "{reply}");
                }
            });
            let clients: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let mut c = Client::connect(&handle);
                        lines.iter().map(|l| c.send(l)).collect::<Vec<String>>()
                    })
                })
                .collect();
            let out = clients.into_iter().map(|h| h.join().unwrap()).collect();
            ingest.join().unwrap();
            out
        });
        for r in &replies[1..] {
            assert_eq!(r, &replies[0], "clients disagree at {threads} threads");
        }
        per_thread_count.push(replies.into_iter().next().unwrap());
        handle.shutdown();
        handle.wait();
        handle.join().unwrap();
    }
    assert_eq!(per_thread_count[0], per_thread_count[1], "1 vs 2 threads");
    assert_eq!(per_thread_count[0], per_thread_count[2], "1 vs 8 threads");
}

/// Shutdown drains: a request in flight when another connection orders
/// shutdown still gets its full reply, accepted ingests reach the final
/// flush, and the daemon publishes that flush before exiting.
#[test]
fn shutdown_drains_inflight_requests_and_flushes_ingests() {
    let mut handle = tnet_serve::start(quiescent_config(txns(0.005, 7))).unwrap();
    let mut a = Client::connect(&handle);
    let mut b = Client::connect(&handle);

    let reply = a.send(r#"{"op":"ingest","records":[{"id":700001,"pickup":733040,"olat":40.1,"olon":-88.0,"dlat":41.9,"dlon":-87.6,"distance":180.0,"weight":9500.0,"hours":8.0},{"id":700002,"pickup":733041,"olat":40.2,"olon":-88.1,"dlat":41.8,"dlon":-87.5,"distance":190.0,"weight":9600.0,"hours":8.5}]}"#);
    assert!(reply.contains("\"accepted\":2"), "{reply}");

    a.send_only(r#"{"op":"stats"}"#);
    assert!(b.send(r#"{"op":"shutdown"}"#).contains("\"ok\":true"));
    let stats = a.recv();
    assert!(
        stats.contains("\"op\":\"stats\"") && stats.contains("\"ok\":true"),
        "in-flight request must complete during drain: {stats}"
    );

    handle.wait();
    handle.join().unwrap();
    let reg = handle.registry();
    assert_eq!(reg.get("serve.records_ingested"), 2);
    assert_eq!(
        reg.get("serve.generations_published"),
        1,
        "the quiescent timer never fired, so this publish is the final flush"
    );
}

/// Malformed, unknown, and oversized request lines each get a one-line
/// typed error reply; the connection (and the daemon) keep serving.
#[test]
fn protocol_errors_never_kill_the_connection() {
    let mut handle = tnet_serve::start(quiescent_config(txns(0.005, 7))).unwrap();
    let mut c = Client::connect(&handle);

    for bad in [
        "this is not json",
        r#"{"op":"frobnicate"}"#,
        r#"{"op":"support","labels":"zero"}"#,
        "{\"op\":",
    ] {
        let reply = c.send(bad);
        assert!(reply.contains("\"ok\":false"), "{bad} -> {reply}");
        assert!(reply.contains("\"kind\":\"protocol\""), "{bad} -> {reply}");
        assert!(!reply.contains('\n'));
    }

    // An oversized line (> 64 KiB) is discarded up to its newline and
    // answered, and the next request on the same socket still works.
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(70 * 1024));
    let reply = c.send(&huge);
    assert!(reply.contains("\"kind\":\"protocol\""), "{reply}");
    assert!(reply.contains("exceeds"), "{reply}");
    assert!(c.send(r#"{"op":"ping"}"#).contains("\"ok\":true"));

    assert_eq!(metric(&mut c, "serve.query_errors"), 5);
    handle.shutdown();
    handle.wait();
    handle.join().unwrap();
}

/// The acceptance differential: replies from the daemon are
/// byte-identical to what the offline code path produces on the same
/// snapshot — stats to `tnet stats`'s render, support to a hand-built
/// frozen-CSR walk, pattern to the `tnet mine` pipeline.
#[test]
fn serve_replies_match_offline_pipeline_byte_for_byte() {
    let data = txns(0.01, 42);
    let mut handle = tnet_serve::start(quiescent_config(data.clone())).unwrap();
    let mut c = Client::connect(&handle);
    let offline_gen = Generation::build(0, data.clone()).unwrap();
    let exec = Exec::sequential();

    // stats: the reply embeds the exact `tnet stats` text, plus the
    // daemon-side `connections_rejected` field the dispatch layer
    // splices in (0 here — nothing was refused).
    let stats = c.send(r#"{"op":"stats"}"#);
    let render = tnet_data::stats::dataset_stats(&data).to_string();
    assert!(
        stats.contains(&json_string(&render)),
        "stats render diverged"
    );
    let offline_stats = query::execute(
        &offline_gen,
        &parse_request(r#"{"op":"stats"}"#).unwrap(),
        &exec,
    )
    .unwrap();
    let expected = format!(
        "{},\"connections_rejected\":0}}",
        &offline_stats[..offline_stats.len() - 1]
    );
    assert_eq!(stats, expected);

    // support: equal to a frozen-CSR walk on a graph built through the
    // offline pipeline calls directly (not via Generation).
    let scheme = BinScheme::fit_width_transactions(&data).unwrap();
    let mut g = build_od_graph(
        &data,
        &scheme,
        EdgeLabeling::GrossWeight,
        VertexLabeling::Uniform,
    )
    .graph;
    g.dedup_edges();
    let frozen = g.freeze();
    let labels = [tnet_graph::graph::ELabel(0), tnet_graph::graph::ELabel(1)];
    let support = c.send(r#"{"op":"support","labeling":"gw","labels":[0,1]}"#);
    assert_eq!(
        field_u64(&support, "count"),
        count_label_walks(&frozen, &labels),
        "{support}"
    );

    // pattern: full-line equality against the offline mine pipeline,
    // and the cached second answer is the same bytes again.
    let pat_line = r#"{"op":"pattern","partitions":4,"support":3,"max_edges":3,"reps":1,"top":10}"#;
    let pattern = c.send(pat_line);
    assert_eq!(
        pattern,
        query::execute(&offline_gen, &parse_request(pat_line).unwrap(), &exec).unwrap(),
        "serve pattern reply diverged from the offline miner"
    );
    assert_eq!(
        c.send(pat_line),
        pattern,
        "cache must replay identical bytes"
    );

    handle.shutdown();
    handle.wait();
    handle.join().unwrap();
}

/// A daemon with a data directory: acknowledged mutations survive a
/// (graceful) restart, recovered state supersedes the `initial` seed,
/// and the restarted daemon's replies match a daemon that never
/// stopped. The SIGKILL variant lives in the CLI's crash_recovery
/// integration test, where a real subprocess can be killed.
#[test]
fn durable_daemon_recovers_acknowledged_state_across_restart() {
    let dir = std::env::temp_dir().join(format!("tnet_serve_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = txns(0.005, 7);

    let durable = |initial: Vec<Transaction>| {
        let mut cfg = quiescent_config(initial);
        cfg.durability = Some(tnet_serve::DurabilityConfig {
            data_dir: dir.clone(),
            fsync: tnet_serve::FsyncPolicy::Always,
            snapshot_every: 0,
        });
        cfg
    };

    // Incarnation 1: seed + one acked ingest + one acked delete.
    let mut handle = tnet_serve::start(durable(data.clone())).unwrap();
    let mut c = Client::connect(&handle);
    let reply = c.send(r#"{"op":"ingest","records":[{"id":910001,"pickup":733040,"olat":40.1,"olon":-88.0,"dlat":41.9,"dlon":-87.6,"distance":180.0,"weight":9500.0,"hours":8.0},{"id":910002,"pickup":733041,"olat":40.2,"olon":-88.1,"dlat":41.8,"dlon":-87.5,"distance":190.0,"weight":9600.0,"hours":8.5}]}"#);
    assert!(reply.contains("\"accepted\":2"), "{reply}");
    let first_id = data[0].id;
    let reply = c.send(&format!("{{\"op\":\"delete\",\"ids\":[{first_id}]}}"));
    assert!(reply.contains("\"accepted\":1"), "{reply}");
    drop(c);
    handle.shutdown();
    handle.wait();
    handle.join().unwrap();

    // Incarnation 2: same dir, a *different* seed that must be ignored
    // in favor of the recovered state.
    let decoy = txns(0.005, 99);
    let mut restarted = tnet_serve::start(durable(decoy)).unwrap();
    let mut c2 = Client::connect(&restarted);

    // Control: a never-restarted daemon fed the exact acknowledged
    // live set (seed + both ingested records, minus the deleted id).
    let mut control_set: Vec<Transaction> = data.clone();
    control_set.push(parse_ingest_record(
        910001, 733040, 40.1, -88.0, 41.9, -87.6, 180.0, 9500.0, 8.0,
    ));
    control_set.push(parse_ingest_record(
        910002, 733041, 40.2, -88.1, 41.8, -87.5, 190.0, 9600.0, 8.5,
    ));
    control_set.retain(|t| t.id != first_id);
    let mut control = tnet_serve::start(quiescent_config(control_set)).unwrap();
    let mut cc = Client::connect(&control);

    for line in [
        r#"{"op":"stats"}"#,
        r#"{"op":"support","labeling":"gw","labels":[0,1]}"#,
        r#"{"op":"pattern","partitions":4,"support":2,"max_edges":3,"reps":1,"top":10}"#,
    ] {
        assert_eq!(
            c2.send(line),
            cc.send(line),
            "restarted daemon diverged from the never-stopped control on {line}"
        );
    }

    // The recovery counters are visible through the trace op.
    let trace = c2.send(r#"{"op":"trace"}"#);
    assert!(field_u64(&trace, "recover.live_records") > 0, "{trace}");

    drop(c2);
    drop(cc);
    restarted.shutdown();
    restarted.wait();
    restarted.join().unwrap();
    control.shutdown();
    control.wait();
    control.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a Transaction exactly as the wire parser would from an ingest
/// record with these fields — keeps the restart differential honest
/// (both daemons see byte-identical inputs).
#[allow(clippy::too_many_arguments)]
fn parse_ingest_record(
    id: u64,
    pickup: u32,
    olat: f64,
    olon: f64,
    dlat: f64,
    dlon: f64,
    distance: f64,
    weight: f64,
    hours: f64,
) -> Transaction {
    let line = format!(
        "{{\"op\":\"ingest\",\"records\":[{{\"id\":{id},\"pickup\":{pickup},\"olat\":{olat},\
         \"olon\":{olon},\"dlat\":{dlat},\"dlon\":{dlon},\"distance\":{distance},\
         \"weight\":{weight},\"hours\":{hours}}}]}}"
    );
    match parse_request(&line).unwrap() {
        tnet_serve::Request::Ingest { mut records } => records.pop().unwrap(),
        other => panic!("not an ingest: {other:?}"),
    }
}

/// When every hazard slot is pinned, the next connection gets a typed,
/// *retryable* `overloaded` error (not a protocol error), the rejection
/// counters tick, and the `stats` op exposes the count.
#[test]
fn reader_slot_exhaustion_replies_typed_retryable_overload() {
    let mut handle = tnet_serve::start(quiescent_config(txns(0.005, 7))).unwrap();

    // Saturate all 128 hazard slots with idle-but-registered
    // connections; the ping reply proves each slot is held.
    let mut herd: Vec<Client> = Vec::new();
    for i in 0..128 {
        let mut c = Client::connect(&handle);
        let reply = c.send(r#"{"op":"ping"}"#);
        assert!(reply.contains("\"ok\":true"), "conn {i}: {reply}");
        herd.push(c);
    }

    // Slot 129: refused with kind=overloaded (the retryable taxonomy
    // branch), then the server closes the connection.
    let mut rejected = Client::connect(&handle);
    let reply = rejected.recv();
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("\"kind\":\"overloaded\""), "{reply}");
    assert!(reply.contains("retry"), "{reply}");

    // Free one slot, wait for the server thread to notice the hangup,
    // and verify the counters through trace + stats.
    drop(herd.pop());
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut c = loop {
        let mut c = Client::connect(&handle);
        let reply = c.send(r#"{"op":"ping"}"#);
        if reply.contains("\"ok\":true") {
            break c;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after client hangup: {reply}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // At least one rejection (the guaranteed overflow connection); the
    // retry loop above may have been rejected a few more times before a
    // hazard slot was reclaimed, so this is a floor, not an exact count.
    assert!(metric(&mut c, "serve.readers_rejected") >= 1);
    let stats = c.send(r#"{"op":"stats"}"#);
    assert!(
        field_u64(&stats, "connections_rejected") >= 1,
        "stats must expose the rejection count: {stats}"
    );

    drop(herd);
    drop(c);
    handle.shutdown();
    handle.wait();
    handle.join().unwrap();
}
