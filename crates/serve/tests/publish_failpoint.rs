//! Supervision test for the `serve::publish` failpoint: a daemon whose
//! publish step faults keeps serving the generation it already has, and
//! recovers (publishing the retained pending batch) once the fault
//! clears.
//!
//! Kept in its own integration binary: armed failpoints are
//! process-global, so this must not share a process with tests that
//! expect publishes to succeed.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tnet_exec::failpoint;
use tnet_serve::{ServeConfig, WriterConfig};

/// Extracts `"key":<u64>` from a one-line JSON reply; counters the
/// registry has never incremented are simply absent, so a missing key
/// reads as 0.
fn field_u64(reply: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let Some(at) = reply.find(&tag) else { return 0 };
    reply[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {reply}"))
}

#[test]
fn failed_publish_degrades_to_the_previous_generation() {
    let initial = {
        let cfg = tnet_data::synth::SynthConfig::scaled(0.005).with_seed(7);
        tnet_data::synth::generate(&cfg).transactions
    };
    let mut handle = tnet_serve::start(ServeConfig {
        writer: WriterConfig {
            publish_interval: Duration::from_millis(25),
            batch: 4096,
        },
        initial,
        ..ServeConfig::default()
    })
    .unwrap();

    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |line: &str| {
        let mut buf = line.as_bytes().to_vec();
        buf.push(b'\n');
        let mut s = stream.try_clone().unwrap();
        s.write_all(&buf).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    assert_eq!(field_u64(&send(r#"{"op":"ping"}"#), "generation"), 0);
    let stats_before = send(r#"{"op":"stats"}"#);
    assert!(stats_before.contains("\"ok\":true"), "{stats_before}");

    // Fault the publish step, then ingest. The writer's attempts must
    // fail without disturbing what readers see.
    failpoint::arm("serve::publish=err").unwrap();
    let reply = send(
        r#"{"op":"ingest","records":[{"id":900001,"pickup":733040,"olat":40.1,"olon":-88.0,"dlat":41.9,"dlon":-87.6,"distance":180.0,"weight":9500.0,"hours":8.0}]}"#,
    );
    assert!(reply.contains("\"accepted\":1"), "{reply}");

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let failures = field_u64(&send(r#"{"op":"trace"}"#), "serve.publish_failures");
        if failures >= 2 {
            break; // failed at least twice: it is retrying, not giving up
        }
        assert!(Instant::now() < deadline, "publish failpoint never tripped");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        field_u64(&send(r#"{"op":"ping"}"#), "generation"),
        0,
        "a failed publish must leave the served generation unchanged"
    );
    assert_eq!(
        send(r#"{"op":"stats"}"#),
        stats_before,
        "old-generation replies must stay byte-identical under publish failure"
    );

    // Clear the fault: the retained pending batch publishes on the next
    // timer tick and the ingested record becomes visible.
    failpoint::disarm();
    let deadline = Instant::now() + Duration::from_secs(30);
    let gen = loop {
        let gen = field_u64(&send(r#"{"op":"ping"}"#), "generation");
        if gen >= 1 {
            break gen;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never recovered after disarm"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let stats_after = send(r#"{"op":"stats"}"#);
    assert!(
        stats_after.contains(&format!("\"generation\":{gen}")),
        "{stats_after}"
    );
    assert_ne!(
        stats_after, stats_before,
        "the pending ingest must land after recovery"
    );

    assert!(send(r#"{"op":"shutdown"}"#).contains("\"ok\":true"));
    handle.wait();
    handle.join().unwrap();
    assert!(handle.registry().get("serve.publish_failures") >= 2);
    assert!(handle.registry().get("serve.generations_published") >= 1);
}
