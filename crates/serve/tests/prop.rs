//! Property-based fuzzing of the wire-protocol parser.
//!
//! The daemon feeds `parse_request` whatever bytes arrive on a public
//! TCP port, so the parser's contract is absolute: for ANY input —
//! embedded NULs, truncated escapes, over-length lines, pathological
//! nesting — it must return `Ok(Request)` or a typed
//! `PipelineError::Protocol`, and never panic, hang, or recurse out of
//! stack. The deterministic sibling of this suite (no external deps)
//! lives in proto.rs's unit tests; this one drives the same invariant
//! with proptest's generators and shrinking.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_serve::proto::{error_reply, parse_json, parse_request, JVal, MAX_LINE_BYTES};

/// Any reply the daemon would send for `line` must itself be one line
/// of well-formed protocol JSON with `"ok":false` and a `kind` tag.
fn assert_wellformed_error(line: &str) {
    if let Err(e) = parse_request(line) {
        let reply = error_reply(&e);
        assert!(!reply.contains('\n'), "error reply must stay one line");
        let parsed = parse_json(&reply).expect("error reply must re-parse");
        let JVal::Obj(fields) = parsed else {
            panic!("error reply must be an object: {reply}");
        };
        assert!(
            fields
                .iter()
                .any(|(k, v)| k == "ok" && *v == JVal::Bool(false)),
            "error reply missing ok:false: {reply}"
        );
    }
}

proptest! {
    /// Arbitrary UTF-8 (including NULs and control bytes) never panics
    /// the parser, and every failure renders a well-formed error reply.
    #[test]
    fn arbitrary_utf8_never_panics(line in "\\PC*") {
        assert_wellformed_error(&line);
    }

    /// Arbitrary raw bytes, lossily decoded the way the connection
    /// thread does it, never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let line = String::from_utf8_lossy(&bytes);
        assert_wellformed_error(&line);
    }

    /// Structured-ish garbage: JSON-looking fragments with embedded
    /// NULs, quotes, braces, and backslashes in random arrangements.
    #[test]
    fn jsonish_garbage_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("{".to_string()), Just("}".to_string()),
            Just("[".to_string()), Just("]".to_string()),
            Just("\"".to_string()), Just("\\".to_string()),
            Just(":".to_string()), Just(",".to_string()),
            Just("\u{0}".to_string()), Just("op".to_string()),
            Just("\"op\"".to_string()), Just("ingest".to_string()),
            Just("1e309".to_string()), Just("-0".to_string()),
            Just("null".to_string()), Just("\\u0000".to_string()),
        ], 0..64)) {
        let line: String = parts.concat();
        assert_wellformed_error(&line);
    }

    /// Deep nesting far beyond MAX_DEPTH is rejected with a typed
    /// error, not a stack overflow — whatever bracket mix arrives.
    #[test]
    fn deep_nesting_is_rejected_not_fatal(depth in 9usize..2000, open_brace in any::<bool>()) {
        let (open, close) = if open_brace { ("{\"k\":", "}") } else { ("[", "]") };
        let line = format!("{}1{}", open.repeat(depth), close.repeat(depth));
        let err = parse_request(&line).unwrap_err();
        prop_assert_eq!(err.kind(), "protocol");
    }

    /// Over-length lines (beyond MAX_LINE_BYTES) are refused with a
    /// typed error no matter the content.
    #[test]
    fn overlength_lines_are_refused(pad in 1usize..4096) {
        let line = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "y".repeat(MAX_LINE_BYTES + pad));
        let err = parse_request(&line).unwrap_err();
        prop_assert_eq!(err.kind(), "protocol");
    }

    /// Valid ingest records round-trip whatever finite numbers they
    /// carry — the happy path stays happy under random field values.
    #[test]
    fn valid_ingest_always_parses(
        id in 0u64..1_000_000,
        pickup in 0u32..1_000_000,
        olat in -90.0f64..90.0, olon in -180.0f64..180.0,
        dlat in -90.0f64..90.0, dlon in -180.0f64..180.0,
        distance in 0.0f64..10_000.0,
        weight in 0.0f64..100_000.0,
        hours in 0.0f64..200.0,
    ) {
        let line = format!(
            "{{\"op\":\"ingest\",\"records\":[{{\"id\":{id},\"pickup\":{pickup},\
             \"olat\":{olat},\"olon\":{olon},\"dlat\":{dlat},\"dlon\":{dlon},\
             \"distance\":{distance},\"weight\":{weight},\"hours\":{hours}}}]}}"
        );
        let req = parse_request(&line).unwrap();
        let tnet_serve::Request::Ingest { records } = req else {
            return Err(TestCaseError::fail("not an ingest"));
        };
        prop_assert_eq!(records.len(), 1);
        prop_assert_eq!(records[0].id, id);
    }
}
