//! Property tests for the tabular miners.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_tabular::apriori::{frequent_itemsets, AprioriConfig};
use tnet_tabular::correlate::pearson;
use tnet_tabular::discretize::{discretize_column, Discretization};
use tnet_tabular::em::{fit as em_fit, EmConfig};
use tnet_tabular::table::{Column, Table};
use tnet_tabular::tree::{DecisionTree, TreeConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Discretization is total and monotone: larger values never land in
    /// smaller bins.
    #[test]
    fn discretize_monotone(
        mut values in proptest::collection::vec(-1e6f64..1e6, 2..60),
        bins in 1usize..10,
        equal_freq in any::<bool>(),
    ) {
        let strategy = if equal_freq {
            Discretization::EqualFrequency(bins)
        } else {
            Discretization::EqualWidth(bins)
        };
        let col = discretize_column(&values, strategy);
        let (assigned, names) = col.as_nominal().unwrap();
        prop_assert_eq!(assigned.len(), values.len());
        for &a in assigned {
            prop_assert!((a as usize) < names.len());
        }
        // Sort values and check bin monotonicity.
        let mut pairs: Vec<(f64, u32)> =
            values.drain(..).zip(assigned.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "bin not monotone");
        }
    }

    /// Pearson stays in [-1, 1] and is symmetric.
    #[test]
    fn pearson_bounds(
        a in proptest::collection::vec(-1e3f64..1e3, 2..40),
        b_seed in proptest::collection::vec(-1e3f64..1e3, 2..40),
    ) {
        let n = a.len().min(b_seed.len());
        let (a, b) = (&a[..n], &b_seed[..n]);
        let r = pearson(a, b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((r - pearson(b, a)).abs() < 1e-12);
    }

    /// A trained tree never does worse on its own training data than
    /// predicting the majority class.
    #[test]
    fn tree_beats_majority(
        xs in proptest::collection::vec(0.0f64..100.0, 8..50),
        threshold in 10.0f64..90.0,
        flip_every in 3usize..10,
    ) {
        let classes: Vec<u32> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let base = u32::from(x > threshold);
                if i % flip_every == 0 { base ^ 1 } else { base }
            })
            .collect();
        let majority = {
            let ones: usize = classes.iter().map(|&c| c as usize).sum();
            (ones.max(classes.len() - ones)) as f64 / classes.len() as f64
        };
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(xs));
        t.add_column(
            "class",
            Column::Nominal {
                values: classes,
                names: vec!["a".into(), "b".into()],
            },
        );
        let tree = DecisionTree::train(&t, "class", &TreeConfig::default());
        prop_assert!(tree.accuracy(&t) + 1e-9 >= majority);
    }

    /// Apriori support is antitone: every 2-itemset's support is bounded
    /// by each member's.
    #[test]
    fn apriori_antitone(
        col_a in proptest::collection::vec(0u32..3, 10..40),
        col_b_seed in proptest::collection::vec(0u32..3, 10..40),
    ) {
        let n = col_a.len().min(col_b_seed.len());
        let mut t = Table::new();
        t.add_column(
            "A",
            Column::Nominal {
                values: col_a[..n].to_vec(),
                names: vec!["0".into(), "1".into(), "2".into()],
            },
        );
        t.add_column(
            "B",
            Column::Nominal {
                values: col_b_seed[..n].to_vec(),
                names: vec!["0".into(), "1".into(), "2".into()],
            },
        );
        let sets = frequent_itemsets(
            &t,
            &AprioriConfig {
                min_support: 0.05,
                min_confidence: 0.5,
                max_items: 2,
            },
        );
        for s in sets.iter().filter(|s| s.items.len() == 2) {
            for &it in &s.items {
                if let Some(single) = sets.iter().find(|x| x.items == vec![it]) {
                    prop_assert!(single.support >= s.support);
                }
            }
        }
    }

    /// EM assigns every row, sizes sum to n, and the likelihood trace is
    /// non-decreasing.
    #[test]
    fn em_invariants(
        data in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 6..40),
        k in 1usize..4,
    ) {
        prop_assume!(data.len() >= k);
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(data.iter().map(|p| p.0).collect()));
        t.add_column("y", Column::Numeric(data.iter().map(|p| p.1).collect()));
        let model = em_fit(
            &t,
            &EmConfig {
                clusters: k,
                max_iterations: 15,
                tolerance: 0.0,
                seed: 3,
            },
        )
        .unwrap();
        prop_assert_eq!(model.assignments.len(), data.len());
        prop_assert_eq!(model.sizes.iter().sum::<usize>(), data.len());
        for w in model.trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "log-likelihood decreased");
        }
        let wsum: f64 = model.weights.iter().sum();
        prop_assert!((wsum - 1.0).abs() < 1e-6);
    }
}
