//! Pearson correlation over numeric columns (the §7.2 observation that
//! TOTAL_DISTANCE correlates with the latitude attributes more strongly
//! than with MOVE_TRANSIT_HOURS).

use crate::table::{Column, Table};

/// Pearson correlation coefficient of two equally-long slices. Returns
/// 0.0 when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let ma = a.iter().sum::<f64>() / nf;
    let mb = b.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Correlation of two named numeric columns.
///
/// # Panics
/// Panics if either column is missing or non-numeric.
pub fn column_correlation(t: &Table, a: &str, b: &str) -> f64 {
    let ca = t
        .column_by_name(a)
        .as_numeric()
        .unwrap_or_else(|| panic!("{a} not numeric"));
    let cb = t
        .column_by_name(b)
        .as_numeric()
        .unwrap_or_else(|| panic!("{b} not numeric"));
    pearson(ca, cb)
}

/// Full correlation matrix over the table's numeric columns. Returns the
/// column names and the symmetric matrix.
pub fn correlation_matrix(t: &Table) -> (Vec<String>, Vec<Vec<f64>>) {
    let mut names = Vec::new();
    let mut cols: Vec<&[f64]> = Vec::new();
    for (i, name) in t.names().iter().enumerate() {
        if let Column::Numeric(v) = t.column(i) {
            names.push(name.clone());
            cols.push(v);
        }
    }
    let k = cols.len();
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let c = pearson(cols[i], cols[j]);
            m[i][j] = c;
            m[j][i] = c;
        }
    }
    (names, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let mut t = Table::new();
        t.add_column("a", Column::Numeric(vec![1.0, 2.0, 3.0, 5.0]));
        t.add_column("b", Column::Numeric(vec![2.0, 1.0, 4.0, 4.0]));
        t.add_column("c", Column::Numeric(vec![9.0, 7.0, 1.0, 0.0]));
        let (names, m) = correlation_matrix(&t);
        assert_eq!(names.len(), 3);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, value) in row.iter().enumerate() {
                assert!((value - m[j][i]).abs() < 1e-12);
                assert!(value.abs() <= 1.0 + 1e-12);
            }
        }
        assert!((column_correlation(&t, "a", "b") - m[0][1]).abs() < 1e-12);
    }
}
