//! A C4.5-style decision-tree classifier (the §7.2 "J4.8" stand-in).
//!
//! Gain-ratio splits, multiway branches on nominal attributes, binary
//! threshold splits on numeric attributes, depth/leaf-size stopping.

use crate::table::{Column, Table};

/// Upper bound on candidate thresholds evaluated per numeric attribute
/// (quantile-spaced); keeps training near O(rows·attrs·log) like J4.8's
/// practical behaviour.
const MAX_NUMERIC_CANDIDATES: usize = 48;

/// Tree configuration.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_split: usize,
    /// Minimum information gain to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_split: 4,
            min_gain: 1e-4,
        }
    }
}

/// A trained tree node.
#[derive(Clone, Debug)]
pub enum Node {
    Leaf {
        class: u32,
        /// Training rows that reached this leaf.
        count: usize,
    },
    Numeric {
        col: usize,
        threshold: f64,
        le: Box<Node>,
        gt: Box<Node>,
    },
    Nominal {
        col: usize,
        /// One child per category value; missing categories fall back to
        /// `majority`.
        children: Vec<Option<Box<Node>>>,
        majority: u32,
    },
}

/// A trained classifier for one nominal target column.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    root: Node,
    target_col: usize,
    class_names: Vec<String>,
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn class_counts(target: &[u32], rows: &[usize], classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; classes];
    for &r in rows {
        counts[target[r] as usize] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> u32 {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i as u32)
        .unwrap_or(0)
}

struct Split {
    gain_ratio: f64,
    gain: f64,
    kind: SplitKind,
}

enum SplitKind {
    Numeric { col: usize, threshold: f64 },
    Nominal { col: usize },
}

impl DecisionTree {
    /// Trains on `table` predicting the nominal column `target`.
    ///
    /// # Panics
    /// Panics if `target` is missing, not nominal, or the table is empty.
    pub fn train(table: &Table, target: &str, cfg: &TreeConfig) -> DecisionTree {
        let target_col = table
            .index_of(target)
            .unwrap_or_else(|| panic!("no column {target}"));
        let (tvalues, tnames) = table
            .column(target_col)
            .as_nominal()
            .expect("target must be nominal");
        assert!(table.rows() > 0, "empty training table");
        let rows: Vec<usize> = (0..table.rows()).collect();
        let root = build(
            table,
            target_col,
            tvalues,
            tnames.len(),
            &rows,
            cfg,
            cfg.max_depth,
        );
        DecisionTree {
            root,
            target_col,
            class_names: tnames.to_vec(),
        }
    }

    /// Predicted class index for row `r` of `table` (which must have the
    /// same column layout as the training table).
    pub fn predict(&self, table: &Table, r: usize) -> u32 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Numeric {
                    col,
                    threshold,
                    le,
                    gt,
                } => {
                    let v = table.column(*col).as_numeric().expect("numeric col")[r];
                    node = if v <= *threshold { le } else { gt };
                }
                Node::Nominal {
                    col,
                    children,
                    majority,
                } => {
                    let v = table.column(*col).as_nominal().expect("nominal col").0[r] as usize;
                    match children.get(v).and_then(|c| c.as_deref()) {
                        Some(child) => node = child,
                        None => return *majority,
                    }
                }
            }
        }
    }

    /// Accuracy over all rows of `table`.
    pub fn accuracy(&self, table: &Table) -> f64 {
        let (truth, _) = table.column(self.target_col).as_nominal().unwrap();
        let correct = (0..table.rows())
            .filter(|&r| self.predict(table, r) == truth[r])
            .count();
        correct as f64 / table.rows().max(1) as f64
    }

    /// Confusion matrix: `m[actual][predicted]`.
    pub fn confusion(&self, table: &Table) -> Vec<Vec<usize>> {
        let k = self.class_names.len();
        let mut m = vec![vec![0usize; k]; k];
        let (truth, _) = table.column(self.target_col).as_nominal().unwrap();
        for r in 0..table.rows() {
            m[truth[r] as usize][self.predict(table, r) as usize] += 1;
        }
        m
    }

    /// Column index of the root split, or `None` for a stump.
    pub fn root_attribute(&self) -> Option<usize> {
        match &self.root {
            Node::Leaf { .. } => None,
            Node::Numeric { col, .. } | Node::Nominal { col, .. } => Some(*col),
        }
    }

    /// How many split nodes use each column (column index -> count).
    /// A proxy for attribute importance: attributes the tree leans on
    /// appear in many splits.
    pub fn split_counts(&self) -> std::collections::HashMap<usize, usize> {
        fn walk(n: &Node, acc: &mut std::collections::HashMap<usize, usize>) {
            match n {
                Node::Leaf { .. } => {}
                Node::Numeric { col, le, gt, .. } => {
                    *acc.entry(*col).or_insert(0) += 1;
                    walk(le, acc);
                    walk(gt, acc);
                }
                Node::Nominal { col, children, .. } => {
                    *acc.entry(*col).or_insert(0) += 1;
                    for child in children.iter().flatten() {
                        walk(child, acc);
                    }
                }
            }
        }
        let mut acc = std::collections::HashMap::new();
        walk(&self.root, &mut acc);
        acc
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Numeric { le, gt, .. } => 1 + walk(le) + walk(gt),
                Node::Nominal { children, .. } => {
                    1 + children.iter().flatten().map(|c| walk(c)).sum::<usize>()
                }
            }
        }
        walk(&self.root)
    }

    /// Names of the target classes, indexed by class id.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Text rendering (indented splits, class leaves).
    pub fn render(&self, table: &Table) -> String {
        let mut s = String::new();
        self.render_node(&self.root, table, 0, &mut s);
        s
    }

    fn render_node(&self, n: &Node, table: &Table, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match n {
            Node::Leaf { class, count } => {
                let _ = writeln!(
                    out,
                    "{pad}=> {} ({count})",
                    self.class_names[*class as usize]
                );
            }
            Node::Numeric {
                col,
                threshold,
                le,
                gt,
            } => {
                let name = &table.names()[*col];
                let _ = writeln!(out, "{pad}{name} <= {threshold:.2}:");
                self.render_node(le, table, depth + 1, out);
                let _ = writeln!(out, "{pad}{name} > {threshold:.2}:");
                self.render_node(gt, table, depth + 1, out);
            }
            Node::Nominal { col, children, .. } => {
                let name = &table.names()[*col];
                let value_names = table.column(*col).as_nominal().unwrap().1;
                for (v, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        let _ = writeln!(out, "{pad}{name} = {}:", value_names[v]);
                        self.render_node(child, table, depth + 1, out);
                    }
                }
            }
        }
    }
}

fn build(
    table: &Table,
    target_col: usize,
    target: &[u32],
    classes: usize,
    rows: &[usize],
    cfg: &TreeConfig,
    depth_left: usize,
) -> Node {
    let counts = class_counts(target, rows, classes);
    let node_entropy = entropy(&counts);
    let leaf = Node::Leaf {
        class: majority(&counts),
        count: rows.len(),
    };
    if depth_left == 0 || rows.len() < cfg.min_split || node_entropy == 0.0 {
        return leaf;
    }
    let mut best: Option<Split> = None;
    for col in 0..table.column_count() {
        if col == target_col {
            continue;
        }
        let split = match table.column(col) {
            Column::Numeric(values) => {
                best_numeric_split(values, target, classes, rows, node_entropy, col)
            }
            Column::Nominal { values, names } => nominal_split(
                values,
                names.len(),
                target,
                classes,
                rows,
                node_entropy,
                col,
            ),
        };
        if let Some(s) = split {
            if best.as_ref().is_none_or(|b| s.gain_ratio > b.gain_ratio) {
                best = Some(s);
            }
        }
    }
    let Some(split) = best else { return leaf };
    if split.gain < cfg.min_gain {
        return leaf;
    }
    match split.kind {
        SplitKind::Numeric { col, threshold } => {
            let values = table.column(col).as_numeric().unwrap();
            let (le_rows, gt_rows): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&r| values[r] <= threshold);
            if le_rows.is_empty() || gt_rows.is_empty() {
                return leaf;
            }
            Node::Numeric {
                col,
                threshold,
                le: Box::new(build(
                    table,
                    target_col,
                    target,
                    classes,
                    &le_rows,
                    cfg,
                    depth_left - 1,
                )),
                gt: Box::new(build(
                    table,
                    target_col,
                    target,
                    classes,
                    &gt_rows,
                    cfg,
                    depth_left - 1,
                )),
            }
        }
        SplitKind::Nominal { col } => {
            let (values, names) = table.column(col).as_nominal().unwrap();
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
            for &r in rows {
                buckets[values[r] as usize].push(r);
            }
            let children = buckets
                .iter()
                .map(|bucket| {
                    (!bucket.is_empty()).then(|| {
                        Box::new(build(
                            table,
                            target_col,
                            target,
                            classes,
                            bucket,
                            cfg,
                            depth_left - 1,
                        ))
                    })
                })
                .collect();
            Node::Nominal {
                col,
                children,
                majority: majority(&counts),
            }
        }
    }
}

fn gain_ratio_of(parent_entropy: f64, partitions: &[Vec<usize>], total: usize) -> (f64, f64) {
    let n = total as f64;
    let mut weighted = 0.0;
    let mut split_info = 0.0;
    for part_counts in partitions {
        let part_total: usize = part_counts.iter().sum();
        if part_total == 0 {
            continue;
        }
        let w = part_total as f64 / n;
        weighted += w * entropy(part_counts);
        split_info -= w * w.log2();
    }
    let gain = parent_entropy - weighted;
    let ratio = if split_info > 1e-9 {
        gain / split_info
    } else {
        0.0
    };
    (gain, ratio)
}

fn best_numeric_split(
    values: &[f64],
    target: &[u32],
    classes: usize,
    rows: &[usize],
    parent_entropy: f64,
    col: usize,
) -> Option<Split> {
    let mut sorted: Vec<f64> = rows.iter().map(|&r| values[r]).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted.dedup();
    if sorted.len() < 2 {
        return None;
    }
    // Candidate thresholds: midpoints, quantile-limited.
    let step = (sorted.len() / MAX_NUMERIC_CANDIDATES).max(1);
    let mut best: Option<Split> = None;
    for i in (0..sorted.len() - 1).step_by(step) {
        let threshold = (sorted[i] + sorted[i + 1]) / 2.0;
        let mut le = vec![0usize; classes];
        let mut gt = vec![0usize; classes];
        for &r in rows {
            if values[r] <= threshold {
                le[target[r] as usize] += 1;
            } else {
                gt[target[r] as usize] += 1;
            }
        }
        let (gain, ratio) = gain_ratio_of(parent_entropy, &[le, gt], rows.len());
        if best.as_ref().is_none_or(|b| ratio > b.gain_ratio) {
            best = Some(Split {
                gain_ratio: ratio,
                gain,
                kind: SplitKind::Numeric { col, threshold },
            });
        }
    }
    best
}

fn nominal_split(
    values: &[u32],
    arity: usize,
    target: &[u32],
    classes: usize,
    rows: &[usize],
    parent_entropy: f64,
    col: usize,
) -> Option<Split> {
    if arity < 2 {
        return None;
    }
    let mut partitions = vec![vec![0usize; classes]; arity];
    for &r in rows {
        partitions[values[r] as usize][target[r] as usize] += 1;
    }
    let (gain, ratio) = gain_ratio_of(parent_entropy, &partitions, rows.len());
    Some(Split {
        gain_ratio: ratio,
        gain,
        kind: SplitKind::Nominal { col },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A table where class == (x > 5), plus a noise column.
    fn threshold_table(n: usize) -> Table {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64).collect();
        let classes: Vec<u32> = xs.iter().map(|&x| u32::from(x > 5.0)).collect();
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(xs));
        t.add_column("noise", Column::Numeric(noise));
        t.add_column(
            "class",
            Column::Nominal {
                values: classes,
                names: vec!["low".into(), "high".into()],
            },
        );
        t
    }

    #[test]
    fn learns_numeric_threshold() {
        let t = threshold_table(40);
        let tree = DecisionTree::train(&t, "class", &TreeConfig::default());
        assert_eq!(tree.accuracy(&t), 1.0);
        assert_eq!(tree.root_attribute(), Some(0), "x must be the root split");
    }

    #[test]
    fn learns_nominal_rule() {
        // class = color
        let mut t = Table::new();
        t.add_column(
            "color",
            Column::Nominal {
                values: vec![0, 1, 2, 0, 1, 2, 0, 1],
                names: vec!["r".into(), "g".into(), "b".into()],
            },
        );
        t.add_column(
            "class",
            Column::Nominal {
                values: vec![0, 1, 1, 0, 1, 1, 0, 1],
                names: vec!["no".into(), "yes".into()],
            },
        );
        let tree = DecisionTree::train(
            &t,
            "class",
            &TreeConfig {
                min_split: 2,
                ..Default::default()
            },
        );
        assert_eq!(tree.accuracy(&t), 1.0);
        assert_eq!(tree.root_attribute(), Some(0));
    }

    #[test]
    fn pure_node_is_leaf() {
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(vec![1.0, 2.0, 3.0]));
        t.add_column(
            "class",
            Column::Nominal {
                values: vec![0, 0, 0],
                names: vec!["only".into()],
            },
        );
        let tree = DecisionTree::train(&t, "class", &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.root_attribute(), None);
        assert_eq!(tree.accuracy(&t), 1.0);
    }

    #[test]
    fn depth_limit_respected() {
        let t = threshold_table(60);
        let stump_cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let tree = DecisionTree::train(&t, "class", &stump_cfg);
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn generalizes_to_test_split() {
        let t = threshold_table(100);
        let (train, test) = t.split(0.3);
        let tree = DecisionTree::train(&train, "class", &TreeConfig::default());
        assert!(tree.accuracy(&test) > 0.9);
    }

    #[test]
    fn confusion_matrix_sums_to_rows() {
        let t = threshold_table(50);
        let tree = DecisionTree::train(&t, "class", &TreeConfig::default());
        let m = tree.confusion(&t);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 50);
        // Perfect classifier: off-diagonal zero.
        assert_eq!(m[0][1] + m[1][0], 0);
    }

    #[test]
    fn render_contains_split_and_classes() {
        let t = threshold_table(30);
        let tree = DecisionTree::train(&t, "class", &TreeConfig::default());
        let txt = tree.render(&t);
        assert!(txt.contains("x <="));
        assert!(txt.contains("=> high") || txt.contains("=> low"));
    }

    #[test]
    fn noisy_labels_cap_accuracy() {
        // Flip ~10% of labels: accuracy should be high but typically
        // below perfect on a depth-limited tree.
        let t = threshold_table(200);
        let Column::Nominal { values, .. } = t.column_by_name("class").clone() else {
            unreachable!()
        };
        let mut noisy = values.clone();
        for i in (0..200).step_by(10) {
            noisy[i] ^= 1;
        }
        let mut t2 = Table::new();
        t2.add_column("x", t.column_by_name("x").clone());
        t2.add_column(
            "class",
            Column::Nominal {
                values: noisy,
                names: vec!["low".into(), "high".into()],
            },
        );
        let tree = DecisionTree::train(
            &t2,
            "class",
            &TreeConfig {
                max_depth: 2,
                ..Default::default()
            },
        );
        let acc = tree.accuracy(&t2);
        assert!((0.85..1.0).contains(&acc), "got {acc}");
    }
}
