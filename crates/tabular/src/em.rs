//! EM clustering with diagonal-covariance Gaussian mixtures (§7.3).
//!
//! "The algorithm works by assigning each object to a cluster based on a
//! weight representing the probability of membership." k-means++
//! initialization, expectation/maximization iterations until the
//! log-likelihood improvement drops below tolerance, variance floors for
//! numerical safety.

use crate::table::{Column, Table};
use tnet_exec::Exec;

/// EM fitting failure.
#[derive(Clone, Debug)]
pub enum EmError {
    /// The fit's execution handle was cancelled (caller, deadline, or a
    /// sibling abort through a shared token) before convergence.
    Cancelled,
    /// An armed failpoint (`em::iteration`) injected a fault.
    Fault(tnet_exec::failpoint::Fault),
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::Cancelled => write!(f, "EM fit was cancelled"),
            EmError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for EmError {}

/// EM configuration.
#[derive(Clone, Copy, Debug)]
pub struct EmConfig {
    pub clusters: usize,
    pub max_iterations: usize,
    /// Stop when the per-row log-likelihood improves by less than this.
    pub tolerance: f64,
    pub seed: u64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            clusters: 4,
            max_iterations: 100,
            tolerance: 1e-5,
            seed: 7,
        }
    }
}

/// A fitted mixture model plus hard assignments.
#[derive(Clone, Debug)]
pub struct EmModel {
    /// Names of the numeric columns used.
    pub dimensions: Vec<String>,
    /// Per-cluster mixing weights.
    pub weights: Vec<f64>,
    /// Per-cluster per-dimension means (original units).
    pub means: Vec<Vec<f64>>,
    /// Per-cluster per-dimension variances.
    pub variances: Vec<Vec<f64>>,
    /// Hard (max-responsibility) cluster per row.
    pub assignments: Vec<usize>,
    /// Rows per cluster.
    pub sizes: Vec<usize>,
    /// Final total log-likelihood.
    pub log_likelihood: f64,
    /// Log-likelihood trace per iteration (non-decreasing).
    pub trace: Vec<f64>,
}

impl EmModel {
    /// Mean of dimension `dim` within cluster `c`.
    pub fn cluster_mean(&self, c: usize, dim: &str) -> f64 {
        let d = self
            .dimensions
            .iter()
            .position(|n| n == dim)
            .unwrap_or_else(|| panic!("no dimension {dim}"));
        self.means[c][d]
    }

    /// Clusters ordered by size, largest first.
    pub fn clusters_by_size(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.sizes.len()).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(self.sizes[c]));
        order
    }
}

/// Extracts the numeric feature matrix (row-major) from a table.
fn numeric_matrix(t: &Table) -> (Vec<String>, Vec<Vec<f64>>) {
    let mut dims = Vec::new();
    let mut cols: Vec<&[f64]> = Vec::new();
    for (i, name) in t.names().iter().enumerate() {
        if let Column::Numeric(v) = t.column(i) {
            dims.push(name.clone());
            cols.push(v);
        }
    }
    let rows = (0..t.rows())
        .map(|r| cols.iter().map(|c| c[r]).collect())
        .collect();
    (dims, rows)
}

fn log_gaussian(x: f64, mean: f64, var: f64) -> f64 {
    let d = x - mean;
    -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var)
}

/// `ln(sum(exp(v)))` computed stably.
fn log_sum_exp(v: &[f64]) -> f64 {
    let m = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return m;
    }
    m + v.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Fits a diagonal-covariance Gaussian mixture to the numeric columns of
/// `t` on the current thread. Equivalent to [`fit_with`] on a sequential
/// pool.
///
/// # Panics
/// Panics if the table has no numeric columns, no rows, or fewer rows
/// than clusters.
///
/// # Errors
/// [`EmError::Cancelled`] only when fitting on a cancelled pool (never
/// on this sequential path in practice).
pub fn fit(t: &Table, cfg: &EmConfig) -> Result<EmModel, EmError> {
    fit_with(t, cfg, &Exec::sequential())
}

/// As [`fit`], computing each E-step's per-row densities across `exec`'s
/// workers. Per-row results are pure functions of the current model, and
/// the log-likelihood is summed sequentially in row order afterwards, so
/// the fit is bitwise identical at any thread count.
///
/// # Errors
/// [`EmError::Cancelled`] when `exec` (or an ancestor handle) is
/// cancelled — or a deadline passes — between iterations.
pub fn fit_with(t: &Table, cfg: &EmConfig, exec: &Exec) -> Result<EmModel, EmError> {
    let (dims, data) = numeric_matrix(t);
    assert!(!dims.is_empty(), "EM needs at least one numeric column");
    let n = data.len();
    let k = cfg.clusters;
    assert!(n >= k && k > 0, "need at least as many rows as clusters");
    let d = dims.len();

    // Variance floor: a fraction of each dimension's global variance.
    let mut global_mean = vec![0.0; d];
    for row in &data {
        for (j, &x) in row.iter().enumerate() {
            global_mean[j] += x;
        }
    }
    for m in &mut global_mean {
        *m /= n as f64;
    }
    let mut floor = vec![0.0; d];
    for row in &data {
        for (j, &x) in row.iter().enumerate() {
            floor[j] += (x - global_mean[j]).powi(2);
        }
    }
    for f in &mut floor {
        *f = (*f / n as f64).max(1e-12) * 1e-4 + 1e-9;
    }

    // Farthest-first (maximin) initialization of means: start from the
    // most central point, then repeatedly take the point farthest (in
    // per-dimension-scaled distance) from all chosen centers. Unlike
    // d²-sampled k-means++, this is deterministic and reliably hands tiny
    // outlier groups their own center — which is how Weka's EM surfaces
    // the paper's 3-shipment air-freight cluster (Figure 5).
    let init_scale: Vec<f64> = floor.iter().map(|&f| (f / 1e-4).max(1e-12)).collect();
    let dist2 = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .zip(&init_scale)
            .map(|((&x, &y), &s)| (x - y) * (x - y) / s)
            .sum()
    };
    let mut means: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            dist2(&data[a], &global_mean)
                .partial_cmp(&dist2(&data[b], &global_mean))
                .unwrap()
        })
        .unwrap();
    means.push(data[first].clone());
    let mut min_d2: Vec<f64> = data.iter().map(|row| dist2(row, &means[0])).collect();
    while means.len() < k {
        let farthest = (0..n)
            .max_by(|&a, &b| min_d2[a].partial_cmp(&min_d2[b]).unwrap())
            .unwrap();
        means.push(data[farthest].clone());
        let newest = means.last().unwrap();
        for (i, row) in data.iter().enumerate() {
            min_d2[i] = min_d2[i].min(dist2(row, newest));
        }
    }
    let mut variances = vec![
        (0..d)
            .map(|j| (floor[j] / 1e-4).max(1e-6))
            .collect::<Vec<f64>>();
        k
    ];
    let mut weights = vec![1.0 / k as f64; k];

    // EM loop.
    let mut resp = vec![vec![0.0f64; k]; n];
    let mut trace = Vec::new();
    let mut prev_ll = f64::NEG_INFINITY;
    for _ in 0..cfg.max_iterations {
        if exec.is_cancelled() {
            return Err(EmError::Cancelled);
        }
        tnet_exec::failpoint::hit("em::iteration").map_err(EmError::Fault)?;
        // E-step: per-row densities in parallel, log-likelihood summed
        // in row order (float addition is not associative — a fixed
        // summation order is what keeps the fit thread-count
        // independent).
        let per_row = exec.par_map(&data, |row| {
            let mut logp = vec![0.0f64; k];
            for (c, lp) in logp.iter_mut().enumerate() {
                *lp = weights[c].max(1e-300).ln();
                for j in 0..d {
                    *lp += log_gaussian(row[j], means[c][j], variances[c][j]);
                }
            }
            let lse = log_sum_exp(&logp);
            for lp in &mut logp {
                *lp = (*lp - lse).exp();
            }
            (lse, logp)
        });
        let mut ll = 0.0;
        for (i, (lse, row_resp)) in per_row.into_iter().enumerate() {
            ll += lse;
            resp[i] = row_resp;
        }
        trace.push(ll);
        if (ll - prev_ll).abs() / n as f64 <= cfg.tolerance {
            prev_ll = ll;
            break;
        }
        prev_ll = ll;
        // M-step.
        for c in 0..k {
            let nc: f64 = resp.iter().map(|r| r[c]).sum();
            let nc_safe = nc.max(1e-10);
            weights[c] = nc / n as f64;
            for j in 0..d {
                let mean = data
                    .iter()
                    .zip(&resp)
                    .map(|(row, r)| r[c] * row[j])
                    .sum::<f64>()
                    / nc_safe;
                means[c][j] = mean;
                let var = data
                    .iter()
                    .zip(&resp)
                    .map(|(row, r)| r[c] * (row[j] - mean).powi(2))
                    .sum::<f64>()
                    / nc_safe;
                variances[c][j] = var.max(floor[j]);
            }
        }
    }

    // Hard assignments.
    let assignments: Vec<usize> = resp
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(c, _)| c)
                .unwrap()
        })
        .collect();
    let mut sizes = vec![0usize; k];
    for &a in &assignments {
        sizes[a] += 1;
    }

    Ok(EmModel {
        dimensions: dims,
        weights,
        means,
        variances,
        assignments,
        sizes,
        log_likelihood: prev_ll,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs in 2D + 3 extreme outliers.
    fn blobs() -> Table {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let j = (i * 7919 % 100) as f64 / 100.0 - 0.5;
            xs.push(10.0 + j);
            ys.push(5.0 + j * 0.7);
        }
        for i in 0..40 {
            let j = (i * 104729 % 100) as f64 / 100.0 - 0.5;
            xs.push(50.0 + j);
            ys.push(80.0 + j);
        }
        for _ in 0..3 {
            xs.push(500.0);
            ys.push(900.0);
        }
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(xs));
        t.add_column("y", Column::Numeric(ys));
        t
    }

    #[test]
    fn separates_blobs_and_outliers() {
        let t = blobs();
        let model = fit(
            &t,
            &EmConfig {
                clusters: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut sizes = model.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 40, 60], "cluster sizes should match blobs");
        // The outlier cluster's mean x should be ~500.
        let outlier_cluster = (0..3).find(|&c| model.sizes[c] == 3).unwrap();
        assert!((model.cluster_mean(outlier_cluster, "x") - 500.0).abs() < 1.0);
    }

    #[test]
    fn log_likelihood_non_decreasing() {
        let t = blobs();
        let model = fit(
            &t,
            &EmConfig {
                clusters: 3,
                tolerance: 0.0,
                max_iterations: 25,
                ..Default::default()
            },
        )
        .unwrap();
        for w in model.trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "EM log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let model = fit(&blobs(), &EmConfig::default()).unwrap();
        let s: f64 = model.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert_eq!(model.assignments.len(), 103);
        assert_eq!(model.sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = fit(&blobs(), &EmConfig::default()).unwrap();
        let b = fit(&blobs(), &EmConfig::default()).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn clusters_by_size_ordering() {
        let model = fit(
            &blobs(),
            &EmConfig {
                clusters: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let order = model.clusters_by_size();
        assert_eq!(model.sizes[order[0]], 60);
        assert_eq!(model.sizes[order[2]], 3);
    }

    #[test]
    fn single_cluster_recovers_global_mean() {
        let t = blobs();
        let model = fit(
            &t,
            &EmConfig {
                clusters: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let xs = t.column_by_name("x").as_numeric().unwrap();
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((model.means[0][0] - mean).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn rejects_no_numeric_columns() {
        let mut t = Table::new();
        t.add_column(
            "c",
            Column::Nominal {
                values: vec![0, 1],
                names: vec!["a".into(), "b".into()],
            },
        );
        let _ = fit(&t, &EmConfig::default());
    }

    #[test]
    fn cancelled_pool_stops_the_fit() {
        let exec = Exec::new(2);
        exec.cancel();
        match fit_with(&blobs(), &EmConfig::default(), &exec) {
            Err(EmError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
}
