//! Apriori frequent-itemset and association-rule mining (§7.1).
//!
//! Items are `(column, value)` pairs over the nominal columns of a table;
//! numeric columns must be discretized first. Rule rendering matches the
//! paper's notation, e.g.
//! `ORIGIN_LONGITUDE(X,(-84.76,-75.43]) -> ORIGIN_LATITUDE(X,(39.8,44.08])`.

use crate::table::{Column, Table};
use std::collections::HashMap;

/// An item: nominal column index and value index within it.
pub type Item = (u16, u32);

/// A frequent itemset with its absolute support.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemSet {
    /// Sorted items.
    pub items: Vec<Item>,
    pub support: usize,
}

/// An association rule `antecedent -> consequent` (single-item
/// consequent, Weka's default style for readable output).
#[derive(Clone, Debug)]
pub struct Rule {
    pub antecedent: Vec<Item>,
    pub consequent: Item,
    pub support: usize,
    pub confidence: f64,
    pub lift: f64,
}

/// Mining parameters.
#[derive(Clone, Copy, Debug)]
pub struct AprioriConfig {
    /// Minimum support as a fraction of rows.
    pub min_support: f64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Maximum itemset size.
    pub max_items: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            min_support: 0.1,
            min_confidence: 0.8,
            max_items: 4,
        }
    }
}

/// Row representation: the item present in each nominal column.
fn rows_as_items(t: &Table) -> (Vec<Vec<Item>>, Vec<u16>) {
    let nominal_cols: Vec<u16> = (0..t.column_count())
        .filter(|&i| !t.column(i).is_numeric())
        .map(|i| i as u16)
        .collect();
    let mut rows = vec![Vec::with_capacity(nominal_cols.len()); t.rows()];
    for &c in &nominal_cols {
        if let Column::Nominal { values, .. } = t.column(c as usize) {
            for (r, &v) in values.iter().enumerate() {
                rows[r].push((c, v));
            }
        }
    }
    (rows, nominal_cols)
}

fn row_contains(row: &[Item], items: &[Item]) -> bool {
    items.iter().all(|it| row.contains(it))
}

/// Mines frequent itemsets (size >= 1) with the Apriori levelwise scheme.
pub fn frequent_itemsets(t: &Table, cfg: &AprioriConfig) -> Vec<ItemSet> {
    let (rows, _) = rows_as_items(t);
    let min_count = ((cfg.min_support * t.rows() as f64).ceil() as usize).max(1);

    // Level 1.
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for row in &rows {
        for &it in row {
            *counts.entry(it).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<ItemSet> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(it, c)| ItemSet {
            items: vec![it],
            support: c,
        })
        .collect();
    frequent.sort_by(|a, b| a.items.cmp(&b.items));
    let mut all = frequent.clone();

    let mut level = 1usize;
    while !frequent.is_empty() && level < cfg.max_items {
        level += 1;
        // Join step: pairs sharing the first level-1 items.
        let mut candidates: Vec<Vec<Item>> = Vec::new();
        for i in 0..frequent.len() {
            for j in (i + 1)..frequent.len() {
                let a = &frequent[i].items;
                let b = &frequent[j].items;
                if a[..level - 2] != b[..level - 2] {
                    continue;
                }
                let (last_a, last_b) = (a[level - 2], b[level - 2]);
                if last_a.0 == last_b.0 {
                    continue; // same column twice: impossible itemset
                }
                let mut cand = a.clone();
                cand.push(last_b.max(last_a));
                // Normalize ordering (a is sorted; last_b > last_a given j > i).
                cand.sort_unstable();
                candidates.push(cand);
            }
        }
        candidates.sort();
        candidates.dedup();
        // Prune: all (k-1)-subsets frequent.
        let prev: std::collections::HashSet<&[Item]> =
            frequent.iter().map(|f| f.items.as_slice()).collect();
        candidates.retain(|cand| {
            (0..cand.len()).all(|skip| {
                let sub: Vec<Item> = cand
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != skip)
                    .map(|(_, &it)| it)
                    .collect();
                prev.contains(sub.as_slice())
            })
        });
        // Count.
        let mut next: Vec<ItemSet> = Vec::new();
        for cand in candidates {
            let support = rows.iter().filter(|r| row_contains(r, &cand)).count();
            if support >= min_count {
                next.push(ItemSet {
                    items: cand,
                    support,
                });
            }
        }
        next.sort_by(|a, b| a.items.cmp(&b.items));
        all.extend(next.iter().cloned());
        frequent = next;
    }
    all
}

/// Generates single-consequent rules from frequent itemsets.
pub fn mine_rules(t: &Table, cfg: &AprioriConfig) -> Vec<Rule> {
    let itemsets = frequent_itemsets(t, cfg);
    let support_of: HashMap<&[Item], usize> = itemsets
        .iter()
        .map(|is| (is.items.as_slice(), is.support))
        .collect();
    let n = t.rows() as f64;
    let mut rules = Vec::new();
    for is in itemsets.iter().filter(|is| is.items.len() >= 2) {
        for (k, &consequent) in is.items.iter().enumerate() {
            let antecedent: Vec<Item> = is
                .items
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != k)
                .map(|(_, &it)| it)
                .collect();
            let Some(&ant_support) = support_of.get(antecedent.as_slice()) else {
                continue;
            };
            let confidence = is.support as f64 / ant_support as f64;
            if confidence < cfg.min_confidence {
                continue;
            }
            let Some(&cons_support) = support_of.get(&[consequent][..]) else {
                continue;
            };
            let lift = confidence / (cons_support as f64 / n);
            rules.push(Rule {
                antecedent,
                consequent,
                support: is.support,
                confidence,
                lift,
            });
        }
    }
    rules.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap());
    rules
}

/// Renders an item as `COLUMN(X,value)`.
pub fn render_item(t: &Table, item: Item) -> String {
    let name = &t.names()[item.0 as usize];
    let value = match t.column(item.0 as usize) {
        Column::Nominal { names, .. } => names[item.1 as usize].clone(),
        Column::Numeric(_) => unreachable!("items come from nominal columns"),
    };
    format!("{name}(X,{value})")
}

/// Renders a rule in the paper's notation.
pub fn render_rule(t: &Table, rule: &Rule) -> String {
    let ant: Vec<String> = rule.antecedent.iter().map(|&i| render_item(t, i)).collect();
    format!(
        "{} -> {}  [sup={}, conf={:.2}, lift={:.2}]",
        ant.join(" & "),
        render_item(t, rule.consequent),
        rule.support,
        rule.confidence,
        rule.lift
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// weather-ish toy table: strong rule c0=0 -> c1=0.
    fn toy() -> Table {
        let mut t = Table::new();
        t.add_column(
            "A",
            Column::Nominal {
                values: vec![0, 0, 0, 0, 1, 1, 1, 1, 0, 0],
                names: vec!["x".into(), "y".into()],
            },
        );
        t.add_column(
            "B",
            Column::Nominal {
                values: vec![0, 0, 0, 0, 1, 1, 0, 1, 0, 0],
                names: vec!["p".into(), "q".into()],
            },
        );
        t
    }

    #[test]
    fn level1_counts() {
        let sets = frequent_itemsets(
            &toy(),
            &AprioriConfig {
                min_support: 0.3,
                ..Default::default()
            },
        );
        let a0 = sets.iter().find(|s| s.items == vec![(0, 0)]).unwrap();
        assert_eq!(a0.support, 6);
        let b1 = sets.iter().find(|s| s.items == vec![(1, 1)]).unwrap();
        assert_eq!(b1.support, 3);
    }

    #[test]
    fn pair_itemsets_and_antitone_support() {
        let sets = frequent_itemsets(
            &toy(),
            &AprioriConfig {
                min_support: 0.2,
                ..Default::default()
            },
        );
        let pair = sets
            .iter()
            .find(|s| s.items == vec![(0, 0), (1, 0)])
            .unwrap();
        assert_eq!(pair.support, 6);
        // Support of any superset never exceeds its subsets'.
        for s in sets.iter().filter(|s| s.items.len() == 2) {
            for &it in &s.items {
                let single = sets.iter().find(|x| x.items == vec![it]).unwrap();
                assert!(single.support >= s.support);
            }
        }
    }

    #[test]
    fn perfect_rule_found() {
        let rules = mine_rules(
            &toy(),
            &AprioriConfig {
                min_support: 0.2,
                min_confidence: 0.9,
                max_items: 2,
            },
        );
        // A=x -> B=p holds 6/6.
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec![(0, 0)] && r.consequent == (1, 0))
            .expect("rule A=x -> B=p");
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.lift > 1.0);
    }

    #[test]
    fn confidence_threshold_filters() {
        let strict = mine_rules(
            &toy(),
            &AprioriConfig {
                min_support: 0.2,
                min_confidence: 0.99,
                max_items: 2,
            },
        );
        let lax = mine_rules(
            &toy(),
            &AprioriConfig {
                min_support: 0.2,
                min_confidence: 0.5,
                max_items: 2,
            },
        );
        assert!(strict.len() < lax.len());
        for r in &strict {
            assert!(r.confidence >= 0.99);
        }
    }

    #[test]
    fn rendering() {
        let t = toy();
        let rules = mine_rules(
            &t,
            &AprioriConfig {
                min_support: 0.2,
                min_confidence: 0.9,
                max_items: 2,
            },
        );
        let txt = render_rule(&t, &rules[0]);
        assert!(txt.contains("(X,"));
        assert!(txt.contains("->"));
        assert!(txt.contains("conf="));
    }

    #[test]
    fn numeric_columns_ignored() {
        let mut t = toy();
        t.add_column("num", Column::Numeric(vec![1.0; 10]));
        let sets = frequent_itemsets(&t, &AprioriConfig::default());
        assert!(sets.iter().all(|s| s.items.iter().all(|&(c, _)| c < 2)));
    }

    #[test]
    fn empty_table() {
        let t = Table::new();
        assert!(frequent_itemsets(&t, &AprioriConfig::default()).is_empty());
    }
}
