//! A small column-typed table — the "pure transactional form" of §7.
//!
//! Columns are either numeric (`f64`) or nominal (small categorical
//! alphabet with interned value names). All §7 algorithms (Apriori, the
//! decision tree, EM) operate on this type.

/// Data of one column.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    Numeric(Vec<f64>),
    /// Category index per row plus the category names.
    Nominal {
        values: Vec<u32>,
        names: Vec<String>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Nominal { values, .. } => values.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for numeric columns.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Column::Numeric(_))
    }

    /// Numeric values, or `None` for nominal columns.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            Column::Nominal { .. } => None,
        }
    }

    /// Nominal `(values, names)`, or `None` for numeric columns.
    pub fn as_nominal(&self) -> Option<(&[u32], &[String])> {
        match self {
            Column::Nominal { values, names } => Some((values, names)),
            Column::Numeric(_) => None,
        }
    }
}

/// A named-column table with uniform row count.
#[derive(Clone, Debug, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Adds a column.
    ///
    /// # Panics
    /// Panics on duplicate names or row-count mismatch with existing
    /// columns.
    pub fn add_column(&mut self, name: &str, col: Column) -> &mut Self {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate column {name}"
        );
        if self.columns.is_empty() {
            self.rows = col.len();
        } else {
            assert_eq!(col.len(), self.rows, "row count mismatch for {name}");
        }
        self.names.push(name.to_string());
        self.columns.push(col);
        self
    }

    /// Number of rows (uniform across columns).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    ///
    /// # Panics
    /// Panics if absent.
    pub fn column_by_name(&self, name: &str) -> &Column {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("no column {name}"));
        &self.columns[idx]
    }

    /// A new table with only the named columns (order preserved as
    /// given).
    pub fn select(&self, names: &[&str]) -> Table {
        let mut t = Table::new();
        for &n in names {
            t.add_column(n, self.column_by_name(n).clone());
        }
        t
    }

    /// A new table containing only the given row indices.
    pub fn filter_rows(&self, keep: &[usize]) -> Table {
        let mut t = Table::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            let col = match col {
                Column::Numeric(v) => Column::Numeric(keep.iter().map(|&i| v[i]).collect()),
                Column::Nominal { values, names } => Column::Nominal {
                    values: keep.iter().map(|&i| values[i]).collect(),
                    names: names.clone(),
                },
            };
            t.add_column(name, col);
        }
        t
    }

    /// Splits rows into (train, test) by a deterministic interleave:
    /// every `1/test_fraction`-th row goes to test. Deterministic so
    /// experiments are reproducible without threading RNGs through.
    pub fn split(&self, test_fraction: f64) -> (Table, Table) {
        assert!(test_fraction > 0.0 && test_fraction < 1.0);
        let period = (1.0 / test_fraction).round().max(2.0) as usize;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..self.rows {
            if i % period == period - 1 {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        (self.filter_rows(&train), self.filter_rows(&test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(vec![1.0, 2.0, 3.0, 4.0]));
        t.add_column(
            "c",
            Column::Nominal {
                values: vec![0, 1, 0, 1],
                names: vec!["a".into(), "b".into()],
            },
        );
        t
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.index_of("c"), Some(1));
        assert!(t.column(0).is_numeric());
        assert_eq!(t.column_by_name("x").as_numeric().unwrap()[2], 3.0);
        let (vals, names) = t.column_by_name("c").as_nominal().unwrap();
        assert_eq!(vals, &[0, 1, 0, 1]);
        assert_eq!(names[1], "b");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_column_rejected() {
        let mut t = sample();
        t.add_column("x", Column::Numeric(vec![0.0; 4]));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn ragged_rejected() {
        let mut t = sample();
        t.add_column("y", Column::Numeric(vec![0.0; 3]));
    }

    #[test]
    fn select_and_filter() {
        let t = sample();
        let s = t.select(&["c"]);
        assert_eq!(s.column_count(), 1);
        assert_eq!(s.rows(), 4);
        let f = t.filter_rows(&[0, 3]);
        assert_eq!(f.rows(), 2);
        assert_eq!(f.column_by_name("x").as_numeric().unwrap(), &[1.0, 4.0]);
        assert_eq!(f.column_by_name("c").as_nominal().unwrap().0, &[0, 1]);
    }

    #[test]
    fn split_is_partition() {
        let mut t = Table::new();
        t.add_column("x", Column::Numeric((0..100).map(|i| i as f64).collect()));
        let (train, test) = t.split(0.25);
        assert_eq!(train.rows() + test.rows(), 100);
        assert_eq!(test.rows(), 25);
    }
}
