//! Discretizing numeric columns into nominal interval columns — the
//! preprocessing behind §7.1's "Discretize original data set and run
//! Apriori".

use crate::table::{Column, Table};

/// Equal-width cut points over a numeric column's observed range.
fn equal_width_cuts(values: &[f64], bins: usize) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        return vec![];
    }
    let w = (hi - lo) / bins as f64;
    (1..bins).map(|i| lo + w * i as f64).collect()
}

/// Equal-frequency cut points (distinct-value aware).
fn equal_frequency_cuts(values: &[f64], bins: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return vec![];
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let mut cuts: Vec<f64> = Vec::new();
    for i in 1..bins {
        let mut j = (i * n / bins).min(n - 1);
        while j < n && cuts.last().is_some_and(|&c| sorted[j] <= c) {
            j += 1;
        }
        if j < n && sorted[j] > sorted[0] {
            cuts.push(sorted[j]);
        }
    }
    cuts.dedup();
    cuts
}

/// Discretization strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discretization {
    EqualWidth(usize),
    EqualFrequency(usize),
}

/// Converts a numeric column to a nominal interval column. Interval names
/// use Weka's rendering: `(-inf, c1]`, `(c1, c2]`, …, `(ck, inf)`.
pub fn discretize_column(values: &[f64], strategy: Discretization) -> Column {
    let cuts = match strategy {
        Discretization::EqualWidth(b) => equal_width_cuts(values, b.max(1)),
        Discretization::EqualFrequency(b) => equal_frequency_cuts(values, b.max(1)),
    };
    let mut names = Vec::with_capacity(cuts.len() + 1);
    if cuts.is_empty() {
        names.push("(-inf, inf)".to_string());
    } else {
        names.push(format!("(-inf, {:.2}]", cuts[0]));
        for w in cuts.windows(2) {
            names.push(format!("({:.2}, {:.2}]", w[0], w[1]));
        }
        names.push(format!("({:.2}, inf)", cuts[cuts.len() - 1]));
    }
    let assigned = values
        .iter()
        .map(|&v| cuts.partition_point(|&c| c < v) as u32)
        .collect();
    Column::Nominal {
        values: assigned,
        names,
    }
}

/// Discretizes every numeric column of a table in place-ish (returns a
/// new table; nominal columns pass through unchanged).
pub fn discretize_table(t: &Table, strategy: Discretization) -> Table {
    let mut out = Table::new();
    for (i, name) in t.names().iter().enumerate() {
        let col = match t.column(i) {
            Column::Numeric(v) => discretize_column(v, strategy),
            c @ Column::Nominal { .. } => c.clone(),
        };
        out.add_column(name, col);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_assignment() {
        let col = discretize_column(&[0.0, 5.0, 10.0], Discretization::EqualWidth(2));
        let (vals, names) = col.as_nominal().unwrap();
        assert_eq!(names.len(), 2);
        assert_eq!(vals, &[0, 0, 1]); // cut at 5.0; v < c goes low, 5.0 -> (.., 5]
        assert!(names[0].starts_with("(-inf"));
        assert!(names[1].ends_with("inf)"));
    }

    #[test]
    fn boundary_goes_to_lower_interval() {
        // Weka-style intervals are upper-closed.
        let col = discretize_column(&[0.0, 4.0, 8.0], Discretization::EqualWidth(2));
        let (vals, _) = col.as_nominal().unwrap();
        assert_eq!(vals[1], 0, "4.0 lands in (-inf, 4]");
    }

    #[test]
    fn constant_column_single_interval() {
        let col = discretize_column(&[3.0; 5], Discretization::EqualWidth(4));
        let (vals, names) = col.as_nominal().unwrap();
        assert_eq!(names.len(), 1);
        assert!(vals.iter().all(|&v| v == 0));
    }

    #[test]
    fn equal_frequency_balances() {
        let values: Vec<f64> = (0..90).map(|i| i as f64).collect();
        let col = discretize_column(&values, Discretization::EqualFrequency(3));
        let (vals, names) = col.as_nominal().unwrap();
        assert_eq!(names.len(), 3);
        let counts = [0, 1, 2].map(|k| vals.iter().filter(|&&v| v == k).count());
        for c in counts {
            assert!((25..=35).contains(&c));
        }
    }

    #[test]
    fn table_discretization_preserves_nominal() {
        let mut t = Table::new();
        t.add_column("x", Column::Numeric(vec![1.0, 2.0, 3.0, 4.0]));
        t.add_column(
            "c",
            Column::Nominal {
                values: vec![0, 1, 0, 1],
                names: vec!["a".into(), "b".into()],
            },
        );
        let d = discretize_table(&t, Discretization::EqualWidth(2));
        assert!(!d.column_by_name("x").is_numeric());
        assert_eq!(d.column_by_name("c"), t.column_by_name("c"));
    }
}
