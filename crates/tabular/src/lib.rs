//! # tnet-tabular
//!
//! Conventional data-mining substrate — the Weka stand-in for the ICDE
//! 2005 paper's §7 experiments:
//!
//! * [`table`] — a small column-typed table (numeric / nominal);
//! * [`discretize`] — equal-width / equal-frequency discretization with
//!   Weka-style interval names;
//! * [`apriori`] — frequent itemsets + association rules
//!   (support/confidence/lift);
//! * [`tree`] — a C4.5-style gain-ratio decision tree (the "J4.8"
//!   experiments);
//! * [`em`] — diagonal-covariance Gaussian-mixture EM clustering;
//! * [`correlate`] — Pearson correlations.
//!
//! ```
//! use tnet_tabular::table::{Column, Table};
//! use tnet_tabular::tree::{DecisionTree, TreeConfig};
//!
//! let mut t = Table::new();
//! t.add_column("weight", Column::Numeric(vec![500.0, 800.0, 30_000.0, 41_000.0]));
//! t.add_column("mode", Column::Nominal {
//!     values: vec![0, 0, 1, 1],
//!     names: vec!["LTL".into(), "TL".into()],
//! });
//! let tree = DecisionTree::train(&t, "mode", &TreeConfig { min_split: 2, ..Default::default() });
//! assert_eq!(tree.accuracy(&t), 1.0);
//! ```

pub mod apriori;
pub mod correlate;
pub mod discretize;
pub mod em;
pub mod table;
pub mod tree;

pub use apriori::{frequent_itemsets, mine_rules, AprioriConfig, ItemSet, Rule};
pub use correlate::{column_correlation, correlation_matrix, pearson};
pub use discretize::{discretize_column, discretize_table, Discretization};
pub use em::{fit as em_fit, fit_with as em_fit_with, EmConfig, EmError, EmModel};
pub use table::{Column, Table};
pub use tree::{DecisionTree, TreeConfig};
