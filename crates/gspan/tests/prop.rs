//! Property tests for the DFS miner's propagated support counting:
//! occurrence-list propagation at any cap (including spill-forcing tiny
//! caps) must be output-equivalent to scratch VF2, and the DFS miner
//! must agree with FSG on the same inputs.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_fsg::{mine, FsgConfig, Support};
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::iso::are_isomorphic;
use tnet_gspan::{mine_dfs, GspanConfig};

type RawEdge = (usize, usize, u32);

fn raw_txn(max_v: usize, max_e: usize) -> impl Strategy<Value = (Vec<u32>, Vec<RawEdge>)> {
    (2..=max_v).prop_flat_map(move |nv| {
        let vlabels = proptest::collection::vec(0u32..2, nv);
        let edges = proptest::collection::vec((0..nv, 0..nv, 0u32..3), 1..=max_e);
        (vlabels, edges)
    })
}

fn build(vlabels: &[u32], edges: &[RawEdge]) -> Graph {
    let mut g = Graph::new();
    let vs: Vec<VertexId> = vlabels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
    for &(s, d, l) in edges {
        g.add_edge(vs[s], vs[d], ELabel(l));
    }
    g.dedup_edges();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any embedding cap mines the same patterns and TID lists as
    /// scratch VF2 (cap 0); tiny caps exercise the truncated-seed path.
    #[test]
    fn propagation_matches_scratch(
        txns_raw in proptest::collection::vec(raw_txn(5, 8), 2..6),
        min_support in 1usize..3,
        cap in prop_oneof![Just(1usize), Just(2), Just(4), Just(256)],
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let cfg = |cap: usize| GspanConfig {
            min_support: Support::Count(min_support),
            max_edges: 4,
            memory_budget: None,
            embedding_cap: cap,
        };
        let scratch = mine_dfs(&txns, &cfg(0)).unwrap();
        let prop = mine_dfs(&txns, &cfg(cap)).unwrap();
        prop_assert_eq!(prop.patterns.len(), scratch.patterns.len());
        for (a, b) in prop.patterns.iter().zip(&scratch.patterns) {
            prop_assert_eq!(&a.tids, &b.tids);
            prop_assert!(are_isomorphic(&a.graph, &b.graph));
        }
    }

    /// The DFS miner with propagation agrees with FSG (which propagates
    /// through level-wise joins) on pattern count and supports.
    #[test]
    fn agrees_with_fsg(
        txns_raw in proptest::collection::vec(raw_txn(4, 6), 2..5),
        min_support in 1usize..3,
    ) {
        let txns: Vec<Graph> = txns_raw.iter().map(|(vl, es)| build(vl, es)).collect();
        let g_out = mine_dfs(&txns, &GspanConfig {
            min_support: Support::Count(min_support),
            max_edges: 3,
            ..Default::default()
        }).unwrap();
        let f_out = mine(&txns, &FsgConfig::default()
            .with_support(Support::Count(min_support))
            .with_max_edges(3)).unwrap();
        prop_assert_eq!(g_out.patterns.len(), f_out.patterns.len());
        for g_p in &g_out.patterns {
            prop_assert!(f_out.patterns.iter().any(|f_p| {
                f_p.tids == g_p.tids && are_isomorphic(&f_p.graph, &g_p.graph)
            }));
        }
    }
}
