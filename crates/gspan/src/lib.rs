//! # tnet-gspan
//!
//! A depth-first, pattern-growth frequent-subgraph miner in the spirit of
//! gSpan (Yan & Han 2002, reference [23] of the paper). Where `tnet-fsg`
//! materializes a full candidate set per level (Apriori), this miner
//! grows one pattern at a time along a DFS of pattern space, keeping only
//! the current growth path in memory — the property that §8's analysis
//! identifies as the missing ingredient when candidate sets outgrow RAM.
//!
//! Deviation from the original algorithm (documented in DESIGN.md):
//! duplicate exploration is prevented with isomorphism-class lookups
//! (invariant hash + exact VF2 check) instead of minimum-DFS-code
//! canonicality. The search space and output are identical; only the
//! dedup mechanism differs.
//!
//! ```
//! use tnet_gspan::{mine_dfs, GspanConfig};
//! use tnet_fsg::Support;
//! use tnet_graph::generate::shapes;
//!
//! let txns: Vec<_> = (0..4).map(|_| shapes::hub_and_spoke(3, 0, 1)).collect();
//! let cfg = GspanConfig { min_support: Support::Count(4), max_edges: 4, ..Default::default() };
//! let out = mine_dfs(&txns, &cfg).unwrap();
//! assert!(out.patterns.iter().any(|p| p.graph.edge_count() == 3));
//! ```

use tnet_exec::Exec;
use tnet_fsg::embed::{grow_store, level1_store, EmbStore, Grown};
use tnet_fsg::extend::{extend_pattern, EdgeVocab};
use tnet_fsg::{FrequentPattern, Support};
use tnet_graph::canon::IsoClassMap;
use tnet_graph::fingerprint::{graph_fingerprints, may_embed};
use tnet_graph::frozen::TxnSet;
use tnet_graph::graph::{ELabel, Graph, VLabel};
use tnet_graph::hash::{FxHashMap, FxHashSet};
use tnet_graph::iso::{derive_extension, Matcher};
use tnet_graph::view::{GraphView, TxnSource};

/// Configuration for the DFS miner.
#[derive(Clone, Debug)]
pub struct GspanConfig {
    pub min_support: Support,
    pub max_edges: usize,
    /// Abort with [`GspanError::MemoryBudgetExceeded`] when the estimated
    /// live bytes (visited classes + result patterns + TID lists) cross
    /// this budget. `None` disables the check. Same semantics as
    /// [`tnet_fsg::FsgConfig::memory_budget`], so the two miners are
    /// boundable by the same knob.
    pub memory_budget: Option<usize>,
    /// Per-(pattern, transaction) embedding-list cap for propagated
    /// support counting, with the same semantics as
    /// [`tnet_fsg::FsgConfig::embedding_cap`]: occurrence lists ride the
    /// DFS growth stack and are extended one edge at a time; overflowing
    /// lists are truncated to inexact seed prefixes whose empty
    /// extensions are re-verified from scratch. `0` disables propagation
    /// (every support test is a scratch VF2 search).
    pub embedding_cap: usize,
    /// Check per-vertex structural fingerprints
    /// ([`tnet_graph::fingerprint`]) before every scratch VF2 support
    /// test, with the same output-invariant semantics as
    /// [`tnet_fsg::FsgConfig::fingerprint_filter`].
    pub fingerprint_filter: bool,
}

impl Default for GspanConfig {
    fn default() -> Self {
        GspanConfig {
            min_support: Support::Fraction(0.05),
            max_edges: 10,
            memory_budget: None,
            embedding_cap: 256,
            fingerprint_filter: true,
        }
    }
}

/// DFS mining failure.
#[derive(Clone, Debug)]
pub enum GspanError {
    /// The live working set was estimated at `estimated_bytes`, above
    /// the configured budget. `partial_stats` covers the work done.
    MemoryBudgetExceeded {
        estimated_bytes: usize,
        budget: usize,
        partial_stats: GspanStats,
    },
    /// The mine's execution handle was cancelled (caller, deadline, or a
    /// sibling abort through a shared token) before the run completed.
    Cancelled,
}

impl std::fmt::Display for GspanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GspanError::MemoryBudgetExceeded {
                estimated_bytes,
                budget,
                ..
            } => write!(
                f,
                "DFS working set needs ~{estimated_bytes} bytes, budget is {budget}"
            ),
            GspanError::Cancelled => write!(f, "mining run was cancelled"),
        }
    }
}

impl std::error::Error for GspanError {}

/// Instrumentation emphasizing the memory contrast with FSG.
#[derive(Clone, Debug, Default)]
pub struct GspanStats {
    /// Patterns whose support was counted.
    pub counted: usize,
    /// Extensions skipped because their iso class was already visited.
    pub dedup_hits: usize,
    /// Deepest growth-stack depth reached (= max simultaneously
    /// materialized patterns, the peak-memory analogue of FSG's
    /// per-level candidate count).
    pub max_depth: usize,
    /// Subgraph-isomorphism tests run. With embedding propagation these
    /// only settle unverified "no"s from truncated occurrence lists.
    pub iso_tests: usize,
    /// Peak estimated live bytes (visited classes + results + TIDs) —
    /// the number the memory budget is checked against.
    pub peak_live_bytes: usize,
    /// Parent occurrences extended by one edge in place of scratch VF2
    /// support tests.
    pub embeddings_extended: usize,
    /// (pattern, transaction) occurrence lists that overflowed the cap
    /// and were truncated to inexact seed prefixes.
    pub embeddings_spilled: usize,
    /// Scratch VF2 searches skipped because a pattern vertex had no
    /// fingerprint-compatible transaction vertex.
    pub fingerprint_rejects: usize,
    /// Peak bytes held by the DFS stack's structure-of-arrays occurrence
    /// lists (the flat `VertexId` buffers riding the growth path).
    pub soa_bytes: usize,
}

impl GspanStats {
    /// Folds this run's counters into a [`tnet_obs::MetricsRegistry`]
    /// under `gspan.*` names (the unified namespace; see DESIGN.md §10).
    /// Totals add; peaks keep their high-water mark.
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add("gspan.counted", self.counted as u64);
        metrics.add("gspan.dedup_hits", self.dedup_hits as u64);
        metrics.add("gspan.iso_tests", self.iso_tests as u64);
        metrics.add("gspan.embeddings_extended", self.embeddings_extended as u64);
        metrics.add("gspan.embeddings_spilled", self.embeddings_spilled as u64);
        metrics.add("gspan.fingerprint_rejects", self.fingerprint_rejects as u64);
        metrics.record_max("gspan.max_depth", self.max_depth as u64);
        metrics.record_max("gspan.peak_live_bytes", self.peak_live_bytes as u64);
        metrics.record_max("gspan.soa_bytes", self.soa_bytes as u64);
    }
}

/// Estimated heap bytes for one materialized pattern: mirrors
/// `tnet-fsg`'s per-candidate model so budgets mean the same thing to
/// both miners.
fn pattern_bytes(vertices: usize, edges: usize, tids: usize) -> usize {
    256 + vertices * 110 + edges * 48 + tids * 4
}

/// Mining output.
#[derive(Clone, Debug)]
pub struct GspanOutput {
    /// Frequent connected patterns, largest support first.
    pub patterns: Vec<FrequentPattern>,
    pub stats: GspanStats,
}

/// Mines all frequent connected subgraphs depth-first on the current
/// thread. Equivalent to [`mine_dfs_with`] on a sequential pool.
///
/// Same contract as [`tnet_fsg::mine`]: inputs must be simple graphs;
/// output patterns are deduplicated by isomorphism class with exact
/// supports and TID lists.
///
/// # Errors
/// [`GspanError::MemoryBudgetExceeded`] when the live working set
/// outgrows the configured budget.
pub fn mine_dfs(transactions: &[Graph], cfg: &GspanConfig) -> Result<GspanOutput, GspanError> {
    mine_dfs_with(transactions, cfg, &Exec::sequential())
}

/// As [`mine_dfs`], fanning each candidate's support count (the VF2
/// search over its parent's TIDs) across `exec`'s workers.
///
/// Freezes the transactions into a [`TxnSet`] (contiguous CSR arenas
/// with label-sorted adjacency) before walking — embedding extension
/// then binary-searches candidate edges. The DFS walk itself stays
/// sequential — the `visited` set is inherently serial — and TIDs are
/// reassembled in input order, so the output is byte-identical to
/// [`mine_dfs_arena_with`] and to itself at any thread count.
///
/// # Errors
/// - [`GspanError::MemoryBudgetExceeded`] on a budget overrun; the
///   handle's token is cancelled first, mirroring the FSG contract.
/// - [`GspanError::Cancelled`] when `exec` (or an ancestor handle) is
///   cancelled mid-run.
pub fn mine_dfs_with(
    transactions: &[Graph],
    cfg: &GspanConfig,
    exec: &Exec,
) -> Result<GspanOutput, GspanError> {
    let frozen = TxnSet::freeze(transactions);
    mine_dfs_source(&frozen, cfg, exec)
}

/// As [`mine_dfs_with`], but traverses the mutable arena representation
/// directly instead of freezing a CSR snapshot. Kept for differential
/// testing and the frozen-vs-arena benchmark; both paths produce
/// byte-identical output.
pub fn mine_dfs_arena_with(
    transactions: &[Graph],
    cfg: &GspanConfig,
    exec: &Exec,
) -> Result<GspanOutput, GspanError> {
    mine_dfs_source(transactions, cfg, exec)
}

/// The representation-generic DFS core behind [`mine_dfs_with`] (frozen
/// [`TxnSet`]) and [`mine_dfs_arena_with`] (`&[Graph]`).
pub fn mine_dfs_source<T: TxnSource + ?Sized>(
    transactions: &T,
    cfg: &GspanConfig,
    exec: &Exec,
) -> Result<GspanOutput, GspanError> {
    if exec.is_cancelled() {
        return Err(GspanError::Cancelled);
    }
    // Per-TID support work is small and uniform; L2-sized chunks keep a
    // worker's transaction slabs hot without starving the claim cursor.
    let exec_l2 = exec.with_chunk_items(tnet_exec::L2_TXN_CHUNK_ITEMS);
    let exec = &exec_l2;
    // Phase timers stay on the sequential DFS control path (the walk is
    // serial; only support counting fans out), so span registration
    // order — and `--trace` output — is thread-count independent.
    let span_total = exec.span().time("gspan");
    let span = span_total.span().clone();
    let min_support = cfg.min_support.resolve(transactions.txn_count());
    let stats = GspanStats::default();

    let level1_timer = span.time("level1");
    // Frequent single edges (shared logic with FSG's level 1).
    let mut level1: FxHashMap<(u32, u32, u32, bool), Vec<u32>> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, u32, u32, bool)> = FxHashSet::default();
    for tid in 0..transactions.txn_count() {
        let t = transactions.txn(tid);
        seen.clear();
        for e in t.edges() {
            let (s, d, l) = t.edge(e);
            let key = (t.vertex_label(s).0, l.0, t.vertex_label(d).0, s == d);
            if seen.insert(key) {
                level1.entry(key).or_default().push(tid as u32);
            }
        }
    }
    let mut seeds: Vec<FrequentPattern> = Vec::new();
    let mut vocab: Vec<EdgeVocab> = Vec::new();
    for ((sl, el, dl, is_loop), mut tids) in level1 {
        if tids.len() < min_support {
            continue;
        }
        tids.sort_unstable();
        let mut g = Graph::new();
        let s = g.add_vertex(VLabel(sl));
        if is_loop {
            g.add_edge(s, s, ELabel(el));
        } else {
            let d = g.add_vertex(VLabel(dl));
            g.add_edge(s, d, ELabel(el));
        }
        vocab.push(EdgeVocab {
            src: VLabel(sl),
            label: ELabel(el),
            dst: VLabel(dl),
        });
        seeds.push(FrequentPattern {
            support: tids.len(),
            graph: g,
            tids,
        });
    }
    vocab.sort_by_key(|v| (v.src, v.label, v.dst));
    vocab.dedup();
    drop(level1_timer);
    span.child("extend");
    span.child("support_count");

    let mut walk = Walk {
        span: &span,
        transactions,
        vocab: &vocab,
        min_support,
        max_edges: cfg.max_edges,
        budget: cfg.memory_budget,
        embedding_cap: cfg.embedding_cap,
        fingerprint_filter: cfg.fingerprint_filter,
        exec,
        visited: IsoClassMap::new(),
        results: Vec::new(),
        stats,
        live_bytes: 0,
        live_soa_bytes: 0,
    };
    for seed in seeds {
        walk.charge(&seed)?;
        walk.visited.insert(seed.graph.clone(), ());
        let seed_stores = if cfg.embedding_cap > 0 && cfg.max_edges > 1 {
            level1_store(
                &seed,
                transactions,
                cfg.embedding_cap,
                &mut walk.stats.embeddings_spilled,
            )
        } else {
            Vec::new()
        };
        let soa = seed_stores.iter().map(|s| s.byte_len()).sum::<usize>();
        walk.live_soa_bytes += soa;
        walk.stats.soa_bytes = walk.stats.soa_bytes.max(walk.live_soa_bytes);
        walk.grow(&seed, &seed_stores, 1)?;
        walk.live_soa_bytes -= soa;
        walk.results.push(seed);
    }
    let Walk {
        mut results, stats, ..
    } = walk;
    results.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.graph.edge_count().cmp(&a.graph.edge_count()))
    });
    stats.record_into(exec.metrics());
    Ok(GspanOutput {
        patterns: results,
        stats,
    })
}

/// The mutable state of one DFS mine: the visited iso-class set, the
/// accumulated results, and the running live-bytes estimate the memory
/// budget is enforced against.
struct Walk<'a, T: TxnSource + ?Sized> {
    /// The miner's span node; `grow` times its extend / support phases
    /// under it.
    span: &'a tnet_obs::Span,
    transactions: &'a T,
    vocab: &'a [EdgeVocab],
    min_support: usize,
    max_edges: usize,
    budget: Option<usize>,
    embedding_cap: usize,
    fingerprint_filter: bool,
    exec: &'a Exec,
    visited: IsoClassMap<()>,
    results: Vec<FrequentPattern>,
    stats: GspanStats,
    live_bytes: usize,
    /// Running bytes held by the growth path's SoA occurrence lists;
    /// `stats.soa_bytes` tracks its high-water mark.
    live_soa_bytes: usize,
}

impl<T: TxnSource + ?Sized> Walk<'_, T> {
    /// Accounts one retained pattern against the budget.
    fn charge(&mut self, p: &FrequentPattern) -> Result<(), GspanError> {
        self.live_bytes +=
            pattern_bytes(p.graph.vertex_count(), p.graph.edge_count(), p.tids.len());
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.live_bytes);
        if let Some(budget) = self.budget {
            if self.live_bytes > budget {
                // Same contract as FSG: stop siblings on a shared token
                // before surfacing the abort.
                self.exec.cancel();
                return Err(GspanError::MemoryBudgetExceeded {
                    estimated_bytes: self.live_bytes,
                    budget,
                    partial_stats: self.stats.clone(),
                });
            }
        }
        Ok(())
    }

    fn grow(
        &mut self,
        parent: &FrequentPattern,
        parent_stores: &[EmbStore],
        depth: usize,
    ) -> Result<(), GspanError> {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if parent.graph.edge_count() >= self.max_edges {
            return Ok(());
        }
        let propagate = self.embedding_cap > 0 && parent_stores.len() == parent.tids.len();
        // One parent's extensions — the only candidate buffer ever held.
        let mut extensions: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        {
            let _t = self.span.time("extend");
            extend_pattern(&parent.graph, self.vocab, 0, None, &mut extensions);
        }
        for (candidate, _) in extensions.into_iter_pairs() {
            if self.exec.is_cancelled() {
                return Err(GspanError::Cancelled);
            }
            if self.visited.contains(&candidate) {
                self.stats.dedup_hits += 1;
                continue;
            }
            self.visited.insert(candidate.clone(), ());
            let support_timer = self.span.time("support_count");
            let (tids, child_stores) = if propagate {
                // The iso-class representative is the first graph
                // inserted for the class: the parent plus one appended
                // edge. Recover that edge and grow the parent's
                // occurrence lists by it instead of searching from
                // scratch; the lists ride the DFS stack alongside the
                // patterns themselves.
                let ext = derive_extension(parent.graph.vertex_count(), &candidate)
                    .expect("candidate is a one-edge extension of its parent");
                let witness_only = candidate.edge_count() >= self.max_edges;
                // Scratch machinery (matcher + pattern fingerprints) is
                // only ever needed to settle an unverified "no" from a
                // truncated (inexact) seed list.
                let fp_filter = self.fingerprint_filter;
                let scratch = parent_stores.iter().any(|s| !s.exact).then(|| {
                    let fps = if fp_filter {
                        graph_fingerprints(&candidate)
                    } else {
                        Vec::new()
                    };
                    (Matcher::new(&candidate), fps)
                });
                let cap = self.embedding_cap;
                let transactions = self.transactions;
                let idx: Vec<usize> = (0..parent.tids.len()).collect();
                let outcomes = self.exec.par_map(&idx, |&i| {
                    let txn = transactions.txn(parent.tids[i] as usize);
                    let mut extended = 0usize;
                    let mut spilled = 0usize;
                    match grow_store(
                        &txn,
                        &parent_stores[i],
                        &ext,
                        cap,
                        witness_only,
                        &mut extended,
                        &mut spilled,
                    ) {
                        Grown::Absent => (false, None, extended, spilled, false, false),
                        Grown::Unverified => {
                            let (matcher, fps) =
                                scratch.as_ref().expect("inexact store implies a matcher");
                            if fp_filter && !may_embed(fps, &txn) {
                                return (false, None, extended, spilled, false, true);
                            }
                            let hit = matcher.matches(&txn);
                            let store = (hit && !witness_only)
                                .then(|| EmbStore::new(candidate.vertex_count(), false));
                            (hit, store, extended, spilled, true, false)
                        }
                        Grown::Witnessed { store } => {
                            (true, store, extended, spilled, false, false)
                        }
                    }
                });
                let mut tids: Vec<u32> = Vec::new();
                let mut child_stores: Vec<EmbStore> = Vec::new();
                for (i, (hit, store, extended, spilled, scratched, fp_rejected)) in
                    outcomes.into_iter().enumerate()
                {
                    self.stats.embeddings_extended += extended;
                    self.stats.embeddings_spilled += spilled;
                    if scratched {
                        self.stats.iso_tests += 1;
                    }
                    if fp_rejected {
                        self.stats.fingerprint_rejects += 1;
                    }
                    if hit {
                        tids.push(parent.tids[i]);
                        if let Some(st) = store {
                            child_stores.push(st);
                        }
                    }
                }
                (tids, child_stores)
            } else {
                let matcher = Matcher::new(&candidate);
                let fps = if self.fingerprint_filter {
                    graph_fingerprints(&candidate)
                } else {
                    Vec::new()
                };
                // Support counting is the hot loop; fan the VF2 searches
                // over the pool and keep matching TIDs in input order.
                // 0 = fingerprint reject, 1 = VF2 miss, 2 = VF2 hit.
                let hits = self.exec.par_map(&parent.tids, |&tid| {
                    let txn = self.transactions.txn(tid as usize);
                    if self.fingerprint_filter && !may_embed(&fps, &txn) {
                        return 0u8;
                    }
                    if matcher.matches(&txn) {
                        2
                    } else {
                        1
                    }
                });
                let mut tids: Vec<u32> = Vec::new();
                for (&tid, h) in parent.tids.iter().zip(&hits) {
                    match h {
                        0 => self.stats.fingerprint_rejects += 1,
                        1 => self.stats.iso_tests += 1,
                        _ => {
                            self.stats.iso_tests += 1;
                            tids.push(tid);
                        }
                    }
                }
                (tids, Vec::new())
            };
            self.stats.counted += 1;
            // Dropped before recursing: a nested grow's phases must not
            // double-count inside this candidate's support time.
            drop(support_timer);
            if tids.len() >= self.min_support {
                let fp = FrequentPattern {
                    support: tids.len(),
                    graph: candidate,
                    tids,
                };
                self.charge(&fp)?;
                let soa = child_stores.iter().map(|s| s.byte_len()).sum::<usize>();
                self.live_soa_bytes += soa;
                self.stats.soa_bytes = self.stats.soa_bytes.max(self.live_soa_bytes);
                self.grow(&fp, &child_stores, depth + 1)?;
                self.live_soa_bytes -= soa;
                self.results.push(fp);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_fsg::{mine, FsgConfig};
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::are_isomorphic;

    fn cfg(count: usize, max_edges: usize) -> GspanConfig {
        GspanConfig {
            min_support: Support::Count(count),
            max_edges,
            ..Default::default()
        }
    }

    #[test]
    fn agrees_with_fsg_on_shapes() {
        // Both miners must produce the same pattern set (up to iso) with
        // the same supports.
        let txns: Vec<Graph> = (0..5)
            .map(|i| {
                if i % 2 == 0 {
                    shapes::hub_and_spoke(3, 0, 1)
                } else {
                    shapes::chain(3, 0, 1)
                }
            })
            .collect();
        let dfs = mine_dfs(&txns, &cfg(2, 4)).unwrap();
        let apriori = mine(
            &txns,
            &FsgConfig::default()
                .with_support(Support::Count(2))
                .with_max_edges(4),
        )
        .unwrap();
        assert_eq!(dfs.patterns.len(), apriori.patterns.len());
        for p in &dfs.patterns {
            let twin = apriori
                .patterns
                .iter()
                .find(|q| are_isomorphic(&p.graph, &q.graph))
                .unwrap_or_else(|| panic!("FSG missing {:?}", p.graph));
            assert_eq!(p.support, twin.support);
            assert_eq!(p.tids, twin.tids);
        }
    }

    #[test]
    fn agrees_with_fsg_on_random_graphs() {
        use tnet_graph::generate::{random_transactions, RandomGraphConfig};
        let txns = random_transactions(
            8,
            &RandomGraphConfig {
                vertices: 6,
                edges: 9,
                vertex_labels: 2,
                edge_labels: 2,
                self_loops: true,
            },
            31,
        );
        let txns: Vec<Graph> = txns
            .into_iter()
            .map(|mut g| {
                g.dedup_edges();
                g
            })
            .collect();
        let dfs = mine_dfs(&txns, &cfg(2, 3)).unwrap();
        let apriori = mine(
            &txns,
            &FsgConfig::default()
                .with_support(Support::Count(2))
                .with_max_edges(3),
        )
        .unwrap();
        assert_eq!(
            dfs.patterns.len(),
            apriori.patterns.len(),
            "pattern-set size mismatch"
        );
        for p in &dfs.patterns {
            assert!(apriori
                .patterns
                .iter()
                .any(|q| are_isomorphic(&p.graph, &q.graph) && q.support == p.support));
        }
    }

    #[test]
    fn depth_first_memory_profile() {
        // The DFS miner's peak (max_depth) stays tiny even when the
        // total pattern count is large.
        let txns: Vec<Graph> = (0..4).map(|_| shapes::chain(6, 0, 1)).collect();
        let out = mine_dfs(&txns, &cfg(4, 6)).unwrap();
        assert!(out.stats.max_depth <= 6);
        assert!(out.patterns.len() >= 6, "chains of each length frequent");
    }

    #[test]
    fn empty_input() {
        let out = mine_dfs(&[], &cfg(1, 3)).unwrap();
        assert!(out.patterns.is_empty());
    }

    #[test]
    fn memory_budget_aborts_and_cancels_pool() {
        let txns: Vec<Graph> = (0..4).map(|_| shapes::chain(6, 0, 1)).collect();
        let cfg = GspanConfig {
            min_support: Support::Count(4),
            max_edges: 6,
            memory_budget: Some(1_024),
            ..Default::default()
        };
        let exec = Exec::new(2);
        match mine_dfs_with(&txns, &cfg, &exec) {
            Err(GspanError::MemoryBudgetExceeded {
                estimated_bytes,
                budget,
                ..
            }) => {
                assert!(estimated_bytes > budget);
                assert_eq!(budget, 1_024);
            }
            other => panic!("expected budget abort, got {other:?}"),
        }
        assert!(exec.is_cancelled(), "abort must cancel the handle's token");
    }

    #[test]
    fn cancelled_handle_stops_the_walk() {
        let txns: Vec<Graph> = (0..4).map(|_| shapes::chain(6, 0, 1)).collect();
        let exec = Exec::new(2);
        exec.cancel();
        match mine_dfs_with(&txns, &cfg(4, 6), &exec) {
            Err(GspanError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn peak_live_bytes_recorded() {
        let txns: Vec<Graph> = (0..4).map(|_| shapes::chain(4, 0, 1)).collect();
        let out = mine_dfs(&txns, &cfg(4, 4)).unwrap();
        assert!(out.stats.peak_live_bytes > 0);
    }

    #[test]
    fn dedup_hits_recorded() {
        // A "T" (a->b->c plus b->d) is reachable both by extending the
        // 2-chain and by extending the fork; the second route must hit
        // the visited set.
        let t_shape = || {
            let mut g = Graph::new();
            let a = g.add_vertex(tnet_graph::graph::VLabel(0));
            let b = g.add_vertex(tnet_graph::graph::VLabel(0));
            let c = g.add_vertex(tnet_graph::graph::VLabel(0));
            let d = g.add_vertex(tnet_graph::graph::VLabel(0));
            g.add_edge(a, b, tnet_graph::graph::ELabel(1));
            g.add_edge(b, c, tnet_graph::graph::ELabel(1));
            g.add_edge(b, d, tnet_graph::graph::ELabel(1));
            g
        };
        let txns: Vec<Graph> = (0..3).map(|_| t_shape()).collect();
        let out = mine_dfs(&txns, &cfg(3, 3)).unwrap();
        assert!(out.stats.dedup_hits > 0);
        // And the T itself is found once.
        let t_found = out
            .patterns
            .iter()
            .filter(|p| are_isomorphic(&p.graph, &t_shape()))
            .count();
        assert_eq!(t_found, 1);
    }
}
