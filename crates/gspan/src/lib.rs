//! # tnet-gspan
//!
//! A depth-first, pattern-growth frequent-subgraph miner in the spirit of
//! gSpan (Yan & Han 2002, reference [23] of the paper). Where `tnet-fsg`
//! materializes a full candidate set per level (Apriori), this miner
//! grows one pattern at a time along a DFS of pattern space, keeping only
//! the current growth path in memory — the property that §8's analysis
//! identifies as the missing ingredient when candidate sets outgrow RAM.
//!
//! Deviation from the original algorithm (documented in DESIGN.md):
//! duplicate exploration is prevented with isomorphism-class lookups
//! (invariant hash + exact VF2 check) instead of minimum-DFS-code
//! canonicality. The search space and output are identical; only the
//! dedup mechanism differs.
//!
//! ```
//! use tnet_gspan::{mine_dfs, GspanConfig};
//! use tnet_fsg::Support;
//! use tnet_graph::generate::shapes;
//!
//! let txns: Vec<_> = (0..4).map(|_| shapes::hub_and_spoke(3, 0, 1)).collect();
//! let out = mine_dfs(&txns, &GspanConfig { min_support: Support::Count(4), max_edges: 4 });
//! assert!(out.patterns.iter().any(|p| p.graph.edge_count() == 3));
//! ```

use tnet_exec::Exec;
use tnet_fsg::extend::{extend_pattern, EdgeVocab};
use tnet_fsg::{FrequentPattern, Support};
use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{ELabel, Graph, VLabel};
use tnet_graph::hash::FxHashMap;
use tnet_graph::iso::Matcher;

/// Configuration for the DFS miner.
#[derive(Clone, Debug)]
pub struct GspanConfig {
    pub min_support: Support,
    pub max_edges: usize,
}

impl Default for GspanConfig {
    fn default() -> Self {
        GspanConfig {
            min_support: Support::Fraction(0.05),
            max_edges: 10,
        }
    }
}

/// Instrumentation emphasizing the memory contrast with FSG.
#[derive(Clone, Debug, Default)]
pub struct GspanStats {
    /// Patterns whose support was counted.
    pub counted: usize,
    /// Extensions skipped because their iso class was already visited.
    pub dedup_hits: usize,
    /// Deepest growth-stack depth reached (= max simultaneously
    /// materialized patterns, the peak-memory analogue of FSG's
    /// per-level candidate count).
    pub max_depth: usize,
    /// Subgraph-isomorphism tests run.
    pub iso_tests: usize,
}

/// Mining output.
#[derive(Clone, Debug)]
pub struct GspanOutput {
    /// Frequent connected patterns, largest support first.
    pub patterns: Vec<FrequentPattern>,
    pub stats: GspanStats,
}

/// Mines all frequent connected subgraphs depth-first on the current
/// thread. Equivalent to [`mine_dfs_with`] on a sequential pool.
///
/// Same contract as [`tnet_fsg::mine`]: inputs must be simple graphs;
/// output patterns are deduplicated by isomorphism class with exact
/// supports and TID lists.
pub fn mine_dfs(transactions: &[Graph], cfg: &GspanConfig) -> GspanOutput {
    mine_dfs_with(transactions, cfg, &Exec::sequential())
}

/// As [`mine_dfs`], fanning each candidate's support count (the VF2
/// search over its parent's TIDs) across `exec`'s workers. The DFS walk
/// itself stays sequential — the `visited` set is inherently serial —
/// and TIDs are reassembled in input order, so the output is
/// byte-identical at any thread count.
pub fn mine_dfs_with(transactions: &[Graph], cfg: &GspanConfig, exec: &Exec) -> GspanOutput {
    let min_support = cfg.min_support.resolve(transactions.len());
    let mut stats = GspanStats::default();

    // Frequent single edges (shared logic with FSG's level 1).
    let mut level1: FxHashMap<(u32, u32, u32, bool), Vec<u32>> = FxHashMap::default();
    for (tid, t) in transactions.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for e in t.edges() {
            let (s, d, l) = t.edge(e);
            let key = (t.vertex_label(s).0, l.0, t.vertex_label(d).0, s == d);
            if seen.insert(key) {
                level1.entry(key).or_default().push(tid as u32);
            }
        }
    }
    let mut seeds: Vec<FrequentPattern> = Vec::new();
    let mut vocab: Vec<EdgeVocab> = Vec::new();
    for ((sl, el, dl, is_loop), mut tids) in level1 {
        if tids.len() < min_support {
            continue;
        }
        tids.sort_unstable();
        let mut g = Graph::new();
        let s = g.add_vertex(VLabel(sl));
        if is_loop {
            g.add_edge(s, s, ELabel(el));
        } else {
            let d = g.add_vertex(VLabel(dl));
            g.add_edge(s, d, ELabel(el));
        }
        vocab.push(EdgeVocab {
            src: VLabel(sl),
            label: ELabel(el),
            dst: VLabel(dl),
        });
        seeds.push(FrequentPattern {
            support: tids.len(),
            graph: g,
            tids,
        });
    }
    vocab.sort_by_key(|v| (v.src, v.label, v.dst));
    vocab.dedup();

    let mut visited: IsoClassMap<()> = IsoClassMap::new();
    let mut results: Vec<FrequentPattern> = Vec::new();
    for seed in seeds {
        visited.insert(seed.graph.clone(), ());
        grow(
            transactions,
            &seed,
            &vocab,
            min_support,
            cfg.max_edges,
            1,
            exec,
            &mut visited,
            &mut results,
            &mut stats,
        );
        results.push(seed);
    }
    results.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.graph.edge_count().cmp(&a.graph.edge_count()))
    });
    GspanOutput {
        patterns: results,
        stats,
    }
}

#[allow(clippy::too_many_arguments)]
fn grow(
    transactions: &[Graph],
    parent: &FrequentPattern,
    vocab: &[EdgeVocab],
    min_support: usize,
    max_edges: usize,
    depth: usize,
    exec: &Exec,
    visited: &mut IsoClassMap<()>,
    results: &mut Vec<FrequentPattern>,
    stats: &mut GspanStats,
) {
    stats.max_depth = stats.max_depth.max(depth);
    if parent.graph.edge_count() >= max_edges {
        return;
    }
    // One parent's extensions — the only candidate buffer ever held.
    let mut extensions: IsoClassMap<Vec<usize>> = IsoClassMap::new();
    extend_pattern(&parent.graph, vocab, 0, &mut extensions);
    for (candidate, _) in extensions.into_iter_pairs() {
        if visited.contains(&candidate) {
            stats.dedup_hits += 1;
            continue;
        }
        visited.insert(candidate.clone(), ());
        let matcher = Matcher::new(&candidate);
        // Support counting is the hot loop; fan the VF2 searches over
        // the pool and keep matching TIDs in input order.
        let hits = exec.par_map(&parent.tids, |&tid| {
            matcher.matches(&transactions[tid as usize])
        });
        stats.iso_tests += parent.tids.len();
        let tids: Vec<u32> = parent
            .tids
            .iter()
            .zip(hits)
            .filter_map(|(&tid, hit)| hit.then_some(tid))
            .collect();
        stats.counted += 1;
        if tids.len() >= min_support {
            let fp = FrequentPattern {
                support: tids.len(),
                graph: candidate,
                tids,
            };
            grow(
                transactions,
                &fp,
                vocab,
                min_support,
                max_edges,
                depth + 1,
                exec,
                visited,
                results,
                stats,
            );
            results.push(fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_fsg::{mine, FsgConfig};
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::are_isomorphic;

    fn cfg(count: usize, max_edges: usize) -> GspanConfig {
        GspanConfig {
            min_support: Support::Count(count),
            max_edges,
        }
    }

    #[test]
    fn agrees_with_fsg_on_shapes() {
        // Both miners must produce the same pattern set (up to iso) with
        // the same supports.
        let txns: Vec<Graph> = (0..5)
            .map(|i| {
                if i % 2 == 0 {
                    shapes::hub_and_spoke(3, 0, 1)
                } else {
                    shapes::chain(3, 0, 1)
                }
            })
            .collect();
        let dfs = mine_dfs(&txns, &cfg(2, 4));
        let apriori = mine(
            &txns,
            &FsgConfig::default()
                .with_support(Support::Count(2))
                .with_max_edges(4),
        )
        .unwrap();
        assert_eq!(dfs.patterns.len(), apriori.patterns.len());
        for p in &dfs.patterns {
            let twin = apriori
                .patterns
                .iter()
                .find(|q| are_isomorphic(&p.graph, &q.graph))
                .unwrap_or_else(|| panic!("FSG missing {:?}", p.graph));
            assert_eq!(p.support, twin.support);
            assert_eq!(p.tids, twin.tids);
        }
    }

    #[test]
    fn agrees_with_fsg_on_random_graphs() {
        use tnet_graph::generate::{random_transactions, RandomGraphConfig};
        let txns = random_transactions(
            8,
            &RandomGraphConfig {
                vertices: 6,
                edges: 9,
                vertex_labels: 2,
                edge_labels: 2,
                self_loops: true,
            },
            31,
        );
        let txns: Vec<Graph> = txns
            .into_iter()
            .map(|mut g| {
                g.dedup_edges();
                g
            })
            .collect();
        let dfs = mine_dfs(&txns, &cfg(2, 3));
        let apriori = mine(
            &txns,
            &FsgConfig::default()
                .with_support(Support::Count(2))
                .with_max_edges(3),
        )
        .unwrap();
        assert_eq!(
            dfs.patterns.len(),
            apriori.patterns.len(),
            "pattern-set size mismatch"
        );
        for p in &dfs.patterns {
            assert!(apriori
                .patterns
                .iter()
                .any(|q| are_isomorphic(&p.graph, &q.graph) && q.support == p.support));
        }
    }

    #[test]
    fn depth_first_memory_profile() {
        // The DFS miner's peak (max_depth) stays tiny even when the
        // total pattern count is large.
        let txns: Vec<Graph> = (0..4).map(|_| shapes::chain(6, 0, 1)).collect();
        let out = mine_dfs(&txns, &cfg(4, 6));
        assert!(out.stats.max_depth <= 6);
        assert!(out.patterns.len() >= 6, "chains of each length frequent");
    }

    #[test]
    fn empty_input() {
        let out = mine_dfs(&[], &cfg(1, 3));
        assert!(out.patterns.is_empty());
    }

    #[test]
    fn dedup_hits_recorded() {
        // A "T" (a->b->c plus b->d) is reachable both by extending the
        // 2-chain and by extending the fork; the second route must hit
        // the visited set.
        let t_shape = || {
            let mut g = Graph::new();
            let a = g.add_vertex(tnet_graph::graph::VLabel(0));
            let b = g.add_vertex(tnet_graph::graph::VLabel(0));
            let c = g.add_vertex(tnet_graph::graph::VLabel(0));
            let d = g.add_vertex(tnet_graph::graph::VLabel(0));
            g.add_edge(a, b, tnet_graph::graph::ELabel(1));
            g.add_edge(b, c, tnet_graph::graph::ELabel(1));
            g.add_edge(b, d, tnet_graph::graph::ELabel(1));
            g
        };
        let txns: Vec<Graph> = (0..3).map(|_| t_shape()).collect();
        let out = mine_dfs(&txns, &cfg(3, 3));
        assert!(out.stats.dedup_hits > 0);
        // And the T itself is found once.
        let t_found = out
            .patterns
            .iter()
            .filter(|p| are_isomorphic(&p.graph, &t_shape()))
            .count();
        assert_eq!(t_found, 1);
    }
}
