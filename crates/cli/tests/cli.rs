//! End-to-end tests of the `tnet` binary: spawn the real executable and
//! check exit codes and output shape (generate → stats → mine round
//! trip through an actual CSV file on disk), plus the exit-code
//! contract — 0 success, 1 runtime failure, 2 usage error — and the
//! supervised report under an armed failpoint.

use std::process::Command;

fn tnet() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tnet"));
    // Isolate from any failpoints armed in the invoking environment.
    cmd.env_remove("TNET_FAILPOINTS");
    cmd
}

fn run_ok(args: &[&str]) -> String {
    let out = tnet().args(args).output().expect("spawn tnet");
    assert!(
        out.status.success(),
        "tnet {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn help_lists_commands() {
    let text = run_ok(&["help"]);
    for cmd in [
        "gen", "stats", "mine", "subdue", "temporal", "lanes", "report",
    ] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_is_usage_error() {
    let out = tnet().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.starts_with("error: "), "{err}");
}

#[test]
fn unparseable_value_is_usage_error() {
    let out = tnet()
        .args(["stats", "--scale", "notanumber"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scale"));
}

#[test]
fn missing_input_file_is_runtime_error() {
    let out = tnet()
        .args(["stats", "--input", "/nonexistent/data.csv"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "I/O failure is runtime");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error: "), "{err}");
    assert_eq!(err.lines().count(), 1, "one-line stderr, got:\n{err}");
}

#[test]
fn malformed_csv_is_runtime_error_with_line_number() {
    let dir = std::env::temp_dir().join(format!("tnet_cli_badcsv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.csv");
    std::fs::write(
        &path,
        format!("{}\nnot,enough,fields\n", tnet_data::csv::HEADER),
    )
    .unwrap();
    let out = tnet()
        .args(["stats", "--input", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    // File-line numbering: the header is line 1, the broken row line 2.
    assert!(err.contains("line 2"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_with_injected_panic_still_succeeds() {
    // One section panics; the supervisor isolates it, every other
    // section renders, and the command still exits 0.
    let out = tnet()
        .args([
            "report",
            "--scale",
            "0.008",
            "--extensions",
            "false",
            "--threads",
            "2",
        ])
        .env("TNET_FAILPOINTS", "em::iteration=panic")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("!! section failed:"),
        "missing failure notice:\n{stdout}"
    );
    assert!(
        stdout.contains("sections: 12 ok, 0 degraded, 1 failed"),
        "missing summary:\n{stdout}"
    );
}

#[test]
fn gen_stats_mine_roundtrip() {
    let dir = std::env::temp_dir().join(format!("tnet_cli_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("data.csv");
    let csv_str = csv.to_str().unwrap();

    let gen_out = run_ok(&["gen", "--scale", "0.01", "--seed", "7", "--out", csv_str]);
    assert!(gen_out.contains("wrote"), "gen output: {gen_out}");
    assert!(csv.exists());

    let stats_out = run_ok(&["stats", "--input", csv_str]);
    assert!(stats_out.contains("distinct OD pairs"));
    assert!(stats_out.contains("out-degree"));

    let mine_out = run_ok(&[
        "mine",
        "--input",
        csv_str,
        "--partitions",
        "6",
        "--support",
        "3",
        "--max-edges",
        "3",
        "--reps",
        "1",
    ]);
    assert!(mine_out.contains("frequent patterns"), "mine: {mine_out}");
    assert!(mine_out.contains("support"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn subdue_runs_on_synthetic() {
    let out = run_ok(&[
        "subdue",
        "--scale",
        "0.01",
        "--vertices",
        "20",
        "--eval",
        "size",
        "--max-size",
        "6",
    ]);
    assert!(out.contains("truncated graph"));
    assert!(out.contains("#1:"), "expected a best substructure: {out}");
}

#[test]
fn lanes_runs_on_synthetic() {
    let out = run_ok(&["lanes", "--scale", "0.02"]);
    assert!(out.contains("periodic lanes"));
    assert!(out.contains("route patterns"));
}

#[test]
fn bad_option_reports_error() {
    let out = tnet().args(["stats", "--nonsense", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}
