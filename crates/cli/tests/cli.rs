//! End-to-end tests of the `tnet` binary: spawn the real executable and
//! check exit codes and output shape (generate → stats → mine round
//! trip through an actual CSV file on disk).

use std::process::Command;

fn tnet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tnet"))
}

fn run_ok(args: &[&str]) -> String {
    let out = tnet().args(args).output().expect("spawn tnet");
    assert!(
        out.status.success(),
        "tnet {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn help_lists_commands() {
    let text = run_ok(&["help"]);
    for cmd in [
        "gen", "stats", "mine", "subdue", "temporal", "lanes", "report",
    ] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = tnet().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stats_mine_roundtrip() {
    let dir = std::env::temp_dir().join(format!("tnet_cli_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("data.csv");
    let csv_str = csv.to_str().unwrap();

    let gen_out = run_ok(&["gen", "--scale", "0.01", "--seed", "7", "--out", csv_str]);
    assert!(gen_out.contains("wrote"), "gen output: {gen_out}");
    assert!(csv.exists());

    let stats_out = run_ok(&["stats", "--input", csv_str]);
    assert!(stats_out.contains("distinct OD pairs"));
    assert!(stats_out.contains("out-degree"));

    let mine_out = run_ok(&[
        "mine",
        "--input",
        csv_str,
        "--partitions",
        "6",
        "--support",
        "3",
        "--max-edges",
        "3",
        "--reps",
        "1",
    ]);
    assert!(mine_out.contains("frequent patterns"), "mine: {mine_out}");
    assert!(mine_out.contains("support"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn subdue_runs_on_synthetic() {
    let out = run_ok(&[
        "subdue",
        "--scale",
        "0.01",
        "--vertices",
        "20",
        "--eval",
        "size",
        "--max-size",
        "6",
    ]);
    assert!(out.contains("truncated graph"));
    assert!(out.contains("#1:"), "expected a best substructure: {out}");
}

#[test]
fn lanes_runs_on_synthetic() {
    let out = run_ok(&["lanes", "--scale", "0.02"]);
    assert!(out.contains("periodic lanes"));
    assert!(out.contains("route patterns"));
}

#[test]
fn bad_option_reports_error() {
    let out = tnet().args(["stats", "--nonsense", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}
