//! Crash-recovery differential for the durable daemon: spawn the real
//! `tnet serve` binary with a data directory, ingest acknowledged
//! batches, SIGKILL it mid-stream, restart it on the same directory,
//! and prove its replies match a never-crashed control daemon fed the
//! same acknowledged records. Generation counters are the one field
//! allowed to differ (the control publishes incrementally while the
//! recovered daemon republishes everything as its genesis), so replies
//! are compared after normalizing `"generation":N`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tnet() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tnet"));
    cmd.env_remove("TNET_FAILPOINTS");
    cmd
}

/// A spawned daemon plus one connected client.
struct Daemon {
    child: Child,
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Daemon {
    /// Spawns `tnet serve` with the given extra flags, waits for its
    /// port file, and connects.
    fn spawn(tag: &str, extra: &[&str]) -> Daemon {
        let port_file =
            std::env::temp_dir().join(format!("tnet_crash_port_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_file(&port_file);
        let child = tnet()
            .args([
                "serve",
                "--threads",
                "2",
                "--publish-interval-ms",
                "25",
                "--shutdown-on-stdin-eof",
                "false",
                "--port-file",
                port_file.to_str().unwrap(),
            ])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn tnet serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let port: u16 = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse() {
                    break p;
                }
            }
            assert!(
                Instant::now() < deadline,
                "port file never appeared ({tag})"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&port_file);
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Daemon {
            child,
            reader,
            stream,
        }
    }

    /// One request/reply round trip.
    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply
    }

    /// Polls `stats` until the published generation holds exactly
    /// `want` transactions (ingest acks land in the writer before the
    /// next publish tick, so acknowledged data becomes visible shortly
    /// after, not instantly).
    fn await_transactions(&mut self, want: usize) {
        let needle = format!("\"transactions\":{want},");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let reply = self.send(r#"{"op":"stats"}"#);
            if reply.contains(&needle) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "never published {want} transactions; last stats: {reply}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One ingest request carrying `n` deterministic records starting at
/// `base` — varied enough for binning to fit, identical across runs.
fn ingest_line(base: u64, n: u64) -> String {
    let recs: Vec<String> = (0..n)
        .map(|i| {
            let id = base + i;
            format!(
                "{{\"id\":{id},\"pickup\":{},\"olat\":{},\"olon\":{},\"dlat\":{},\"dlon\":{},\
                 \"distance\":{},\"weight\":{},\"hours\":{}}}",
                730_000 + id * 7 % 10_000,
                30.0 + (id % 11) as f64 * 0.5,
                -95.0 + (id % 13) as f64 * 0.7,
                33.0 + (id % 7) as f64 * 0.9,
                -84.0 + (id % 5) as f64 * 1.1,
                200.0 + (id % 17) as f64 * 35.0,
                8_000.0 + (id % 9) as f64 * 4_000.0,
                4.0 + (id % 6) as f64 * 2.5,
            )
        })
        .collect();
    format!("{{\"op\":\"ingest\",\"records\":[{}]}}", recs.join(","))
}

/// Strips generation counters so replies from daemons with different
/// publish histories can be compared byte-for-byte otherwise.
fn normalize(reply: &str) -> String {
    let mut out = String::with_capacity(reply.len());
    let mut rest = reply;
    while let Some(at) = rest.find("\"generation\":") {
        let tail = &rest[at + "\"generation\":".len()..];
        let digits = tail.chars().take_while(|c| c.is_ascii_digit()).count();
        assert!(digits > 0, "generation without a number: {reply}");
        out.push_str(&rest[..at]);
        out.push_str("\"generation\":_");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// The headline durability test from the issue: acknowledged writes
/// survive SIGKILL, and the restarted daemon answers queries exactly
/// like a daemon that never crashed.
#[test]
fn sigkill_mid_ingest_then_restart_matches_never_crashed_control() {
    let dir = std::env::temp_dir().join(format!("tnet_crash_recovery_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data_dir = dir.join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    let data = data_dir.to_str().unwrap().to_string();

    // Feed the victim a stream of acknowledged batches, then SIGKILL it
    // with no warning — no graceful shutdown, no final snapshot.
    let batches: Vec<String> = (0..4).map(|b| ingest_line(1 + b * 10, 6)).collect();
    let delete = r#"{"op":"delete","ids":[3,14]}"#;
    {
        let mut victim = Daemon::spawn("victim", &["--data-dir", &data, "--fsync", "always"]);
        for line in &batches {
            let reply = victim.send(line);
            assert!(
                reply.contains("\"accepted\":6"),
                "ingest not acked: {reply}"
            );
        }
        let reply = victim.send(delete);
        assert!(
            reply.contains("\"accepted\":2"),
            "delete not acked: {reply}"
        );
        victim.child.kill().unwrap(); // SIGKILL on unix
        victim.child.wait().unwrap();
    }

    // Restart on the same directory; recovery must replay the WAL.
    let mut recovered = Daemon::spawn("recovered", &["--data-dir", &data, "--fsync", "always"]);
    recovered.await_transactions(22); // 24 ingested - 2 deleted

    // The control daemon never crashes: same acknowledged stream, no
    // durability at all.
    let mut control = Daemon::spawn("control", &[]);
    for line in &batches {
        let reply = control.send(line);
        assert!(reply.contains("\"accepted\":6"), "{reply}");
    }
    assert!(control.send(delete).contains("\"accepted\":2"));
    control.await_transactions(22);

    // The differential: stats, support, and pattern replies must agree
    // byte-for-byte modulo the generation counter.
    for query in [
        r#"{"op":"stats"}"#,
        r#"{"op":"support","labeling":"gw","labels":[0,1,2]}"#,
        r#"{"op":"support","labeling":"td","labels":[0,1]}"#,
        r#"{"op":"pattern","partitions":2,"support":2,"max_edges":3}"#,
    ] {
        let a = normalize(&recovered.send(query));
        let b = normalize(&control.send(query));
        assert_eq!(a, b, "recovered and control disagree on {query}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn tail (partial final record, as a crash mid-write leaves
/// behind) is truncated and recovery proceeds; acknowledged complete
/// records before the tear survive.
#[test]
fn torn_wal_tail_recovers_cleanly() {
    let dir = std::env::temp_dir().join(format!("tnet_torn_tail_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.to_str().unwrap().to_string();

    {
        let mut victim = Daemon::spawn("torn", &["--data-dir", &data, "--fsync", "always"]);
        let reply = victim.send(&ingest_line(501, 6));
        assert!(reply.contains("\"accepted\":6"), "{reply}");
        victim.child.kill().unwrap();
        victim.child.wait().unwrap();
    }

    // Simulate a torn write: chop the WAL mid-record.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    assert!(bytes.len() > 20, "WAL unexpectedly small: {}", bytes.len());
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

    // The torn record was never acknowledged, so recovery truncates it
    // and serves what remains — here, nothing, because the only record
    // was torn. Startup must still succeed.
    let mut recovered = Daemon::spawn("torn2", &["--data-dir", &data, "--fsync", "always"]);
    let reply = recovered.send(r#"{"op":"ping"}"#);
    assert!(reply.contains("\"ok\":true"), "{reply}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption in the body of the log (not a torn tail) must refuse
/// startup with exit code 1 rather than serve silently damaged data.
#[test]
fn corrupt_wal_body_refuses_startup() {
    let dir = std::env::temp_dir().join(format!("tnet_corrupt_body_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.to_str().unwrap().to_string();

    {
        let mut victim = Daemon::spawn("corrupt", &["--data-dir", &data, "--fsync", "always"]);
        for b in 0..2 {
            let reply = victim.send(&ingest_line(601 + b * 10, 6));
            assert!(reply.contains("\"accepted\":6"), "{reply}");
        }
        victim.child.kill().unwrap();
        victim.child.wait().unwrap();
    }

    // Flip a byte deep inside the FIRST record's payload: mid-log
    // corruption, not a tear.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[12] ^= 0xFF;
    std::fs::write(&wal, &bytes).unwrap();

    let out = tnet()
        .args([
            "serve",
            "--data-dir",
            &data,
            "--shutdown-on-stdin-eof",
            "false",
        ])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "corrupt WAL must be a runtime refusal; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("corrupt"),
        "stderr should name corruption: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
