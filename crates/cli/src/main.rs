//! `tnet` — command-line interface for transportation network mining.
//!
//! ```text
//! tnet gen      --scale 0.05 --seed 42 --out data.csv
//! tnet stats    --input data.csv
//! tnet mine     --input data.csv --labeling th --strategy bf --partitions 24 --support 7
//! tnet subdue   --input data.csv --eval size --vertices 60 --passes 2
//! tnet temporal --input data.csv
//! tnet lanes    --input data.csv
//! tnet report   --scale 0.05
//! ```
//!
//! Every command also accepts `--scale`/`--seed` instead of `--input` to
//! run on a freshly generated synthetic dataset.

mod args;
mod commands;
mod error;

use args::Args;
use error::CliError;

const HELP: &str = "\
tnet — knowledge discovery from transportation network data
(Rust reproduction of Jiang et al., ICDE 2005)

USAGE:
    tnet <command> [--options ...]

COMMANDS:
    gen       generate a synthetic dataset and write CSV
              --scale F --seed N --out PATH
    stats     dataset description (Sec 3 statistics)
              --input CSV | --scale F --seed N
    mine      frequent patterns via partition + FSG (Algorithm 1)
              --labeling gw|th|td --strategy bf|df --partitions N
              --support N --max-edges N --reps N --top N --maximal true
    subdue    SUBDUE substructure discovery on a truncated OD graph
              --labeling gw|th|td --vertices N --eval mdl|size
              --beam N --best N --max-size N --passes N
    temporal  Sec 6 temporal experiments (Tables 2-3, Figure 4, OOM)
              --quiet-fraction F --budget-mb N --oom-support N
    lanes     periodic lanes and repeated routes (Sec 9 extensions)
              --max-sep N --max-len N --min-occurrences N
    report    the full E1..E15 report (+E17..E21 extensions)
              --scale F --seed N --extensions true|false
              --deadline-secs F --section-budget MB
    help      this message

mine, subdue, temporal and report also take --threads N to size the
worker pool (default: TNET_THREADS, then the hardware thread count).
Results are identical at any thread count.

report runs every section under supervision: a panicking or failing
section renders a notice instead of killing the run, --deadline-secs
bounds each section's wall clock, and --section-budget caps each
miner's memory estimate. Retryable failures (budget, deadline) are
retried once at reduced effort before being marked failed.

EXIT CODES:
    0   success (report: at least one section completed)
    1   runtime failure (missing file, malformed CSV, mining abort)
    2   usage error (unknown command/flag, unparseable value)
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "gen" => commands::gen::run(&args),
        "stats" => commands::stats::run(&args),
        "mine" => commands::mine::run(&args),
        "subdue" => commands::subdue::run(&args),
        "temporal" => commands::temporal::run(&args),
        "lanes" => commands::lanes::run(&args),
        "report" => commands::report::run(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'; try `tnet help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_works() {
        run(&argv("help")).unwrap();
    }

    #[test]
    fn unknown_command() {
        let e = run(&argv("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn missing_input_file_is_a_runtime_error() {
        let e = run(&argv("stats --input /nonexistent/data.csv")).unwrap_err();
        assert_eq!(e.exit_code(), 1, "I/O failure is runtime, not usage");
    }

    #[test]
    fn bad_flag_value_is_a_usage_error() {
        let e = run(&argv("stats --scale notanumber")).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn stats_end_to_end() {
        run(&argv("stats --scale 0.01")).unwrap();
    }
}
