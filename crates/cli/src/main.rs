//! `tnet` — command-line interface for transportation network mining.
//!
//! ```text
//! tnet gen      --scale 0.05 --seed 42 --out data.csv
//! tnet stats    --input data.csv
//! tnet mine     --input data.csv --labeling th --strategy bf --partitions 24 --support 7
//! tnet subdue   --input data.csv --eval size --vertices 60 --passes 2
//! tnet temporal --input data.csv
//! tnet lanes    --input data.csv
//! tnet report   --scale 0.05
//! ```
//!
//! Every command also accepts `--scale`/`--seed` instead of `--input` to
//! run on a freshly generated synthetic dataset.

mod args;
mod commands;
mod error;

use args::Args;
use error::CliError;

const HELP: &str = "\
tnet — knowledge discovery from transportation network data
(Rust reproduction of Jiang et al., ICDE 2005)

USAGE:
    tnet <command> [--options ...]

COMMANDS:
    gen       generate a synthetic dataset and write CSV
              --scale F --seed N --out PATH
    stats     dataset description (Sec 3 statistics)
              --input CSV | --scale F --seed N
    mine      frequent patterns on the OD graph
              --mode partition (Algorithm 1: partition + FSG, default)
                --strategy bf|df --partitions N --reps N
              --mode neighborhood (r-hop neighborhood miner, no partitioning)
                --radius N
              --labeling gw|th|td --support N --max-edges N
              --top N --maximal true
    subdue    SUBDUE substructure discovery on a truncated OD graph
              --labeling gw|th|td --vertices N --eval mdl|size
              --beam N --best N --max-size N --passes N
    temporal  Sec 6 temporal experiments (Tables 2-3, Figure 4, OOM)
              --quiet-fraction F --budget-mb N --oom-support N
    lanes     periodic lanes and repeated routes (Sec 9 extensions)
              --max-sep N --max-len N --min-occurrences N
    report    the full E1..E15 report (+E17..E21 extensions)
              --scale F --seed N --extensions true|false
              --deadline-secs F --section-budget MB
    serve     long-lived pattern-mining daemon (JSON lines over TCP)
              --port N --port-file PATH --publish-interval-ms N
              --batch N --cache N --shutdown-on-stdin-eof true|false
    trace     summarize a tnet-trace/v1 JSON file (from --trace-json)
              --input PATH
    help      this message

mine, subdue, temporal and report also take --threads N to size the
worker pool (default: TNET_THREADS, then the hardware thread count).
Results are identical at any thread count.

mine, subdue and report take --trace to print a span tree (wall clock
per pipeline phase, xN call counts) and a named-counter table after
the run, and --trace-json PATH to also write both as a tnet-trace/v1
JSON document. Without either flag tracing is compiled to a single
untaken branch per phase.

report runs every section under supervision: a panicking or failing
section renders a notice instead of killing the run, --deadline-secs
bounds each section's wall clock, and --section-budget caps each
miner's memory estimate. Retryable failures (budget, deadline) are
retried once at reduced effort before being marked failed.

EXIT CODES:
    0   success (report: at least one section completed)
    1   runtime failure (missing file, malformed CSV, mining abort)
    2   usage error (unknown command/flag, unparseable value)
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "gen" => commands::gen::run(&args),
        "stats" => commands::stats::run(&args),
        "mine" => commands::mine::run(&args),
        "subdue" => commands::subdue::run(&args),
        "temporal" => commands::temporal::run(&args),
        "lanes" => commands::lanes::run(&args),
        "report" => commands::report::run(&args),
        "serve" => commands::serve::run(&args),
        "trace" => commands::trace::run(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'; try `tnet help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_works() {
        run(&argv("help")).unwrap();
    }

    #[test]
    fn unknown_command() {
        let e = run(&argv("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn missing_input_file_is_a_runtime_error() {
        let e = run(&argv("stats --input /nonexistent/data.csv")).unwrap_err();
        assert_eq!(e.exit_code(), 1, "I/O failure is runtime, not usage");
    }

    #[test]
    fn bad_flag_value_is_a_usage_error() {
        let e = run(&argv("stats --scale notanumber")).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn stats_end_to_end() {
        run(&argv("stats --scale 0.01")).unwrap();
    }

    #[test]
    fn mine_trace_json_round_trips_and_phases_nest() {
        let path = std::env::temp_dir().join("tnet_test_mine_trace.json");
        let path_s = path.to_string_lossy().into_owned();
        run(&argv(&format!(
            "mine --scale 0.01 --partitions 4 --support 3 --max-edges 3 --reps 1 \
             --trace --trace-json {path_s}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let doc = tnet_bench::json::Json::parse(&text).unwrap();
        tnet_bench::obs_json::validate_trace(&doc).unwrap();
        let root = doc.get("root").unwrap();
        assert_eq!(
            root.get("label"),
            Some(&tnet_bench::json::Json::Str("mine".into()))
        );
        let children = match root.get("children") {
            Some(tnet_bench::json::Json::Arr(c)) => c,
            other => panic!("children not an array: {other:?}"),
        };
        let labels: Vec<&str> = children
            .iter()
            .filter_map(|c| match c.get("label") {
                Some(tnet_bench::json::Json::Str(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        for phase in ["ingest", "binning", "build_od_graph", "partition", "fsg"] {
            assert!(labels.contains(&phase), "missing phase {phase}: {labels:?}");
        }
        // Per-phase wall sums to at most the root total: children nest
        // inside the root timer (slack is idle/orchestration time).
        let total = root.get("nanos").unwrap().as_f64().unwrap();
        let summed: f64 = children
            .iter()
            .map(|c| c.get("nanos").unwrap().as_f64().unwrap())
            .sum();
        assert!(
            summed <= total,
            "phases ({summed} ns) exceed total wall ({total} ns)"
        );
        // The registry absorbed miner and pool counters.
        let metrics = match doc.get("metrics") {
            Some(tnet_bench::json::Json::Obj(m)) => m,
            other => panic!("metrics not an object: {other:?}"),
        };
        assert!(metrics.contains_key("fsg.iso_tests"), "{metrics:?}");
        assert!(metrics.contains_key("exec.tasks"), "{metrics:?}");
    }

    /// Regression for the trace-summary path: a truncated or
    /// hand-edited trace file must surface as a one-line runtime error
    /// (exit 1), never a panic from unwrapping `nanos` and friends.
    #[test]
    fn malformed_trace_json_is_a_one_line_runtime_error() {
        let dir = std::env::temp_dir();
        let cases: &[(&str, &str, &str)] = &[
            // Truncated mid-document (a crashed writer).
            (
                "tnet_test_trace_truncated.json",
                r#"{"schema": "tnet-trace/v1", "root": {"label": "mine", "na"#,
                "malformed trace JSON",
            ),
            // Hand-edited: nanos replaced by a string.
            (
                "tnet_test_trace_bad_nanos.json",
                r#"{"schema": "tnet-trace/v1", "metrics": {},
                    "root": {"label": "mine", "nanos": "fast", "count": 1, "children": []}}"#,
                "'nanos' is not a non-negative integer",
            ),
            // Hand-edited: a child span lost its label.
            (
                "tnet_test_trace_bad_child.json",
                r#"{"schema": "tnet-trace/v1", "metrics": {"exec.tasks": 4},
                    "root": {"label": "mine", "nanos": 5, "count": 1,
                             "children": [{"nanos": 2, "count": 1, "children": []}]}}"#,
                "children[0]: missing 'label' string",
            ),
            // Wrong schema tag entirely.
            (
                "tnet_test_trace_bad_schema.json",
                r#"{"schema": "not-a-trace", "metrics": {}, "root": {}}"#,
                "unexpected schema",
            ),
        ];
        for (name, text, want) in cases {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            let e = run(&argv(&format!("trace --input {}", path.display()))).unwrap_err();
            let _ = std::fs::remove_file(&path);
            assert_eq!(e.exit_code(), 1, "{name}: runtime, not usage: {e}");
            let msg = e.to_string();
            assert!(!msg.contains('\n'), "{name}: one stderr line: {msg:?}");
            assert!(msg.contains(want), "{name}: {msg}");
        }
        // Missing file is also a runtime error; missing --input is usage.
        let e = run(&argv("trace --input /nonexistent/trace.json")).unwrap_err();
        assert_eq!(e.exit_code(), 1);
        let e = run(&argv("trace")).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    /// A trace written by `--trace-json` summarizes cleanly.
    #[test]
    fn trace_summarizes_a_real_trace_json() {
        let path = std::env::temp_dir().join("tnet_test_trace_real.json");
        let path_s = path.to_string_lossy().into_owned();
        run(&argv(&format!(
            "mine --scale 0.01 --partitions 4 --support 3 --max-edges 3 --reps 1 \
             --trace-json {path_s}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let summary = commands::trace::summarize(&text).unwrap();
        assert!(summary.contains("mine"), "{summary}");
        assert!(summary.contains("--- metrics ---"), "{summary}");
        assert!(summary.contains("fsg.iso_tests"), "{summary}");
        assert!(summary.contains("total wall"), "{summary}");
    }

    #[test]
    fn nan_csv_is_a_one_line_runtime_error_with_line_number() {
        let path = std::env::temp_dir().join("tnet_test_nan.csv");
        std::fs::write(
            &path,
            format!(
                "{}\n1,0,1,44.5,-88.0,41.9,-87.6,200,NaN,8,TL\n",
                tnet_data::csv::HEADER
            ),
        )
        .unwrap();
        let e = run(&argv(&format!("stats --input {}", path.display()))).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(e.exit_code(), 1, "malformed data is runtime, not usage");
        let msg = e.to_string();
        assert!(!msg.contains('\n'), "one stderr line: {msg:?}");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("non-finite"), "{msg}");
    }

    #[test]
    fn absurd_deadline_and_budget_are_usage_errors() {
        let e = run(&argv("report --scale 0.01 --deadline-secs 1e18")).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("absurd"), "{e}");
        let e = run(&argv(&format!(
            "report --scale 0.01 --section-budget {}",
            usize::MAX
        )))
        .unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("overflows"), "{e}");
    }
}
