//! Minimal hand-rolled argument parsing: `--key value` flags and
//! positional arguments, with typed accessors and helpful errors. No
//! external dependency; the option surface is small and fixed.

use std::collections::HashMap;
use tnet_exec::{Exec, Threads};

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    pub command: String,
    pub positional: Vec<String>,
    options: HashMap<String, String>,
}

/// A parse or validation failure, rendered to the user as-is.
#[derive(Debug, PartialEq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `tnet help`".into()))?
            .clone();
        let mut args = Args {
            command,
            ..Default::default()
        };
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                // `--trace` is a valueless switch: it never consumes the
                // next token, so `tnet mine --trace --support 5` parses
                // naturally (everything else stays `--key value`).
                let value = if key == "trace" {
                    "true".to_string()
                } else {
                    it.next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?
                        .clone()
                };
                if args
                    .options
                    .insert(key.to_string(), value.clone())
                    .is_some()
                {
                    return Err(ArgError(format!("--{key} given twice")));
                }
            } else {
                args.positional.push(tok.clone());
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Typed option with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// Required typed option.
    #[allow(dead_code)] // part of the parsing API; commands currently use defaults
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self
            .get(key)
            .ok_or_else(|| ArgError(format!("--{key} is required")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'")))
    }

    /// Builds the execution pool from `--threads` (falling back to
    /// `TNET_THREADS`, then hardware parallelism).
    pub fn exec(&self) -> Result<Exec, ArgError> {
        match self.get("threads") {
            None => Ok(Exec::from_threads(Threads::auto())),
            Some(v) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| ArgError(format!("--threads: cannot parse '{v}'")))?;
                if n == 0 {
                    return Err(ArgError("--threads must be at least 1".into()));
                }
                Ok(Exec::from_threads(Threads::exact(n)))
            }
        }
    }

    /// Rejects unknown options (call after reading the known set).
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key} for `{}` (known: {})",
                    self.command,
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_positionals() {
        let a = Args::parse(&argv("mine data.csv --support 5 --strategy bf")).unwrap();
        assert_eq!(a.command, "mine");
        assert_eq!(a.positional, vec!["data.csv"]);
        assert_eq!(a.get("support"), Some("5"));
        assert_eq!(a.get_or("strategy", "df"), "bf");
        assert_eq!(a.get_parsed_or("support", 1usize).unwrap(), 5);
        assert_eq!(a.get_parsed_or("partitions", 8usize).unwrap(), 8);
    }

    #[test]
    fn trace_is_a_valueless_switch() {
        let a = Args::parse(&argv("mine --trace --support 5")).unwrap();
        assert_eq!(a.get("trace"), Some("true"));
        assert_eq!(a.get("support"), Some("5"));
        let a = Args::parse(&argv("report --trace")).unwrap();
        assert_eq!(a.get("trace"), Some("true"));
    }

    #[test]
    fn missing_subcommand() {
        assert!(Args::parse(&[]).is_err());
    }

    #[test]
    fn missing_value() {
        let e = Args::parse(&argv("gen --scale")).unwrap_err();
        assert!(e.0.contains("needs a value"));
    }

    #[test]
    fn duplicate_option() {
        let e = Args::parse(&argv("gen --scale 0.1 --scale 0.2")).unwrap_err();
        assert!(e.0.contains("twice"));
    }

    #[test]
    fn bad_parse_and_required() {
        let a = Args::parse(&argv("gen --scale abc")).unwrap();
        assert!(a.get_parsed_or("scale", 1.0f64).is_err());
        assert!(a.require_parsed::<f64>("seed").is_err());
    }

    #[test]
    fn threads_option_builds_pool() {
        let a = Args::parse(&argv("mine --threads 3")).unwrap();
        assert_eq!(a.exec().unwrap().threads(), 3);
        let a = Args::parse(&argv("mine --threads 0")).unwrap();
        assert!(a.exec().is_err());
        let a = Args::parse(&argv("mine --threads lots")).unwrap();
        assert!(a.exec().is_err());
    }

    #[test]
    fn unknown_option_rejected() {
        let a = Args::parse(&argv("gen --bogus 1")).unwrap();
        assert!(a.ensure_known(&["scale", "seed"]).is_err());
        let a = Args::parse(&argv("gen --scale 1")).unwrap();
        assert!(a.ensure_known(&["scale", "seed"]).is_ok());
    }
}
