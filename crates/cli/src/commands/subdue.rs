//! `tnet subdue` — SUBDUE substructure discovery on a truncated OD
//! graph, with optional hierarchical compression passes.

use crate::args::{ArgError, Args};
use crate::commands::{load_transactions, obs_context, parse_labeling};
use crate::error::CliError;
use tnet_core::experiments::structural::truncated_structural_graph;
use tnet_core::patterns::classify;
use tnet_data::binning::BinScheme;
use tnet_subdue::{discover_with, hierarchical, EvalMethod, SubdueConfig};

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "labeling",
        "vertices",
        "eval",
        "beam",
        "best",
        "max-size",
        "passes",
        "threads",
        "trace",
        "trace-json",
    ])?;
    let obs = obs_context(args);
    let mut exec = args.exec()?;
    if let Some(o) = &obs {
        exec = o.attach(&exec);
    }
    let total = exec.span().timer();
    let txns = {
        let _t = exec.span().time("ingest");
        load_transactions(args)?
    };
    let labeling = parse_labeling(args.get_or("labeling", "gw"))?;
    let vertices: usize = args.get_parsed_or("vertices", 60)?;
    let eval = match args.get_or("eval", "mdl") {
        "mdl" => EvalMethod::Mdl,
        "size" => EvalMethod::Size,
        other => return Err(ArgError(format!("unknown eval '{other}' (mdl|size)")).into()),
    };
    let cfg = SubdueConfig {
        beam_width: args.get_parsed_or("beam", 4)?,
        max_best: args.get_parsed_or("best", 3)?,
        max_size: args.get_parsed_or("max-size", 14)?,
        eval,
        ..Default::default()
    };
    let passes: usize = args.get_parsed_or("passes", 1)?;

    let scheme = {
        let _t = exec.span().time("binning");
        BinScheme::fit_width_transactions(&txns)?
    };
    let g = {
        let _t = exec.span().time("build_od_graph");
        truncated_structural_graph(&txns, &scheme, labeling, vertices)
    };
    println!(
        "{} truncated graph: {} vertices, {} edges; {} evaluation",
        labeling.name(),
        g.vertex_count(),
        g.edge_count(),
        eval.name()
    );

    if passes <= 1 {
        let out = discover_with(&g, &cfg, &exec)?;
        println!(
            "expanded {} substructures, evaluated {}, runtime {:?}",
            out.expanded, out.evaluated, out.runtime
        );
        println!(
            "instances extended {}, spilled {}, patterns derived {}, fingerprint rejects {}",
            out.stats.embeddings_extended,
            out.stats.embeddings_spilled,
            out.stats.patterns_derived,
            out.stats.fingerprint_rejects
        );
        for (i, sub) in out.best.iter().enumerate() {
            println!(
                "#{}: {} edges / {} vertices, {} disjoint instances, value {:.3}, shape {}",
                i + 1,
                sub.pattern.edge_count(),
                sub.pattern.vertex_count(),
                sub.disjoint_count(),
                sub.value,
                classify(&sub.pattern).name()
            );
            print!("{}", tnet_graph::dot::to_ascii(&sub.pattern));
        }
    } else {
        let levels = hierarchical(&g, &cfg, passes)?;
        println!("hierarchical description: {} levels", levels.len());
        for (i, level) in levels.iter().enumerate() {
            println!(
                "level {}: pattern {} edges x{} instances, compressed size {} (value {:.3})",
                i + 1,
                level.substructure.pattern.edge_count(),
                level.substructure.disjoint_count(),
                level.compressed_size,
                level.substructure.value
            );
        }
    }
    drop(total);
    if let Some(o) = &obs {
        o.finish(&exec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_on_synthetic() {
        let argv: Vec<String> = [
            "subdue",
            "--scale",
            "0.01",
            "--vertices",
            "25",
            "--eval",
            "size",
            "--max-size",
            "6",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }

    #[test]
    fn hierarchical_passes() {
        let argv: Vec<String> = [
            "subdue",
            "--scale",
            "0.01",
            "--vertices",
            "20",
            "--eval",
            "size",
            "--max-size",
            "5",
            "--passes",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }
}
