//! `tnet mine` — frequent-pattern mining on the OD graph via Algorithm 1
//! (partition + FSG/gSpan), with shape classification and optional
//! maximal filtering.

use crate::args::{ArgError, Args};
use crate::commands::{load_transactions, obs_context, parse_labeling};
use crate::error::CliError;
use std::sync::atomic::{AtomicUsize, Ordering};
use tnet_data::binning::BinScheme;
use tnet_data::od_graph::{build_od_graph, VertexLabeling};
use tnet_fsg::{mine_with, FsgConfig, NbhdConfig, Support};
use tnet_graph::frozen::FrozenStats;
use tnet_partition::single_graph::{mine_single_graph, SingleGraphPattern};
use tnet_partition::split::Strategy;

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "mode",
        "radius",
        "labeling",
        "strategy",
        "partitions",
        "support",
        "max-edges",
        "reps",
        "top",
        "maximal",
        "dot-dir",
        "threads",
        "verbose",
        "trace",
        "trace-json",
    ])?;
    let obs = obs_context(args);
    let mut exec = args.exec()?;
    if let Some(o) = &obs {
        exec = o.attach(&exec);
    }
    // Times the root node (total command wall); must drop before
    // `ObsContext::finish` snapshots the tree.
    let total = exec.span().timer();
    let txns = {
        let _t = exec.span().time("ingest");
        load_transactions(args)?
    };
    let labeling = parse_labeling(args.get_or("labeling", "gw"))?;
    let strategy = match args.get_or("strategy", "bf") {
        "bf" | "breadth" => Strategy::BreadthFirst,
        "df" | "depth" => Strategy::DepthFirst,
        other => return Err(ArgError(format!("unknown strategy '{other}' (bf|df)")).into()),
    };
    let mode = args.get_or("mode", "partition");
    if !matches!(mode, "partition" | "neighborhood") {
        return Err(ArgError(format!("unknown mode '{mode}' (partition|neighborhood)")).into());
    }
    let radius: usize = args.get_parsed_or("radius", 1)?;
    if radius == 0 {
        return Err(ArgError("--radius must be at least 1".into()).into());
    }
    let partitions: usize = args.get_parsed_or("partitions", 16)?;
    let support: usize = args.get_parsed_or("support", 5)?;
    let max_edges: usize = args.get_parsed_or("max-edges", 5)?;
    let reps: usize = args.get_parsed_or("reps", 2)?;
    let top: usize = args.get_parsed_or("top", 15)?;
    let maximal = args.get_or("maximal", "false") == "true";
    let verbose = args.get_or("verbose", "false") == "true";

    let scheme = {
        let _t = exec.span().time("binning");
        BinScheme::fit_width_transactions(&txns)?
    };
    let od = {
        let _t = exec.span().time("build_od_graph");
        build_od_graph(&txns, &scheme, labeling, VertexLabeling::Uniform)
    };
    let mut g = od.graph;
    g.dedup_edges();
    println!(
        "{} graph: {} vertices, {} edges (deduplicated)",
        labeling.name(),
        g.vertex_count(),
        g.edge_count()
    );

    // Frozen-graph counters are process-global; the delta around the
    // mining call isolates this command's freezes and CSR lookups.
    let frozen_before = FrozenStats::snapshot();
    let patterns: Vec<SingleGraphPattern> = if mode == "neighborhood" {
        let cfg = NbhdConfig::default()
            .with_radius(radius)
            .with_support(Support::Count(support))
            .with_max_edges(max_edges);
        let out = tnet_fsg::mine_neighborhoods(&g, &cfg, &exec)
            .map_err(|e| CliError::Runtime(format!("neighborhood mining failed: {e}")))?;
        println!(
            "{} frequent neighborhood patterns (radius {radius}, support {support}, \
             {} centers)",
            out.patterns.len(),
            out.stats.centers
        );
        if verbose {
            println!(
                "support counting: {} iso tests, {} fingerprint rejects, \
                 {} embeddings extended, {} spilled",
                out.stats.iso_tests,
                out.stats.fingerprint_rejects,
                out.stats.embeddings_extended,
                out.stats.embeddings_spilled,
            );
            println!(
                "neighborhood index: {} centers, {} member slots, {} edge slots, \
                 {} peak SoA embedding bytes",
                out.stats.centers,
                out.stats.index_members,
                out.stats.index_edges,
                out.stats.soa_bytes,
            );
        }
        out.patterns
            .into_iter()
            .map(|p| SingleGraphPattern {
                pattern: p.graph,
                support: p.support,
                repetitions_seen: 1,
            })
            .collect()
    } else {
        let cfg = FsgConfig::default()
            .with_support(Support::Count(support))
            .with_max_edges(max_edges)
            .with_memory_budget(512 << 20);
        // Accumulated across repetitions (the miner closure runs on pool
        // workers, hence atomics).
        let iso_tests = AtomicUsize::new(0);
        let embeddings_extended = AtomicUsize::new(0);
        let embeddings_spilled = AtomicUsize::new(0);
        let tid_skips = AtomicUsize::new(0);
        let fingerprint_rejects = AtomicUsize::new(0);
        let bitset_intersections = AtomicUsize::new(0);
        let soa_bytes = AtomicUsize::new(0);
        let patterns =
            mine_single_graph(
                &g,
                partitions,
                reps,
                strategy,
                42,
                &exec,
                |t, e| match mine_with(t, &cfg, e) {
                    Ok(out) => {
                        iso_tests.fetch_add(out.stats.iso_tests, Ordering::Relaxed);
                        embeddings_extended
                            .fetch_add(out.stats.embeddings_extended, Ordering::Relaxed);
                        embeddings_spilled
                            .fetch_add(out.stats.embeddings_spilled, Ordering::Relaxed);
                        tid_skips.fetch_add(out.stats.tid_intersection_skips, Ordering::Relaxed);
                        fingerprint_rejects
                            .fetch_add(out.stats.fingerprint_rejects, Ordering::Relaxed);
                        bitset_intersections
                            .fetch_add(out.stats.bitset_intersections, Ordering::Relaxed);
                        soa_bytes.fetch_max(out.stats.soa_bytes, Ordering::Relaxed);
                        out.patterns
                            .into_iter()
                            .map(|p| (p.graph, p.support))
                            .collect()
                    }
                    Err(_) => Vec::new(),
                },
            );
        println!(
            "{} frequent patterns ({} partitioning, {} partitions, support {support})",
            patterns.len(),
            strategy.name(),
            partitions
        );
        if verbose {
            println!(
                "support counting: {} iso tests, {} embeddings extended, {} spilled, \
                 {} transactions skipped by TID intersection",
                iso_tests.load(Ordering::Relaxed),
                embeddings_extended.load(Ordering::Relaxed),
                embeddings_spilled.load(Ordering::Relaxed),
                tid_skips.load(Ordering::Relaxed),
            );
            println!(
                "data layout: {} fingerprint rejects, {} bitset intersections, \
                 {} peak SoA embedding bytes",
                fingerprint_rejects.load(Ordering::Relaxed),
                bitset_intersections.load(Ordering::Relaxed),
                soa_bytes.load(Ordering::Relaxed),
            );
        }
        patterns
    };
    let frozen_delta = FrozenStats::snapshot().since(&frozen_before);
    if let Some(o) = &obs {
        frozen_delta.publish(&mut |name, v| o.registry().add(name, v));
    }
    if verbose {
        println!(
            "frozen graphs: {} freezes, {} CSR bytes, {} fingerprint bytes, \
             {} adjacency binary searches",
            frozen_delta.freeze_count,
            frozen_delta.csr_bytes,
            frozen_delta.fingerprint_bytes,
            frozen_delta.adj_binary_searches,
        );
    }
    crate::commands::report_patterns(patterns, maximal, top, args.get("dot-dir"))?;
    eprintln!("[exec] {} threads: {}", exec.threads(), exec.counters());
    drop(total);
    if let Some(o) = &obs {
        o.finish(&exec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mines_synthetic() {
        let argv: Vec<String> = [
            "mine",
            "--scale",
            "0.01",
            "--partitions",
            "6",
            "--support",
            "3",
            "--max-edges",
            "3",
            "--reps",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_strategy() {
        let argv: Vec<String> = ["mine", "--scale", "0.01", "--strategy", "zz"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&Args::parse(&argv).unwrap()).is_err());
    }

    #[test]
    fn mines_neighborhood_mode() {
        let argv: Vec<String> = [
            "mine",
            "--scale",
            "0.01",
            "--mode",
            "neighborhood",
            "--radius",
            "1",
            "--support",
            "3",
            "--max-edges",
            "3",
            "--verbose",
            "true",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }

    #[test]
    fn rejects_bad_mode_and_zero_radius() {
        for bad in [
            vec!["mine", "--scale", "0.01", "--mode", "zz"],
            vec![
                "mine",
                "--scale",
                "0.01",
                "--mode",
                "neighborhood",
                "--radius",
                "0",
            ],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let e = run(&Args::parse(&argv).unwrap()).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{e}");
        }
    }
}
