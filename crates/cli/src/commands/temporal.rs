//! `tnet temporal` — the §6 temporal experiments (Table 2 summary,
//! quiet-date filtering, Figure 4 mining, the §6.1 memory failure
//! demonstration), plus the windowed mode: with `--granularity
//! {hour,day,week}` the command drives an incremental mining session
//! across tumbling/sliding windows (`--window`/`--slide`), optionally
//! runs the flow-pattern detector (`--flow true`), and feeds the union
//! of per-window patterns through the shared maximal/top-N/dot
//! pipeline.

use crate::args::{ArgError, Args};
use crate::commands::{load_transactions, obs_context, report_patterns};
use crate::error::CliError;
use tnet_core::experiments::temporal::{quiet_day_label_limit, run_fig4, run_fsg_oom, run_table2};
use tnet_fsg::{FsgConfig, Support};
use tnet_graph::canon::IsoClassMap;
use tnet_partition::single_graph::SingleGraphPattern;
use tnet_partition::{Granularity, TemporalOptions, WindowSpec};
use tnet_temporal::{attribute, detect_flows, run_windows, FlowConfig, TemporalConfig};

pub fn run(args: &Args) -> Result<(), CliError> {
    if args.get("granularity").is_some() {
        return run_windowed(args);
    }
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "quiet-fraction",
        "budget-mb",
        "oom-support",
        "support",
        "max-edges",
        "threads",
    ])?;
    let exec = args.exec()?;
    let txns = load_transactions(args)?;
    let quiet_fraction: f64 = args.get_parsed_or("quiet-fraction", 0.1)?;
    if !(0.0..=1.0).contains(&quiet_fraction) {
        return Err(ArgError("--quiet-fraction must be in [0, 1]".into()).into());
    }
    let budget_mb: usize = args.get_parsed_or("budget-mb", 256)?;
    let oom_support: usize = args.get_parsed_or("oom-support", 8)?;
    let support: f64 = args.get_parsed_or("support", 0.05)?;
    let max_edges: usize = args.get_parsed_or("max-edges", 5)?;

    let t2 = run_table2(&txns)?;
    println!("{t2}");
    let limit = quiet_day_label_limit(&txns, quiet_fraction)?;
    println!("quiet-date label limit ({quiet_fraction} quantile): {limit}");
    println!(
        "{}",
        run_fig4(
            &txns,
            limit,
            Support::Fraction(support),
            max_edges,
            Some(budget_mb << 20),
            &exec,
        )?
    );
    println!(
        "{}",
        run_fsg_oom(
            &t2.transactions,
            Support::Count(oom_support),
            budget_mb << 20,
            &exec,
        )
    );
    Ok(())
}

/// The windowed mode: multi-granularity windows driven through an
/// incremental [`tnet_fsg::MineSession`].
fn run_windowed(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "granularity",
        "window",
        "slide",
        "incremental",
        "flow",
        "support",
        "max-edges",
        "top",
        "maximal",
        "dot-dir",
        "threads",
        "verbose",
        "trace",
        "trace-json",
    ])?;
    let gran_name = args.get("granularity").unwrap();
    let granularity = Granularity::parse(gran_name)
        .ok_or_else(|| ArgError(format!("unknown granularity '{gran_name}' (hour|day|week)")))?;
    let width: usize = args.get_parsed_or("window", 7)?;
    let slide: usize = args.get_parsed_or("slide", width)?;
    let spec = WindowSpec::new(granularity, width, slide)
        .map_err(|e| ArgError(format!("bad window spec: {e}")))?;
    let incremental = args.get_or("incremental", "true") == "true";
    let flow = args.get_or("flow", "false") == "true";
    let support: usize = args.get_parsed_or("support", 5)?;
    let max_edges: usize = args.get_parsed_or("max-edges", 4)?;
    let top: usize = args.get_parsed_or("top", 15)?;
    let maximal = args.get_or("maximal", "false") == "true";
    let verbose = args.get_or("verbose", "false") == "true";

    let obs = obs_context(args);
    let mut exec = args.exec()?;
    if let Some(o) = &obs {
        exec = o.attach(&exec);
    }
    let total = exec.span().timer();
    let txns = {
        let _t = exec.span().time("ingest");
        load_transactions(args)?
    };
    let fsg = FsgConfig::default()
        .with_support(Support::Count(support))
        .with_max_edges(max_edges)
        .with_memory_budget(512 << 20);
    let cfg = TemporalConfig::new(spec)
        .with_fsg(fsg)
        .with_incremental(incremental);
    let run = {
        let _t = exec.span().time("windows");
        run_windows(
            &txns,
            &tnet_data::binning::BinScheme::paper_defaults(),
            &TemporalOptions::default(),
            &cfg,
            &exec,
        )
        .map_err(|e| match e {
            tnet_temporal::TemporalRunError::Partition(p) => {
                CliError::Runtime(format!("temporal partition: {p}"))
            }
            tnet_temporal::TemporalRunError::Mine(m) => {
                CliError::Runtime(format!("window mining: {m}"))
            }
        })?
    };
    println!(
        "{} windows over {} {} units ({} graph transactions, width {width}, slide {slide}, \
         {} mode)",
        run.windows.len(),
        run.units,
        granularity.name(),
        run.total_txns,
        if incremental { "incremental" } else { "full" },
    );
    for (i, w) in run.windows.iter().enumerate() {
        println!(
            "  window {i:>3}  units [{:>4}, {:>4})  {:>5} txns  {:>5} patterns",
            w.unit_lo,
            w.unit_hi,
            w.txn_hi - w.txn_lo,
            w.output.patterns.len()
        );
    }
    let s = &run.session;
    println!(
        "session: {} windows ({} incremental, {} full recounts)",
        s.windows, s.incremental_windows, s.full_recounts
    );
    if verbose {
        println!(
            "session detail: {} delta txns, {} delta edges, {} patterns recounted, \
             {} recount skips",
            s.delta_txns, s.delta_edges, s.patterns_recounted, s.recount_skips
        );
    }
    if let Some(o) = &obs {
        run.record_into(o.registry());
    }

    if flow {
        let fcfg = FlowConfig::default();
        let report = {
            let _t = exec.span().time("flow_detect");
            detect_flows(&txns, &spec, &fcfg)
        };
        println!(
            "flow patterns: {} path flows, {} hub surges, {} deadhead cycles, \
             {} air-freight outliers",
            report.flows.len(),
            report.surges.len(),
            report.cycles.len(),
            report.outliers.len()
        );
        for f in report.flows.iter().take(3) {
            println!(
                "  flow  window {:>3}  {} hops  bottleneck {:>9.0} lb",
                f.window_lo,
                f.path.len() - 1,
                f.value
            );
        }
        for c in report.cycles.iter().take(3) {
            println!("  cycle {} stops, windows {:?}", c.locs.len(), c.windows);
        }
        // Attribution against planted structure is only meaningful for
        // the synthetic generator (CSV inputs have no ground truth).
        if args.get("input").is_none() {
            let scale: f64 = args.get_parsed_or("scale", 0.02)?;
            let seed: u64 = args.get_parsed_or("seed", 42)?;
            let ds = tnet_data::synth::generate(
                &tnet_data::synth::SynthConfig::scaled(scale).with_seed(seed),
            );
            let attr = attribute(&report, &ds, &fcfg);
            println!(
                "planted structure surfaced at {} granularity: \
                 hubs {}/{}, cycles {}/{}, air outliers {}/{}",
                granularity.name(),
                attr.hubs_surfaced,
                attr.hubs_planted,
                attr.cycles_surfaced,
                attr.cycles_planted,
                attr.outliers_found,
                attr.outliers_planted
            );
        }
    }

    // Union of per-window patterns by iso class: support is the max
    // over windows, repetitions the number of windows it was frequent
    // in. Feeds the same maximal/top-N/dot tail as `tnet mine`.
    let mut merged: IsoClassMap<(usize, usize)> = IsoClassMap::new();
    for w in &run.windows {
        for p in &w.output.patterns {
            let e = merged.entry_or_insert_with(&p.graph, || (0, 0));
            e.0 = e.0.max(p.support);
            e.1 += 1;
        }
    }
    let patterns: Vec<SingleGraphPattern> = merged
        .iter()
        .map(|(g, &(support, windows))| SingleGraphPattern {
            pattern: g.clone(),
            support,
            repetitions_seen: windows,
        })
        .collect();
    println!("{} distinct patterns across all windows", patterns.len());
    report_patterns(patterns, maximal, top, args.get("dot-dir"))?;
    eprintln!("[exec] {} threads: {}", exec.threads(), exec.counters());
    drop(total);
    if let Some(o) = &obs {
        o.finish(&exec)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_synthetic() {
        let argv: Vec<String> = ["temporal", "--scale", "0.02", "--budget-mb", "64"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }

    #[test]
    fn windowed_mode_runs_at_each_granularity() {
        for gran in ["hour", "day", "week"] {
            let argv: Vec<String> = [
                "temporal",
                "--scale",
                "0.01",
                "--granularity",
                gran,
                "--window",
                "3",
                "--slide",
                "1",
                "--support",
                "3",
                "--max-edges",
                "2",
                "--flow",
                "true",
                "--verbose",
                "true",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            run(&Args::parse(&argv).unwrap()).unwrap();
        }
    }

    #[test]
    fn windowed_mode_rejects_bad_flags() {
        for bad in [
            vec!["temporal", "--scale", "0.01", "--granularity", "month"],
            vec![
                "temporal",
                "--scale",
                "0.01",
                "--granularity",
                "day",
                "--window",
                "0",
            ],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let e = run(&Args::parse(&argv).unwrap()).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{e}");
        }
    }
}
