//! `tnet temporal` — the §6 temporal experiments: Table 2 summary,
//! quiet-date filtering (Table 3), Figure 4 mining, and the §6.1 memory
//! failure demonstration.

use crate::args::{ArgError, Args};
use crate::commands::load_transactions;
use crate::error::CliError;
use tnet_core::experiments::temporal::{quiet_day_label_limit, run_fig4, run_fsg_oom, run_table2};
use tnet_fsg::Support;

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "quiet-fraction",
        "budget-mb",
        "oom-support",
        "support",
        "max-edges",
        "threads",
    ])?;
    let exec = args.exec()?;
    let txns = load_transactions(args)?;
    let quiet_fraction: f64 = args.get_parsed_or("quiet-fraction", 0.1)?;
    if !(0.0..=1.0).contains(&quiet_fraction) {
        return Err(ArgError("--quiet-fraction must be in [0, 1]".into()).into());
    }
    let budget_mb: usize = args.get_parsed_or("budget-mb", 256)?;
    let oom_support: usize = args.get_parsed_or("oom-support", 8)?;
    let support: f64 = args.get_parsed_or("support", 0.05)?;
    let max_edges: usize = args.get_parsed_or("max-edges", 5)?;

    let t2 = run_table2(&txns)?;
    println!("{t2}");
    let limit = quiet_day_label_limit(&txns, quiet_fraction)?;
    println!("quiet-date label limit ({quiet_fraction} quantile): {limit}");
    println!(
        "{}",
        run_fig4(
            &txns,
            limit,
            Support::Fraction(support),
            max_edges,
            Some(budget_mb << 20),
            &exec,
        )?
    );
    println!(
        "{}",
        run_fsg_oom(
            &t2.transactions,
            Support::Count(oom_support),
            budget_mb << 20,
            &exec,
        )
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_synthetic() {
        let argv: Vec<String> = ["temporal", "--scale", "0.02", "--budget-mb", "64"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }
}
