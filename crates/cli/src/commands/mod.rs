//! CLI subcommand implementations. Each takes parsed [`crate::args::Args`]
//! and writes its report to stdout, returning an error string on bad
//! input.

pub mod gen;
pub mod lanes;
pub mod mine;
pub mod report;
pub mod serve;
pub mod stats;
pub mod subdue;
pub mod temporal;
pub mod trace;

use crate::args::ArgError;
use crate::error::CliError;
use std::fs::File;
use std::io::BufReader;
use tnet_data::model::Transaction;
use tnet_exec::{Exec, MetricsRegistry, Tracer};

/// Observability context requested by `--trace` / `--trace-json PATH`:
/// owns the tracer and metrics registry for one command invocation and
/// knows how to render / export them at the end. `None` (no flag) keeps
/// every span disabled — one predictable branch per phase boundary.
pub struct ObsContext {
    tracer: Tracer,
    registry: MetricsRegistry,
    json_path: Option<String>,
}

/// Builds the context when either trace flag is present. The root span
/// carries the subcommand name.
pub fn obs_context(args: &crate::args::Args) -> Option<ObsContext> {
    let trace = args.get("trace") == Some("true");
    let json_path = args.get("trace-json").map(str::to_string);
    if !trace && json_path.is_none() {
        return None;
    }
    Some(ObsContext {
        tracer: Tracer::new(&args.command),
        registry: MetricsRegistry::new(),
        json_path,
    })
}

impl ObsContext {
    /// Returns `exec` with the root span and registry attached (children
    /// inherit both).
    pub fn attach(&self, exec: &Exec) -> Exec {
        exec.with_obs(self.tracer.root(), self.registry.clone())
    }

    /// The command's metrics registry, for publishing counters that live
    /// outside the exec pool (e.g. `graph.*` frozen-snapshot stats).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Folds the pool counters into the registry, prints the span tree
    /// and counter table to stdout, and writes the `tnet-trace/v1` JSON
    /// document when `--trace-json` was given. Call after the command's
    /// work (and its root timer) has finished.
    pub fn finish(&self, exec: &Exec) -> Result<(), CliError> {
        exec.counters().record_into(&self.registry);
        let snapshot = self.tracer.snapshot();
        println!("--- trace (wall clock per phase) ---");
        print!("{}", snapshot.render());
        println!("--- metrics ---");
        print!("{}", self.registry.render());
        if let Some(path) = &self.json_path {
            let doc = tnet_bench::obs_json::trace_to_json(&snapshot, &self.registry.snapshot());
            std::fs::write(path, doc.pretty())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            println!("trace json written to {path}");
        }
        Ok(())
    }
}

/// Loads transactions: from `--input <csv>` when present, otherwise
/// generates synthetically with `--scale` / `--seed`. A missing or
/// malformed file is a runtime failure (exit 1); a bad `--scale` is a
/// usage error (exit 2).
pub fn load_transactions(args: &crate::args::Args) -> Result<Vec<Transaction>, CliError> {
    if let Some(path) = args.get("input") {
        let file =
            File::open(path).map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
        return Ok(tnet_data::csv::read_csv(BufReader::new(file))?);
    }
    let scale: f64 = args.get_parsed_or("scale", 0.02)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    if !(0.0..=1.0).contains(&scale) || scale <= 0.0 {
        return Err(ArgError("--scale must be in (0, 1]".into()).into());
    }
    let cfg = tnet_data::synth::SynthConfig::scaled(scale).with_seed(seed);
    Ok(tnet_data::synth::generate(&cfg).transactions)
}

/// Shared tail of the mining commands (`mine`, windowed `temporal`):
/// optional maximal filtering, interestingness ranking, the top-N
/// table, and optional Graphviz export of the top patterns.
pub fn report_patterns(
    mut patterns: Vec<tnet_partition::single_graph::SingleGraphPattern>,
    maximal: bool,
    top: usize,
    dot_dir: Option<&str>,
) -> Result<(), CliError> {
    use tnet_core::patterns::{classify, interestingness};
    if maximal {
        // Keep only patterns not embedded in another reported pattern.
        let graphs: Vec<_> = patterns.iter().map(|p| p.pattern.clone()).collect();
        patterns = patterns
            .into_iter()
            .enumerate()
            .filter(|(i, p)| {
                !graphs.iter().enumerate().any(|(j, q)| {
                    j != *i
                        && q.edge_count() > p.pattern.edge_count()
                        && tnet_graph::iso::has_embedding(&p.pattern, q)
                })
            })
            .map(|(_, p)| p)
            .collect();
        println!("{} after maximal filtering", patterns.len());
    }
    patterns.sort_by(|a, b| {
        interestingness(&b.pattern, b.support)
            .total()
            .total_cmp(&interestingness(&a.pattern, a.support).total())
    });
    println!("top {top} by interestingness:");
    for p in patterns.iter().take(top) {
        println!(
            "  support {:>5}  {} edges  {:<14} score {:.0}",
            p.support,
            p.pattern.edge_count(),
            classify(&p.pattern).name(),
            interestingness(&p.pattern, p.support).total()
        );
    }
    if let Some(dir) = dot_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Runtime(format!("cannot create {dir}: {e}")))?;
        for (i, p) in patterns.iter().take(top).enumerate() {
            let name = format!("pattern_{i:03}");
            let path = std::path::Path::new(dir).join(format!("{name}.dot"));
            std::fs::write(&path, tnet_graph::dot::to_dot(&p.pattern, &name))
                .map_err(|e| CliError::Runtime(format!("cannot write {}: {e}", path.display())))?;
        }
        println!("wrote {} .dot files to {dir}", patterns.len().min(top));
    }
    Ok(())
}

/// Parses an edge-labeling name (`gw` / `th` / `td`).
pub fn parse_labeling(name: &str) -> Result<tnet_data::od_graph::EdgeLabeling, ArgError> {
    use tnet_data::od_graph::EdgeLabeling::*;
    match name {
        "gw" | "weight" => Ok(GrossWeight),
        "th" | "hours" => Ok(TransitHours),
        "td" | "distance" => Ok(TotalDistance),
        other => Err(ArgError(format!(
            "unknown labeling '{other}' (use gw, th, or td)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn synthetic_load() {
        let a = Args::parse(&argv("stats --scale 0.01 --seed 7")).unwrap();
        let txns = load_transactions(&a).unwrap();
        assert!(!txns.is_empty());
    }

    #[test]
    fn bad_scale_rejected() {
        let a = Args::parse(&argv("stats --scale 2.0")).unwrap();
        assert!(load_transactions(&a).is_err());
    }

    #[test]
    fn missing_file_rejected() {
        let a = Args::parse(&argv("stats --input /nonexistent.csv")).unwrap();
        assert!(load_transactions(&a).is_err());
    }

    #[test]
    fn labeling_names() {
        assert!(parse_labeling("gw").is_ok());
        assert!(parse_labeling("hours").is_ok());
        assert!(parse_labeling("xx").is_err());
    }
}
