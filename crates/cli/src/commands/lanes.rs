//! `tnet lanes` — dynamic-graph mining (§9 extensions): periodic lanes
//! and time-respecting repeated routes.

use crate::args::Args;
use crate::commands::load_transactions;
use crate::error::CliError;
use tnet_core::experiments::extensions::{run_paths, run_periodic};
use tnet_dynamic::paths::PathConfig;

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "max-sep",
        "max-len",
        "min-occurrences",
    ])?;
    let txns = load_transactions(args)?;
    println!("{}", run_periodic(&txns));
    let cfg = PathConfig {
        min_sep: 0,
        max_sep: args.get_parsed_or("max-sep", 3)?,
        max_len: args.get_parsed_or("max-len", 2)?,
        min_occurrences: args.get_parsed_or("min-occurrences", 3)?,
        max_instances: 1_000_000,
    };
    println!("{}", run_paths(&txns, &cfg));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_synthetic() {
        let argv: Vec<String> = ["lanes", "--scale", "0.02"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }
}
