//! `tnet report` — the full E1–E15 reproduction report plus the E17–E21
//! extensions, run under supervision: every section is panic-isolated,
//! optionally deadline- and budget-bounded, and retried once at reduced
//! effort on a retryable failure. The command succeeds (exit 0) as long
//! as at least one section completes.

use crate::args::{ArgError, Args};
use crate::commands::{load_transactions, obs_context};
use crate::error::CliError;
use std::time::Duration;
use tnet_core::experiments::extensions::{run_events, run_paths, run_periodic};
use tnet_core::pipeline::Pipeline;
use tnet_core::SupervisorConfig;
use tnet_dynamic::paths::PathConfig;

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "extensions",
        "threads",
        "deadline-secs",
        "section-budget",
        "trace",
        "trace-json",
    ])?;
    let obs = obs_context(args);
    let mut exec = args.exec()?;
    if let Some(o) = &obs {
        exec = o.attach(&exec);
    }
    let scale: f64 = args.get_parsed_or("scale", 0.05)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let with_extensions = args.get_or("extensions", "true") == "true";
    let deadline_secs: f64 = args.get_parsed_or("deadline-secs", 0.0)?;
    // A week covers every sane supervision budget; anything past it is a
    // typo (and huge values would overflow `Duration::from_secs_f64`,
    // which panics rather than erroring).
    const MAX_DEADLINE_SECS: f64 = 7.0 * 24.0 * 3600.0;
    if deadline_secs < 0.0 || !deadline_secs.is_finite() {
        return Err(ArgError("--deadline-secs must be a non-negative number".into()).into());
    }
    if deadline_secs > MAX_DEADLINE_SECS {
        return Err(ArgError(format!(
            "--deadline-secs {deadline_secs} is absurd (max {MAX_DEADLINE_SECS}, one week)"
        ))
        .into());
    }
    let budget_mb: usize = args.get_parsed_or("section-budget", 0)?;
    // `budget_mb << 20` would silently wrap on absurd values in release
    // builds, turning a huge requested budget into a tiny one.
    let budget_bytes = budget_mb
        .checked_mul(1 << 20)
        .ok_or_else(|| ArgError(format!("--section-budget {budget_mb} MB overflows")))?;
    let cfg = SupervisorConfig {
        section_deadline: (deadline_secs > 0.0).then_some(Duration::from_secs_f64(deadline_secs)),
        section_budget: (budget_mb > 0).then_some(budget_bytes),
    };

    let total = exec.span().timer();
    let pipeline = if args.get("input").is_some() {
        let txns = {
            let _t = exec.span().time("ingest");
            load_transactions(args)?
        };
        Pipeline::from_transactions(txns)?
    } else {
        let _t = exec.span().time("ingest");
        Pipeline::synthetic(scale, seed)
    };
    let outcome = pipeline.full_report_supervised(scale, seed, &exec, &cfg);
    println!("{}", outcome.text);
    // Observability only — stderr, so the report text stays byte-stable.
    eprintln!("[exec] {} threads: {}", exec.threads(), exec.counters());
    if outcome.ok + outcome.degraded == 0 {
        return Err(CliError::Runtime(format!(
            "all {} report sections failed",
            outcome.failed
        )));
    }

    if with_extensions {
        let _t = exec.span().time("extensions");
        let txns = pipeline.transactions();
        println!("{}", run_periodic(txns));
        println!(
            "{}",
            run_paths(
                txns,
                &PathConfig {
                    min_sep: 0,
                    max_sep: 3,
                    max_len: 2,
                    min_occurrences: 3,
                    max_instances: 1_000_000,
                },
            )
        );
        println!("{}", run_events(txns));
    }
    drop(total);
    if let Some(o) = &obs {
        o.finish(&exec)?;
    }
    Ok(())
}
