//! `tnet report` — the full E1–E15 reproduction report plus the E17–E21
//! extensions.

use crate::args::{ArgError, Args};
use crate::commands::load_transactions;
use tnet_core::experiments::extensions::{run_events, run_paths, run_periodic};
use tnet_core::pipeline::Pipeline;
use tnet_dynamic::paths::PathConfig;

pub fn run(args: &Args) -> Result<(), ArgError> {
    args.ensure_known(&["input", "scale", "seed", "extensions", "threads"])?;
    let exec = args.exec()?;
    let scale: f64 = args.get_parsed_or("scale", 0.05)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let with_extensions = args.get_or("extensions", "true") == "true";

    let pipeline = if args.get("input").is_some() {
        Pipeline::from_transactions(load_transactions(args)?)
    } else {
        Pipeline::synthetic(scale, seed)
    };
    println!("{}", pipeline.full_report_with(scale, seed, &exec));
    // Observability only — stderr, so the report text stays byte-stable.
    eprintln!("[exec] {} threads: {}", exec.threads(), exec.counters());

    if with_extensions {
        let txns = pipeline.transactions();
        println!("{}", run_periodic(txns));
        println!(
            "{}",
            run_paths(
                txns,
                &PathConfig {
                    min_sep: 0,
                    max_sep: 3,
                    max_len: 2,
                    min_occurrences: 3,
                    max_instances: 1_000_000,
                },
            )
        );
        println!("{}", run_events(txns));
    }
    Ok(())
}
