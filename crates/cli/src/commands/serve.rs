//! `tnet serve` — the long-lived pattern-mining daemon.
//!
//! Binds a TCP port (ephemeral by default), optionally seeds generation
//! 0 from `--input`/`--scale`, then serves newline-delimited JSON
//! queries until a `shutdown` request arrives or stdin reaches EOF
//! (disable the latter with `--shutdown-on-stdin-eof false`). The
//! bound port is printed on stdout and, with `--port-file PATH`, also
//! written to a file so scripts (and ci.sh) can find an ephemeral port
//! without parsing output.

use crate::args::Args;
use crate::commands::load_transactions;
use crate::error::CliError;
use std::time::Duration;
use tnet_serve::{DurabilityConfig, FsyncPolicy, ServeConfig, WriterConfig};

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&[
        "input",
        "scale",
        "seed",
        "port",
        "port-file",
        "publish-interval-ms",
        "batch",
        "cache",
        "threads",
        "shutdown-on-stdin-eof",
        "trace",
        "trace-json",
        "data-dir",
        "fsync",
        "snapshot-every",
    ])?;
    // `--labeling` is intentionally absent: the daemon serves all three
    // labelings; each query picks its own.
    let port: u16 = args.get_parsed_or("port", 0)?;
    let publish_interval_ms: u64 = args.get_parsed_or("publish-interval-ms", 200)?;
    let batch: usize = args.get_parsed_or("batch", 4096)?;
    let cache: usize = args.get_parsed_or("cache", 256)?;
    let threads = args.exec()?.threads();
    let stdin_eof = args.get_or("shutdown-on-stdin-eof", "true") == "true";
    let trace = args.get("trace") == Some("true") || args.get("trace-json").is_some();

    // Durability: `--data-dir PATH` turns on the WAL + snapshot layer.
    // `--fsync` and `--snapshot-every` tune it and require a data dir,
    // since neither means anything for an in-memory daemon.
    let durability = match args.get("data-dir") {
        Some(dir) => {
            let fsync_raw = args.get_or("fsync", "always");
            let fsync = FsyncPolicy::parse(fsync_raw).ok_or_else(|| {
                CliError::Usage(format!(
                    "--fsync: '{fsync_raw}' is not one of always, never, interval, interval:MS"
                ))
            })?;
            Some(DurabilityConfig {
                data_dir: dir.into(),
                fsync,
                snapshot_every: args.get_parsed_or("snapshot-every", 10_000u64)?,
            })
        }
        None => {
            for flag in ["fsync", "snapshot-every"] {
                if args.get(flag).is_some() {
                    return Err(CliError::Usage(format!(
                        "--{flag} requires --data-dir (no durability without a data directory)"
                    )));
                }
            }
            None
        }
    };

    // Seed generation 0 only when the user asked for data; a bare
    // `tnet serve` starts empty and fills via ingest.
    let initial = if args.get("input").is_some() || args.get("scale").is_some() {
        load_transactions(args)?
    } else {
        Vec::new()
    };

    let cfg = ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        threads,
        cache_capacity: cache,
        writer: WriterConfig {
            publish_interval: Duration::from_millis(publish_interval_ms.max(1)),
            batch: batch.max(1),
        },
        initial,
        trace,
        durability,
    };
    let mut handle = tnet_serve::start(cfg)?;
    println!("serving on {}", handle.addr());
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{}\n", handle.addr().port()))
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }

    if stdin_eof {
        // A dedicated thread turns stdin EOF into a shutdown request,
        // so `daemon < /dev/null` and supervisors that close the pipe
        // both stop the server cleanly.
        let shutdown = handle.shutdown_trigger();
        std::thread::Builder::new()
            .name("tnet-serve-stdin".into())
            .spawn(move || {
                use std::io::Read;
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin();
                while let Ok(n) = stdin.read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
                shutdown.cancel();
            })
            .map_err(|e| CliError::Runtime(format!("cannot spawn stdin watcher: {e}")))?;
    }

    handle.wait();
    handle.join()?;

    if trace {
        if let Some(snapshot) = handle.trace_snapshot() {
            println!("--- trace (wall clock per phase) ---");
            print!("{}", snapshot.render());
            println!("--- metrics ---");
            print!("{}", handle.registry().render());
            if let Some(path) = args.get("trace-json") {
                let doc =
                    tnet_bench::obs_json::trace_to_json(&snapshot, &handle.registry().snapshot());
                std::fs::write(path, doc.pretty())
                    .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
                println!("trace json written to {path}");
            }
        }
    }
    println!(
        "shutdown complete ({} queries served)",
        handle.registry().get("serve.queries")
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// Starts `tnet serve` on an in-process thread, talks to it over
    /// TCP, and shuts it down via the wire protocol — the full CLI
    /// lifecycle without a subprocess.
    #[test]
    fn serve_end_to_end_via_cli() {
        let port_file = std::env::temp_dir().join("tnet_test_serve_port.txt");
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_string_lossy().into_owned();
        let cli = std::thread::spawn(move || {
            run(&Args::parse(&argv(&format!(
                "serve --scale 0.01 --seed 7 --cache 64 --publish-interval-ms 50 \
                 --shutdown-on-stdin-eof false --port-file {pf}"
            )))
            .unwrap())
        });
        // Wait for the port file, then connect.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let port: u16 = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse() {
                    break p;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            let mut s = stream.try_clone().unwrap();
            writeln!(s, "{line}").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply
        };
        assert!(send(r#"{"op":"ping"}"#).contains("\"ok\":true"));
        assert!(send(r#"{"op":"stats"}"#).contains("\"report\":"));
        assert!(send(r#"{"op":"nonsense"}"#).contains("\"kind\":\"protocol\""));
        assert!(send(r#"{"op":"shutdown"}"#).contains("\"ok\":true"));
        cli.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn rejects_unknown_flags() {
        let e = run(&Args::parse(&argv("serve --frobnicate yes")).unwrap()).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
    }

    #[test]
    fn rejects_bad_port() {
        let e = run(&Args::parse(&argv("serve --port 99999999")).unwrap()).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
    }

    #[test]
    fn durability_flags_require_data_dir() {
        for cmd in ["serve --fsync always", "serve --snapshot-every 100"] {
            let e = run(&Args::parse(&argv(cmd)).unwrap()).unwrap_err();
            assert!(matches!(e, CliError::Usage(_)), "{cmd}: {e}");
            assert!(e.to_string().contains("--data-dir"), "{cmd}: {e}");
        }
    }

    #[test]
    fn rejects_unknown_fsync_policy() {
        let e = run(&Args::parse(&argv("serve --data-dir /tmp/x --fsync sometimes")).unwrap())
            .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
        assert!(e.to_string().contains("sometimes"), "{e}");
    }

    /// A corrupt data dir must refuse startup with a runtime error
    /// (exit 1) before the daemon ever binds a socket.
    #[test]
    fn corrupt_data_dir_refuses_startup() {
        let dir = std::env::temp_dir().join(format!("tnet_cli_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A WAL whose first record has a valid-looking header but a
        // garbage checksum: unambiguous mid-log corruption.
        std::fs::write(
            dir.join("wal.log"),
            [8u8, 0, 0, 0, 0xEF, 0xBE, 0xAD, 0xDE, 1, 2, 3, 4, 5, 6, 7, 8],
        )
        .unwrap();
        let d = dir.to_string_lossy().into_owned();
        let e = run(&Args::parse(&argv(&format!(
            "serve --data-dir {d} --shutdown-on-stdin-eof false"
        )))
        .unwrap())
        .unwrap_err();
        assert!(matches!(e, CliError::Runtime(_)), "{e}");
        assert!(e.to_string().contains("corrupt"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
