//! `tnet trace` — summarize a `tnet-trace/v1` JSON document written by
//! `--trace-json`.
//!
//! The document may have been hand-edited, truncated by a crashed run,
//! or produced by a different tool version, so nothing here is trusted:
//! parse failures, schema violations, and missing or mistyped fields
//! (`nanos`, `count`, `label`, `children`, `metrics`) all surface as
//! runtime errors under the one-line-stderr / exit-1 contract — never a
//! panic.

use crate::args::Args;
use crate::error::CliError;
use tnet_bench::json::Json;
use tnet_exec::SpanNode;

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["input"])?;
    let path = args.get("input").ok_or_else(|| {
        CliError::Usage("tnet trace requires --input PATH (a --trace-json document)".into())
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    let summary = summarize(&text).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    print!("{summary}");
    Ok(())
}

/// Renders the trace summary, or a one-line description of what is
/// malformed. Split from [`run`] so tests can exercise it directly.
pub fn summarize(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed trace JSON: {e}"))?;
    tnet_bench::obs_json::validate_trace(&doc)
        .map_err(|e| format!("invalid tnet-trace/v1 document: {e}"))?;
    // Validation has vetted the shapes, but extraction stays typed
    // anyway: the summary must hold the no-panic contract even if the
    // validator and this walk ever disagree on a field.
    let root = span_from_json(doc.get("root").ok_or("missing 'root' span")?, "root", 0)?;
    let metrics = match doc.get("metrics") {
        Some(Json::Obj(m)) => m,
        _ => return Err("missing 'metrics' object".into()),
    };
    let mut out = String::new();
    out.push_str("--- trace (wall clock per phase) ---\n");
    out.push_str(&root.render());
    out.push_str("--- metrics ---\n");
    let width = metrics.keys().map(|k| k.len()).max().unwrap_or(0);
    for (k, v) in metrics {
        let n = v
            .as_f64()
            .ok_or_else(|| format!("metric '{k}' is not a number"))?;
        out.push_str(&format!("{k:<width$}  {n}\n"));
    }
    let spans = count_spans(&root);
    out.push_str(&format!(
        "{} spans, {} counters, total wall {:.3} ms\n",
        spans,
        metrics.len(),
        root.nanos as f64 / 1e6
    ));
    Ok(out)
}

/// Depth-capped typed reconstruction of the span tree. The cap matches
/// the JSON parser's own nesting limit; a document that deep is not a
/// real trace.
fn span_from_json(node: &Json, path: &str, depth: usize) -> Result<SpanNode, String> {
    if depth > 64 {
        return Err(format!("{path}: span tree deeper than 64 levels"));
    }
    let label = match node.get("label") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err(format!("{path}: missing 'label' string")),
    };
    let field = |key: &str| -> Result<u64, String> {
        let n = node
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: '{key}' is not a number"))?;
        if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
            return Err(format!("{path}: '{key}' is not a non-negative integer"));
        }
        Ok(n as u64)
    };
    let nanos = field("nanos")?;
    let count = field("count")?;
    let children = match node.get("children") {
        Some(Json::Arr(arr)) => arr
            .iter()
            .enumerate()
            .map(|(i, c)| span_from_json(c, &format!("{path}.children[{i}]"), depth + 1))
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(format!("{path}: missing 'children' array")),
    };
    Ok(SpanNode {
        label,
        nanos,
        count,
        children,
    })
}

fn count_spans(n: &SpanNode) -> usize {
    1 + n.children.iter().map(count_spans).sum::<usize>()
}
