//! `tnet stats` — the §3 dataset description for a CSV or synthetic
//! dataset.

use crate::args::Args;
use crate::commands::load_transactions;
use crate::error::CliError;
use tnet_data::stats::dataset_stats;

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["input", "scale", "seed"])?;
    let txns = load_transactions(args)?;
    print!("{}", dataset_stats(&txns));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_synthetic() {
        let argv: Vec<String> = ["stats", "--scale", "0.01"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&Args::parse(&argv).unwrap()).unwrap();
    }
}
