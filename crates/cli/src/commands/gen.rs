//! `tnet gen` — generate a synthetic dataset and write it as CSV.

use crate::args::{ArgError, Args};
use crate::error::CliError;
use std::fs::File;
use std::io::BufWriter;
use tnet_data::csv::write_csv;
use tnet_data::synth::{generate, SynthConfig};

pub fn run(args: &Args) -> Result<(), CliError> {
    args.ensure_known(&["scale", "seed", "out"])?;
    let scale: f64 = args.get_parsed_or("scale", 0.02)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    if scale <= 0.0 || scale > 1.0 {
        return Err(ArgError("--scale must be in (0, 1]".into()).into());
    }
    let out = args.get_or("out", "tnet-data.csv").to_string();
    let cfg = SynthConfig::scaled(scale).with_seed(seed);
    let ds = generate(&cfg);
    let file =
        File::create(&out).map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
    write_csv(&ds.transactions, BufWriter::new(file))
        .map_err(|e| CliError::Runtime(format!("write failed: {e}")))?;
    println!(
        "wrote {} transactions to {out} (scale {scale}, seed {seed})",
        ds.transactions.len()
    );
    println!(
        "planted structures: {} hub lanes, {} chain lanes",
        ds.planted_hub_pairs.len(),
        ds.planted_chain_pairs.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv_roundtrippable() {
        let dir = std::env::temp_dir().join("tnet_cli_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let argv: Vec<String> = ["gen", "--scale", "0.01", "--out", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        run(&args).unwrap();
        let back =
            tnet_data::csv::read_csv(std::io::BufReader::new(std::fs::File::open(&path).unwrap()))
                .unwrap();
        assert!(!back.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_unknown_flag() {
        let argv: Vec<String> = ["gen", "--bogus", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        assert!(run(&args).is_err());
    }
}
