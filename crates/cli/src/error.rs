//! The CLI's failure taxonomy: every error is either a usage mistake
//! (exit 2) or a runtime failure (exit 1), printed as a single stderr
//! line. Scripts can branch on the exit code without parsing text.

use crate::args::ArgError;
use std::fmt;
use tnet_core::PipelineError;
use tnet_data::binning::BinFitError;
use tnet_data::csv::CsvError;
use tnet_subdue::SubdueError;

/// A CLI failure with a stable exit code.
#[derive(Debug)]
pub enum CliError {
    /// The invocation itself was wrong (unknown flag, unparseable
    /// value, out-of-range argument). Exit code 2.
    Usage(String),
    /// The run started and failed (missing file, malformed CSV,
    /// degenerate data, a miner abort). Exit code 1.
    Runtime(String),
}

impl CliError {
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

// Layer errors route through PipelineError so their rendered message
// carries the same taxonomy prefix everywhere.
impl From<CsvError> for CliError {
    fn from(e: CsvError) -> Self {
        PipelineError::from(e).into()
    }
}

impl From<BinFitError> for CliError {
    fn from(e: BinFitError) -> Self {
        PipelineError::from(e).into()
    }
}

impl From<SubdueError> for CliError {
    fn from(e: SubdueError) -> Self {
        PipelineError::from(e).into()
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::from(e).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(CliError::Runtime("mining failed".into()).exit_code(), 1);
    }

    #[test]
    fn arg_errors_are_usage() {
        let e: CliError = ArgError("--scale: cannot parse 'x'".into()).into();
        assert!(matches!(e, CliError::Usage(_)));
        assert_eq!(e.to_string(), "--scale: cannot parse 'x'");
    }

    #[test]
    fn pipeline_errors_are_runtime() {
        let e: CliError = PipelineError::Cancelled.into();
        assert!(matches!(e, CliError::Runtime(_)));
        let e: CliError = CsvError {
            line: 3,
            message: "bad field".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("line 3"), "{e}");
    }
}
