//! Window-to-window transaction deltas over a shared frozen [`TxnSet`].
//!
//! Consecutive temporal windows over one frozen transaction universe are
//! contiguous index ranges, so the change between them is two ranges:
//! transactions **retired** (left the window) and **added** (entered
//! it). The incremental mining session consumes this instead of
//! re-freezing per window — the PR-6 deleted-edge overlay generalized
//! from one graph to a transaction universe.

use crate::frozen::TxnSet;

/// The difference between consecutive windows `[prev_lo, prev_hi)` and
/// `[lo, hi)` of one [`TxnSet`], with edge volumes for churn decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphDelta {
    /// Previous window.
    pub prev_lo: usize,
    pub prev_hi: usize,
    /// Current window.
    pub lo: usize,
    pub hi: usize,
    /// Transactions retired from the front: `[prev_lo, min(lo, prev_hi))`.
    pub retired_txns: usize,
    /// Transactions added at the back: `[max(prev_hi, lo), hi)`.
    pub added_txns: usize,
    /// Packed edges in the retired range.
    pub retired_edges: usize,
    /// Packed edges in the added range.
    pub added_edges: usize,
}

impl GraphDelta {
    /// Computes the delta between a forward-sliding pair of windows.
    /// Windows must move forward (`prev_lo <= lo` and `prev_hi <= hi`),
    /// which is how a window driver emits them.
    pub fn between(
        set: &TxnSet,
        (prev_lo, prev_hi): (usize, usize),
        (lo, hi): (usize, usize),
    ) -> GraphDelta {
        assert!(prev_lo <= prev_hi && lo <= hi, "malformed window ranges");
        assert!(prev_lo <= lo && prev_hi <= hi, "windows must move forward");
        let retired_hi = lo.min(prev_hi);
        let added_lo = prev_hi.max(lo);
        GraphDelta {
            prev_lo,
            prev_hi,
            lo,
            hi,
            retired_txns: retired_hi - prev_lo,
            added_txns: hi - added_lo,
            retired_edges: set.edge_count_in(prev_lo, retired_hi),
            added_edges: set.edge_count_in(added_lo, hi),
        }
    }

    /// The shared transaction range `[overlap_lo, overlap_hi)`; empty
    /// when the windows are disjoint (tumbling).
    pub fn overlap(&self) -> (usize, usize) {
        let lo = self.lo.max(self.prev_lo);
        let hi = self.hi.min(self.prev_hi);
        (lo, hi.max(lo))
    }

    /// Changed transactions as a fraction of the current window size
    /// (`retired + added` over `hi - lo`; 0 for an empty window). The
    /// session's churn threshold compares against this.
    pub fn churn(&self) -> f64 {
        let size = self.hi - self.lo;
        if size == 0 {
            return 0.0;
        }
        (self.retired_txns + self.added_txns) as f64 / size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ELabel, Graph, VLabel};

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let vs: Vec<_> = (0..=n).map(|i| g.add_vertex(VLabel(i as u32))).collect();
        for i in 0..n {
            g.add_edge(vs[i], vs[i + 1], ELabel(0));
        }
        g
    }

    #[test]
    fn sliding_delta_splits_ranges() {
        // 6 transactions with 1..=6 edges.
        let txns: Vec<Graph> = (1..=6).map(chain).collect();
        let set = TxnSet::freeze(&txns);
        let d = GraphDelta::between(&set, (0, 4), (2, 6));
        assert_eq!(d.retired_txns, 2);
        assert_eq!(d.added_txns, 2);
        assert_eq!(d.retired_edges, 1 + 2);
        assert_eq!(d.added_edges, 5 + 6);
        assert_eq!(d.overlap(), (2, 4));
        assert!((d.churn() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tumbling_delta_has_no_overlap() {
        let txns: Vec<Graph> = (1..=6).map(chain).collect();
        let set = TxnSet::freeze(&txns);
        let d = GraphDelta::between(&set, (0, 3), (3, 6));
        assert_eq!(d.retired_txns, 3);
        assert_eq!(d.added_txns, 3);
        let (olo, ohi) = d.overlap();
        assert_eq!(olo, ohi);
        assert!((d.churn() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slice_views_match_direct_views() {
        use crate::view::{GraphView, TxnSource};
        let txns: Vec<Graph> = (1..=5).map(chain).collect();
        let set = TxnSet::freeze(&txns);
        let slice = set.slice(1, 4);
        assert_eq!(slice.txn_count(), 3);
        for i in 0..3 {
            let a = slice.txn(i);
            let b = set.get(i + 1);
            assert_eq!(a.edge_count(), b.edge_count());
            assert_eq!(a.vertex_count(), b.vertex_count());
        }
        assert_eq!(set.edge_count_in(1, 4), 2 + 3 + 4);
    }
}
