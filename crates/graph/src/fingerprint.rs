//! Per-vertex structural fingerprints: a 64-bit necessary-condition
//! filter checked before VF2.
//!
//! Every vertex packs, into one `u64`:
//!
//! * bits 0–15 — vertex-label bloom (one bit, `hash(vlabel) & 15`);
//! * bits 16–31 — out-edge-label bloom (one bit per distinct out label);
//! * bits 32–47 — in-edge-label bloom;
//! * bits 48–55 — distinct out-neighbor count in unary, saturated at 8
//!   (`(1 << min(n, 8)) - 1`);
//! * bits 56–63 — distinct in-neighbor count in unary, saturated at 8.
//!
//! If pattern vertex `p` maps onto target vertex `t` under any subgraph
//! monomorphism, then `t` has the same vertex label, a superset of `p`'s
//! incident edge labels in each direction, and — because the vertex
//! mapping is injective — at least as many distinct neighbors in each
//! direction. (Raw degrees are *not* monotone here: the matcher checks
//! edge existence, so parallel pattern edges may collapse onto one target
//! edge.) Every field of `fp(p)` is therefore a bitwise subset of the
//! matching field of `fp(t)`. Labels bloom into 16-bit fields and
//! neighbor counts are unary, which makes *all five* subset checks one
//! expression: `fp(p) & !fp(t) == 0`. The converse does not hold (blooms
//! collide, counts saturate), so the filter only ever skips work, never
//! answers "yes" — rejections are sound, acceptances still run VF2.
//!
//! Fingerprints are a pure function of the [`GraphView`] surface (labels,
//! degrees, incident labels), so the arena and frozen representations of
//! the same graph produce identical values — filter decisions, counters,
//! and therefore miner output stay byte-identical across representations.
//! The frozen forms precompute the array at freeze time and override
//! [`GraphView::vertex_fp`] with an array load; the arena computes on
//! demand.

use crate::graph::VertexId;
use crate::view::GraphView;

/// Bloom-bit index (0–15) for a label value. Multiplicative hash so
/// consecutive label ids (the common case after binning) spread across
/// the field instead of clustering.
#[inline]
pub fn label_bit(label: u32) -> u32 {
    (((label as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) & 15) as u32
}

/// Computes the fingerprint of `v` from any view. See the module docs
/// for the layout.
pub fn vertex_fingerprint<G: GraphView + ?Sized>(g: &G, v: VertexId) -> u64 {
    let mut fp = 1u64 << label_bit(g.vertex_label(v).0);
    let mut out_nbrs: Vec<u32> = Vec::new();
    for e in g.out_edges(v) {
        let (_, d, l) = g.edge(e);
        out_nbrs.push(d.0);
        fp |= 1u64 << (16 + label_bit(l.0));
    }
    let mut in_nbrs: Vec<u32> = Vec::new();
    for e in g.in_edges(v) {
        let (s, _, l) = g.edge(e);
        in_nbrs.push(s.0);
        fp |= 1u64 << (32 + label_bit(l.0));
    }
    out_nbrs.sort_unstable();
    out_nbrs.dedup();
    in_nbrs.sort_unstable();
    in_nbrs.dedup();
    fp | ((1u64 << out_nbrs.len().min(8)) - 1) << 48 | ((1u64 << in_nbrs.len().min(8)) - 1) << 56
}

/// Fingerprints of every vertex of `g`, indexed by dense vertex id (the
/// miners' pattern graphs are append-only, so ids are dense).
pub fn graph_fingerprints<G: GraphView + ?Sized>(g: &G) -> Vec<u64> {
    g.vertices().map(|v| vertex_fingerprint(g, v)).collect()
}

/// True if `pattern_fp` could map onto `target_fp`: every packed field
/// of the pattern fingerprint is a bitwise subset of the target's.
#[inline]
pub fn fp_subsumes(pattern_fp: u64, target_fp: u64) -> bool {
    pattern_fp & !target_fp == 0
}

/// Necessary condition for `pattern ⊑ target`: every pattern vertex has
/// at least one fingerprint-compatible target vertex. `false` proves no
/// embedding exists; `true` proves nothing. `O(|Vp| · |Vt|)` with early
/// exit per pattern vertex — cheap relative to a VF2 search, and the
/// caller amortizes `pattern_fps` across all transactions.
pub fn may_embed<G: GraphView + ?Sized>(pattern_fps: &[u64], target: &G) -> bool {
    pattern_fps.iter().all(|&pfp| {
        target
            .vertices()
            .any(|tv| fp_subsumes(pfp, target.vertex_fp(tv)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_transactions, shapes, RandomGraphConfig};
    use crate::graph::{ELabel, Graph, VLabel};
    use crate::iso::has_embedding;

    #[test]
    fn fingerprint_fields_reflect_structure() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(3));
        let b = g.add_vertex(VLabel(3));
        g.add_edge(a, b, ELabel(7));
        let fa = vertex_fingerprint(&g, a);
        let fb = vertex_fingerprint(&g, b);
        // Same vertex label → same low field.
        assert_eq!(fa & 0xFFFF, fb & 0xFFFF);
        // a has one out edge, no in edges; b mirrors it.
        assert_eq!((fa >> 48) & 0xFF, 1, "out-degree 1 in unary");
        assert_eq!(fa >> 56, 0, "no in edges");
        assert_eq!((fb >> 48) & 0xFF, 0);
        assert_eq!(fb >> 56, 1);
        // The edge label blooms into opposite direction fields.
        assert_ne!(fa & 0xFFFF_0000, 0);
        assert_eq!(fa & 0xFFFF_0000_0000, 0);
        assert_ne!(fb & 0xFFFF_0000_0000, 0);
    }

    #[test]
    fn degree_saturates_at_eight() {
        let g = shapes::hub_and_spoke(12, 0, 1);
        let hub = g.vertices().next().unwrap();
        let fp = vertex_fingerprint(&g, hub);
        assert_eq!((fp >> 48) & 0xFF, 0xFF, "12 out edges saturate to 8");
    }

    #[test]
    fn subsumption_is_reflexive_and_degree_monotone() {
        let small = shapes::hub_and_spoke(2, 0, 1);
        let big = shapes::hub_and_spoke(5, 0, 1);
        let hub_s = vertex_fingerprint(&small, small.vertices().next().unwrap());
        let hub_b = vertex_fingerprint(&big, big.vertices().next().unwrap());
        assert!(fp_subsumes(hub_s, hub_s));
        assert!(fp_subsumes(hub_s, hub_b), "2-hub maps onto 5-hub");
        assert!(!fp_subsumes(hub_b, hub_s), "5-hub cannot map onto 2-hub");
    }

    /// Soundness on random graphs: whenever an embedding exists, the
    /// fingerprint filter must pass (a reject with an existing embedding
    /// would silently drop frequent patterns).
    #[test]
    fn never_rejects_an_existing_embedding() {
        let cfg = RandomGraphConfig {
            vertices: 12,
            edges: 20,
            vertex_labels: 3,
            edge_labels: 3,
            self_loops: true,
        };
        let targets = random_transactions(8, &cfg, 11);
        // Patterns carved out of the targets embed by construction; the
        // cross product (pattern of target i vs target j) adds genuine
        // maybe-cases on top.
        let patterns: Vec<Graph> = targets
            .iter()
            .flat_map(|t| {
                let edges: Vec<_> = t.edges().collect();
                [&edges[..2], &edges[..4]]
                    .into_iter()
                    .map(|ids| crate::view::edge_subgraph(t, ids).0)
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut embedded = 0;
        for p in &patterns {
            let pfps = graph_fingerprints(p);
            for t in &targets {
                if has_embedding(p, t) {
                    embedded += 1;
                    assert!(may_embed(&pfps, t), "filter rejected a real embedding");
                }
            }
        }
        assert!(
            embedded >= targets.len(),
            "workload too sparse to test anything"
        );
    }

    /// Representation parity: arena and frozen fingerprints are
    /// identical, which is what keeps filter decisions byte-identical
    /// across the frozen-vs-arena differential.
    #[test]
    fn frozen_matches_arena() {
        let cfg = RandomGraphConfig {
            vertices: 15,
            edges: 30,
            vertex_labels: 4,
            edge_labels: 3,
            self_loops: true,
        };
        for g in &random_transactions(5, &cfg, 91) {
            let fg = g.freeze();
            for v in g.vertices() {
                assert_eq!(g.vertex_fp(v), GraphView::vertex_fp(&fg, v));
            }
        }
    }
}
