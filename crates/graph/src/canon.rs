//! Isomorphism classes: invariant hashing and iso-keyed collections.
//!
//! The miners repeatedly need "have I seen this pattern (up to
//! isomorphism) before?" — FSG for candidate deduplication and
//! downward-closure checks, SUBDUE for grouping instance extensions.
//!
//! Rather than a canonical code (whose minimum-DFS-code construction is
//! easy to get subtly wrong for directed multigraphs), we use the classic
//! two-tier scheme:
//!
//! 1. a **Weisfeiler–Leman invariant hash** — identical for isomorphic
//!    graphs by construction, and a strong discriminator in practice;
//! 2. an **exact VF2 isomorphism check** among the (rare) hash-bucket
//!    collisions.
//!
//! This gives provable correctness with near-hash performance: bucket
//! sizes stay at 1–2 for the small patterns mining produces.

use crate::graph::{Graph, VertexId};
use crate::hash::{FxHashMap, FxHasher};
use crate::iso::are_isomorphic;
use crate::view::GraphView;
use std::hash::Hasher;

fn mix(parts: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

fn mix_sorted(parts: &mut [u64]) -> u64 {
    parts.sort_unstable();
    mix(parts)
}

/// Number of WL refinement rounds. Three rounds separate everything the
/// miners generate; collisions beyond that are caught by the exact check.
const WL_ROUNDS: usize = 3;

/// An isomorphism-invariant 64-bit hash of a labeled directed multigraph:
/// isomorphic graphs always hash equal; unequal hashes prove
/// non-isomorphism.
///
/// The result is memoized on the graph (invalidated by mutation, carried
/// by `clone()`), so repeated iso-class lookups on the same pattern — the
/// miners' closure checks and visited-set probes — compute the WL
/// refinement once.
pub fn invariant_hash(g: &Graph) -> u64 {
    *g.hash_cache.get_or_init(|| wl_hash_view(g))
}

/// The WL invariant hash over any [`GraphView`] — the single
/// implementation behind both [`invariant_hash`] (builder, memoized) and
/// `FrozenGraph::invariant_hash` (snapshot, memoized). The computation
/// depends only on labels and structure, never on id numbering, so a
/// builder and its frozen snapshot hash identically.
pub(crate) fn wl_hash_view<G: GraphView>(g: &G) -> u64 {
    if g.vertex_count() == 0 {
        return mix(&[0x9e37_79b9]);
    }
    let verts: Vec<VertexId> = g.vertices().collect();
    // Arena-indexed color tables and reused neighbour buffers: the miners
    // hash tiny dense patterns millions of times, and flat vectors beat
    // per-round hash maps by a large constant factor there. Dead arena
    // slots keep color 0 and are never read (edge iterators only yield
    // live endpoints).
    let slots = verts.last().map(|v| v.index() + 1).unwrap_or(0);
    let mut color = vec![0u64; slots];
    for &v in &verts {
        color[v.index()] = mix(&[1, g.vertex_label(v).0 as u64]);
    }
    let mut next = vec![0u64; slots];
    let mut outs: Vec<u64> = Vec::new();
    let mut ins: Vec<u64> = Vec::new();
    for _ in 0..WL_ROUNDS {
        for &v in &verts {
            outs.clear();
            ins.clear();
            for e in g.out_edges(v) {
                let (_, d, l) = g.edge(e);
                outs.push(mix(&[2, l.0 as u64, color[d.index()]]));
            }
            for e in g.in_edges(v) {
                let (s, _, l) = g.edge(e);
                ins.push(mix(&[3, l.0 as u64, color[s.index()]]));
            }
            next[v.index()] = mix(&[
                color[v.index()],
                mix_sorted(&mut outs),
                mix_sorted(&mut ins),
            ]);
        }
        std::mem::swap(&mut color, &mut next);
    }

    let mut vparts: Vec<u64> = verts.iter().map(|&v| color[v.index()]).collect();
    let vertex_part = mix_sorted(&mut vparts);
    let mut eparts: Vec<u64> = g
        .edges()
        .map(|e| {
            let (s, d, l) = g.edge(e);
            mix(&[4, color[s.index()], l.0 as u64, color[d.index()]])
        })
        .collect();
    let edge_part = mix_sorted(&mut eparts);
    mix(&[
        g.vertex_count() as u64,
        g.edge_count() as u64,
        vertex_part,
        edge_part,
    ])
}

/// A map keyed by graph isomorphism class.
///
/// `insert`/`get` cost one invariant hash plus exact iso checks against
/// the few bucket members sharing that hash.
pub struct IsoClassMap<V> {
    buckets: FxHashMap<u64, Vec<(Graph, V)>>,
    len: usize,
}

impl<V> Default for IsoClassMap<V> {
    fn default() -> Self {
        IsoClassMap {
            buckets: FxHashMap::default(),
            len: 0,
        }
    }
}

impl<V> IsoClassMap<V> {
    /// An empty iso-class map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct isomorphism classes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no classes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a reference to the value for `g`'s iso class, if present.
    pub fn get(&self, g: &Graph) -> Option<&V> {
        let h = invariant_hash(g);
        self.buckets
            .get(&h)?
            .iter()
            .find(|(rep, _)| are_isomorphic(rep, g))
            .map(|(_, v)| v)
    }

    /// Returns a mutable reference to the value for `g`'s iso class.
    pub fn get_mut(&mut self, g: &Graph) -> Option<&mut V> {
        let h = invariant_hash(g);
        self.buckets
            .get_mut(&h)?
            .iter_mut()
            .find(|(rep, _)| are_isomorphic(rep, g))
            .map(|(_, v)| v)
    }

    /// True if `g`'s iso class is present.
    pub fn contains(&self, g: &Graph) -> bool {
        self.get(g).is_some()
    }

    /// Inserts `value` for `g`'s iso class; returns the previous value if
    /// the class was already present (the stored representative graph is
    /// kept).
    pub fn insert(&mut self, g: Graph, value: V) -> Option<V> {
        let h = invariant_hash(&g);
        let bucket = self.buckets.entry(h).or_default();
        for (rep, v) in bucket.iter_mut() {
            if are_isomorphic(rep, &g) {
                return Some(std::mem::replace(v, value));
            }
        }
        bucket.push((g, value));
        self.len += 1;
        None
    }

    /// Gets the value for `g`'s class, inserting `default()` if absent.
    pub fn entry_or_insert_with(&mut self, g: &Graph, default: impl FnOnce() -> V) -> &mut V {
        let h = invariant_hash(g);
        let bucket = self.buckets.entry(h).or_default();
        let pos = bucket.iter().position(|(rep, _)| are_isomorphic(rep, g));
        let idx = match pos {
            Some(i) => i,
            None => {
                bucket.push((g.clone(), default()));
                self.len += 1;
                bucket.len() - 1
            }
        };
        &mut bucket[idx].1
    }

    /// Iterates over `(representative graph, value)` pairs in arbitrary
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&Graph, &V)> {
        self.buckets
            .values()
            .flat_map(|b| b.iter().map(|(g, v)| (g, v)))
    }

    /// Consumes the map, yielding `(representative, value)` pairs.
    pub fn into_iter_pairs(self) -> impl Iterator<Item = (Graph, V)> {
        self.buckets.into_values().flatten()
    }

    /// Largest bucket size — diagnostic for hash quality.
    pub fn max_bucket(&self) -> usize {
        self.buckets.values().map(|b| b.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ELabel, VLabel};

    fn cycle(n: usize, rot: usize) -> Graph {
        let mut g = Graph::new();
        let vs: Vec<_> = (0..n).map(|_| g.add_vertex(VLabel(7))).collect();
        for i in 0..n {
            g.add_edge(vs[(i + rot) % n], vs[(i + rot + 1) % n], ELabel(1));
        }
        g
    }

    #[test]
    fn isomorphic_graphs_hash_equal() {
        assert_eq!(invariant_hash(&cycle(5, 0)), invariant_hash(&cycle(5, 3)));
    }

    #[test]
    fn distinguishes_basic_shapes() {
        let c4 = cycle(4, 0);
        // Path of 4 vertices.
        let mut p = Graph::new();
        let vs: Vec<_> = (0..4).map(|_| p.add_vertex(VLabel(7))).collect();
        for i in 0..3 {
            p.add_edge(vs[i], vs[i + 1], ELabel(1));
        }
        assert_ne!(invariant_hash(&c4), invariant_hash(&p));
        // Hub with 3 spokes vs chain of 4: same |V|,|E| as p.
        let mut h = Graph::new();
        let hub = h.add_vertex(VLabel(7));
        for _ in 0..3 {
            let s = h.add_vertex(VLabel(7));
            h.add_edge(hub, s, ELabel(1));
        }
        assert_ne!(invariant_hash(&h), invariant_hash(&p));
    }

    #[test]
    fn direction_changes_hash() {
        let mut a = Graph::new();
        let x = a.add_vertex(VLabel(0));
        let y = a.add_vertex(VLabel(1));
        a.add_edge(x, y, ELabel(0));
        let mut b = Graph::new();
        let x2 = b.add_vertex(VLabel(0));
        let y2 = b.add_vertex(VLabel(1));
        b.add_edge(y2, x2, ELabel(0));
        assert_ne!(invariant_hash(&a), invariant_hash(&b));
    }

    #[test]
    fn labels_change_hash() {
        let mut a = cycle(3, 0);
        let b = cycle(3, 0);
        let v0 = a.vertices().next().unwrap();
        a.set_vertex_label(v0, VLabel(99));
        assert_ne!(invariant_hash(&a), invariant_hash(&b));
    }

    #[test]
    fn empty_and_singleton() {
        let e = Graph::new();
        let mut s = Graph::new();
        s.add_vertex(VLabel(0));
        assert_ne!(invariant_hash(&e), invariant_hash(&s));
        assert_eq!(invariant_hash(&e), invariant_hash(&Graph::new()));
    }

    #[test]
    fn class_map_dedups_iso_graphs() {
        let mut m: IsoClassMap<u32> = IsoClassMap::new();
        assert!(m.insert(cycle(5, 0), 1).is_none());
        assert_eq!(m.insert(cycle(5, 2), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(*m.get(&cycle(5, 4)).unwrap(), 2);
        assert!(m.insert(cycle(4, 0), 3).is_none());
        assert_eq!(m.len(), 2);
        assert!(!m.contains(&cycle(6, 0)));
    }

    #[test]
    fn entry_api_counts() {
        let mut m: IsoClassMap<u32> = IsoClassMap::new();
        for rot in 0..5 {
            *m.entry_or_insert_with(&cycle(5, rot), || 0) += 1;
        }
        assert_eq!(m.len(), 1);
        assert_eq!(*m.get(&cycle(5, 0)).unwrap(), 5);
    }

    #[test]
    fn parallel_edges_distinguish_from_single() {
        let mut a = Graph::new();
        let x = a.add_vertex(VLabel(0));
        let y = a.add_vertex(VLabel(0));
        a.add_edge(x, y, ELabel(0));
        let mut b = a.clone();
        let (bx, by) = {
            let mut it = b.vertices();
            (it.next().unwrap(), it.next().unwrap())
        };
        b.add_edge(bx, by, ELabel(0));
        assert_ne!(invariant_hash(&a), invariant_hash(&b));
    }
}
