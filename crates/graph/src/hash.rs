//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The mining workloads in this workspace hash small integers (vertex ids,
//! label ids, packed edge tuples) billions of times. The standard library's
//! SipHash is collision-resistant but slow for such keys; the classic
//! "Fx" multiply-xor hash used by rustc is a far better fit and is small
//! enough to implement here rather than pull in a dependency.
//!
//! HashDoS resistance is irrelevant: all inputs are produced by our own
//! generators and miners, never by an adversary.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let h: Vec<u64> = (0u64..64).map(|v| hash_of(&v)).collect();
        let distinct: FxHashSet<u64> = h.iter().copied().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn byte_slices_with_remainders() {
        // 0..=16 bytes exercises the chunked path and all remainder lengths.
        let data: Vec<u8> = (0u8..17).collect();
        let mut seen = FxHashSet::default();
        for len in 0..=data.len() {
            seen.insert(hash_of(&&data[..len]));
        }
        assert_eq!(seen.len(), 18, "each prefix length should hash distinctly");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }
}
