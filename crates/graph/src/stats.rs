//! Degree and size statistics (the §3 dataset-description numbers).

use crate::graph::Graph;

/// Minimum / maximum / mean of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
}

impl DegreeStats {
    fn from_iter(values: impl Iterator<Item = usize>) -> Option<DegreeStats> {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut n = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            n += 1;
        }
        (n > 0).then(|| DegreeStats {
            min,
            max,
            mean: sum as f64 / n as f64,
        })
    }
}

/// Summary of a graph, mirroring the §3 description: vertex/edge counts,
/// distinct labels, and in/out-degree ranges.
#[derive(Clone, Debug)]
pub struct GraphSummary {
    pub vertices: usize,
    pub edges: usize,
    pub distinct_vertex_labels: usize,
    pub distinct_edge_labels: usize,
    /// Out-degree over vertices with out-degree >= 1 (the paper reports a
    /// minimum out-degree of 1: pure destinations are excluded).
    pub out_degree: Option<DegreeStats>,
    /// In-degree over vertices with in-degree >= 1.
    pub in_degree: Option<DegreeStats>,
}

/// Computes a [`GraphSummary`].
pub fn summarize(g: &Graph) -> GraphSummary {
    GraphSummary {
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        distinct_vertex_labels: g.vertex_label_histogram().len(),
        distinct_edge_labels: g.edge_label_histogram().len(),
        out_degree: DegreeStats::from_iter(
            g.vertices().map(|v| g.out_degree(v)).filter(|&d| d > 0),
        ),
        in_degree: DegreeStats::from_iter(g.vertices().map(|v| g.in_degree(v)).filter(|&d| d > 0)),
    }
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "|V| = {}, |E| = {}", self.vertices, self.edges)?;
        writeln!(
            f,
            "distinct labels: {} vertex, {} edge",
            self.distinct_vertex_labels, self.distinct_edge_labels
        )?;
        if let Some(d) = self.out_degree {
            writeln!(
                f,
                "out-degree (senders): min {} max {} avg {:.1}",
                d.min, d.max, d.mean
            )?;
        }
        if let Some(d) = self.in_degree {
            writeln!(
                f,
                "in-degree (receivers): min {} max {} avg {:.1}",
                d.min, d.max, d.mean
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::shapes;
    use crate::graph::{ELabel, VLabel};

    #[test]
    fn summary_of_hub() {
        let g = shapes::hub_and_spoke(4, 0, 1);
        let s = summarize(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.distinct_vertex_labels, 1);
        assert_eq!(s.distinct_edge_labels, 1);
        let out = s.out_degree.unwrap();
        assert_eq!((out.min, out.max), (4, 4)); // only the hub sends
        assert!((out.mean - 4.0).abs() < 1e-12);
        let inn = s.in_degree.unwrap();
        assert_eq!((inn.min, inn.max), (1, 1));
    }

    #[test]
    fn empty_graph_summary() {
        let g = Graph::new();
        let s = summarize(&g);
        assert_eq!(s.vertices, 0);
        assert!(s.out_degree.is_none());
        assert!(s.in_degree.is_none());
    }

    #[test]
    fn display_renders() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(1));
        g.add_edge(a, b, ELabel(2));
        let txt = summarize(&g).to_string();
        assert!(txt.contains("|V| = 2"));
        assert!(txt.contains("out-degree"));
    }
}
