//! In-tree seeded PRNG: splitmix64 seeding + xoshiro256\*\*.
//!
//! Replaces the external `rand` crate so the default workspace builds
//! with **zero** crates.io dependencies (the build environment has no
//! registry access). The API deliberately mirrors the small slice of
//! `rand` the workspace used — `StdRng::seed_from_u64`, `gen_range`,
//! `gen::<f64>()`, `shuffle`, `choose` — so call sites port mechanically.
//!
//! Streams differ from `rand`'s ChaCha-based `StdRng`, so any golden
//! numbers derived from generated data were re-pinned when this landed.
//!
//! xoshiro256\*\* is Blackman & Vigna's general-purpose generator
//! (public domain reference implementation); splitmix64 expands a 64-bit
//! seed into the 256-bit state, guaranteeing a non-zero state for every
//! seed. Not cryptographically secure — this is simulation RNG only.

/// splitmix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent 64-bit stream seed from `(seed, index)`.
///
/// Used wherever work fans out (partition repetitions, null-model
/// replicas) so each unit of work owns a private generator — the
/// cornerstone of thread-count-independent determinism.
#[inline]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    // Two rounds decorrelate (seed, 0) from plain `seed`.
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(32)
}

/// xoshiro256\*\* — the workspace's standard simulation RNG.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator from a 64-bit seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // splitmix64 never yields four zeros for any seed, but keep the
        // invariant explicit: the all-zero state is xoshiro's fixed point.
        debug_assert!(s.iter().any(|&w| w != 0));
        StdRng { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// The generator interface all sampling helpers build on. Generic call
/// sites take `&mut impl Rng`, exactly as they did with the external
/// crate.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range
    /// (`gen_range(0..n)`, `gen_range(1..=6)`, `gen_range(0.0..1.0)`).
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform sample of a whole type's "standard" distribution:
    /// floats in `[0, 1)`, integers over their full range, fair bools.
    #[inline]
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

/// Types with a standard uniform distribution (the `rand::Standard`
/// analogue).
pub trait Random {
    fn random<G: Rng>(rng: &mut G) -> Self;
}

impl Random for f64 {
    #[inline]
    fn random<G: Rng>(rng: &mut G) -> f64 {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<G: Rng>(rng: &mut G) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    #[inline]
    fn random<G: Rng>(rng: &mut G) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<G: Rng>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (the `rand` `gen_range`
/// argument bound).
pub trait SampleRange {
    type Output;
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

/// Maps a raw u64 onto `0..span` via 128-bit widening multiply
/// (Lemire's multiply-shift; bias < 2^-64 is irrelevant for simulation).
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

// No `Range<f32>` impl on purpose: a second float impl would make
// unsuffixed literals (`gen_range(0.96..1.04)`) ambiguous at every call
// site. Sample f64 and narrow if f32 is ever needed.

/// Slice helpers (`rand::seq::SliceRandom` analogue).
pub trait SliceRandom {
    type Item;
    /// Fisher–Yates shuffle, in place.
    fn shuffle<G: Rng>(&mut self, rng: &mut G);
    /// Uniformly random element, `None` on an empty slice.
    fn choose<G: Rng>(&self, rng: &mut G) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<G: Rng>(&mut self, rng: &mut G) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng.next_u64(), i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<G: Rng>(&self, rng: &mut G) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded(rng.next_u64(), self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_xoshiro_reference_vector() {
        // xoshiro256** from state {1, 2, 3, 4}, outputs derived by hand
        // from the reference recurrence (result = rotl(s1*5, 7)*9).
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1509978240);
        assert_eq!(rng.next_u64(), 1215971899390074240);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference vector for splitmix64 with seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(-2.5..4.0f64);
            assert!((-2.5..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let s = rng.gen_range(-10..=10i64);
            assert!((-10..=10).contains(&s));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should appear");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");

        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut counts = [0usize; 3];
        let items = [0usize, 1, 2];
        for _ in 0..3000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "roughly uniform, got {counts:?}");
        }
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50u64 {
            for idx in 0..50u64 {
                assert!(seen.insert(derive_seed(seed, idx)), "collision");
            }
        }
        // Stream (seed, 0) must differ from the plain seed's stream.
        let mut direct = StdRng::seed_from_u64(9);
        let mut derived = StdRng::seed_from_u64(derive_seed(9, 0));
        assert_ne!(direct.next_u64(), derived.next_u64());
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
