//! Rendering graphs as Graphviz DOT and compact one-line descriptions.
//!
//! The paper presents every discovered pattern as a small figure
//! (Figures 1–4); these helpers regenerate equivalent artifacts.

use crate::graph::{Graph, VertexId};
use std::fmt::Write as _;

/// Renders a graph as Graphviz DOT (`digraph`), labeling vertices with
/// their vertex label and edges with their edge label.
///
/// `name` must be a valid DOT identifier (alphanumeric/underscore).
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for v in g.vertices() {
        let _ = writeln!(s, "  n{} [label=\"{}\"];", v.0, g.vertex_label(v).0);
    }
    for e in g.edges() {
        let (src, dst, l) = g.edge(e);
        let _ = writeln!(s, "  n{} -> n{} [label=\"{}\"];", src.0, dst.0, l.0);
    }
    s.push_str("}\n");
    s
}

/// A compact, deterministic one-line rendering of a graph's structure:
/// `v:<sorted vertex labels> e:<sorted "srcIdx-[lbl]->dstIdx" entries>`
/// using a BFS renumbering from the lowest vertex id. Two renderings being
/// equal does *not* prove isomorphism; this is for logs and reports.
pub fn to_compact(g: &Graph) -> String {
    let mut vlabels: Vec<u32> = g.vertices().map(|v| g.vertex_label(v).0).collect();
    vlabels.sort_unstable();
    // Deterministic vertex renumbering by id order.
    let ids: Vec<VertexId> = g.vertices().collect();
    let index_of = |v: VertexId| ids.iter().position(|&x| x == v).unwrap();
    let mut edges: Vec<String> = g
        .edges()
        .map(|e| {
            let (s, d, l) = g.edge(e);
            format!("{}-[{}]->{}", index_of(s), l.0, index_of(d))
        })
        .collect();
    edges.sort_unstable();
    format!(
        "v[{}] e[{}]",
        vlabels
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(","),
        edges.join(" ")
    )
}

/// An ASCII-art adjacency rendering for small patterns — the report
/// format used by the experiment binaries.
pub fn to_ascii(g: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "pattern: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );
    for e in g.edges() {
        let (src, dst, l) = g.edge(e);
        let _ = writeln!(
            s,
            "  ({}:{}) --[{}]--> ({}:{})",
            src.0,
            g.vertex_label(src).0,
            l.0,
            dst.0,
            g.vertex_label(dst).0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::shapes;

    #[test]
    fn dot_contains_all_elements() {
        let g = shapes::hub_and_spoke(2, 5, 9);
        let dot = to_dot(&g, "hub");
        assert!(dot.starts_with("digraph hub {"));
        assert_eq!(dot.matches("label=\"5\"").count(), 3); // 3 vertices
        assert_eq!(dot.matches("label=\"9\"").count(), 2); // 2 edges
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn compact_is_deterministic() {
        let g = shapes::chain(3, 0, 1);
        assert_eq!(to_compact(&g), to_compact(&g.clone()));
        assert!(to_compact(&g).contains("0-[1]->1"));
    }

    #[test]
    fn ascii_mentions_counts() {
        let g = shapes::cycle(3, 0, 2);
        let a = to_ascii(&g);
        assert!(a.contains("3 vertices, 3 edges"));
    }
}
