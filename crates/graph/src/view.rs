//! Read-only graph access shared by the builder and frozen snapshots.
//!
//! Every consumer downstream of construction — the VF2 matcher, embedding
//! extension, WL hashing, SUBDUE's instance expansion — only *reads*
//! structure. [`GraphView`] captures exactly that surface so one generic
//! implementation serves the tombstone arena ([`Graph`]), the immutable
//! CSR snapshot ([`crate::frozen::FrozenGraph`]), and per-transaction
//! views into a packed [`crate::frozen::TxnSet`].
//!
//! Ordering contract (load-bearing for determinism): `vertices()`,
//! `edges()`, `out_edges()`, and `in_edges()` yield ids in **ascending id
//! order** on every implementation. The arena satisfies this because
//! adjacency lists are append-ordered and ids are never reused; the
//! frozen forms satisfy it by construction. Miners rely on this so that
//! freezing a (dense) graph never reorders candidate enumeration.
//!
//! The `visit_*_matching` hooks are the optimization seam: the default
//! implementations linearly filter adjacency (what the arena can do), and
//! the frozen forms override them with binary searches over label-sorted
//! adjacency. Both yield matches in ascending edge-id order, so swapping
//! representations cannot change miner output.

use crate::graph::{ELabel, Graph, VLabel};
use crate::graph::{EdgeId, VertexId};
use crate::hash::FxHashMap;

/// Read-only view of a labeled directed multigraph.
///
/// See the module docs for the iteration-order contract.
pub trait GraphView {
    /// Number of (live) vertices.
    fn vertex_count(&self) -> usize;

    /// Number of (live) edges.
    fn edge_count(&self) -> usize;

    /// `vertex_count() + edge_count()` — SUBDUE's "size" of a graph.
    fn size(&self) -> usize {
        self.vertex_count() + self.edge_count()
    }

    /// Iterator over vertex ids, ascending.
    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_;

    /// Iterator over edge ids, ascending.
    fn edges(&self) -> impl Iterator<Item = EdgeId> + '_;

    /// Label of a vertex.
    fn vertex_label(&self, v: VertexId) -> VLabel;

    /// `(src, dst, label)` of an edge.
    fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel);

    /// Source vertex of an edge.
    fn edge_src(&self, e: EdgeId) -> VertexId {
        self.edge(e).0
    }

    /// Destination vertex of an edge.
    fn edge_dst(&self, e: EdgeId) -> VertexId {
        self.edge(e).1
    }

    /// Label of an edge.
    fn edge_label(&self, e: EdgeId) -> ELabel {
        self.edge(e).2
    }

    /// Out-edges of `v`, ascending by edge id.
    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_;

    /// In-edges of `v`, ascending by edge id.
    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_;

    /// All edges incident to `v` (out first, then in; a self-loop appears
    /// twice).
    fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges(v).chain(self.in_edges(v))
    }

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges(v).count()
    }

    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges(v).count()
    }

    /// Total degree (self-loops count twice).
    fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Visits `(edge, dst)` for every out-edge of `v` with edge label
    /// `el` whose destination has vertex label `vl`, in ascending
    /// edge-id order. Frozen implementations binary-search their
    /// label-sorted candidate slice instead of scanning.
    fn visit_out_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        for e in self.out_edges(v) {
            let (_, d, l) = self.edge(e);
            if l == el && self.vertex_label(d) == vl {
                f(e, d);
            }
        }
    }

    /// Mirror of [`GraphView::visit_out_matching`] for in-edges: visits
    /// `(edge, src)` for in-edges of `v` labeled `el` whose source has
    /// vertex label `vl`.
    fn visit_in_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        for e in self.in_edges(v) {
            let (s, _, l) = self.edge(e);
            if l == el && self.vertex_label(s) == vl {
                f(e, s);
            }
        }
    }

    /// True if at least one edge `s -> d` with label `el` exists.
    fn has_edge_labeled(&self, s: VertexId, d: VertexId, el: ELabel) -> bool {
        self.out_edges(s).any(|e| {
            let (_, dd, l) = self.edge(e);
            dd == d && l == el
        })
    }

    /// Structural fingerprint of `v` (see [`crate::fingerprint`]): a
    /// packed u64 of label blooms and unary degrees, checked with
    /// [`crate::fingerprint::fp_subsumes`] before VF2. The default
    /// computes from adjacency; frozen forms override with a load from
    /// their freeze-time array. Both yield identical values for the same
    /// graph, so filter decisions are representation-invariant.
    fn vertex_fp(&self, v: VertexId) -> u64 {
        crate::fingerprint::vertex_fingerprint(self, v)
    }

    /// Multiset of vertex labels with frequencies.
    fn vertex_label_histogram(&self) -> FxHashMap<VLabel, usize> {
        let mut h: FxHashMap<VLabel, usize> = FxHashMap::default();
        for v in self.vertices() {
            *h.entry(self.vertex_label(v)).or_insert(0) += 1;
        }
        h
    }

    /// Multiset of edge labels with frequencies.
    fn edge_label_histogram(&self) -> FxHashMap<ELabel, usize> {
        let mut h: FxHashMap<ELabel, usize> = FxHashMap::default();
        for e in self.edges() {
            *h.entry(self.edge_label(e)).or_insert(0) += 1;
        }
        h
    }
}

impl GraphView for Graph {
    fn vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        Graph::vertices(self)
    }

    fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        Graph::edges(self)
    }

    fn vertex_label(&self, v: VertexId) -> VLabel {
        Graph::vertex_label(self, v)
    }

    fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel) {
        Graph::edge(self, e)
    }

    fn edge_src(&self, e: EdgeId) -> VertexId {
        Graph::edge_src(self, e)
    }

    fn edge_dst(&self, e: EdgeId) -> VertexId {
        Graph::edge_dst(self, e)
    }

    fn edge_label(&self, e: EdgeId) -> ELabel {
        Graph::edge_label(self, e)
    }

    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        Graph::out_edges(self, v)
    }

    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        Graph::in_edges(self, v)
    }
}

impl<T: GraphView + ?Sized> GraphView for &T {
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (**self).vertices()
    }

    fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (**self).edges()
    }

    fn vertex_label(&self, v: VertexId) -> VLabel {
        (**self).vertex_label(v)
    }

    fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel) {
        (**self).edge(e)
    }

    fn edge_src(&self, e: EdgeId) -> VertexId {
        (**self).edge_src(e)
    }

    fn edge_dst(&self, e: EdgeId) -> VertexId {
        (**self).edge_dst(e)
    }

    fn edge_label(&self, e: EdgeId) -> ELabel {
        (**self).edge_label(e)
    }

    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        (**self).out_edges(v)
    }

    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        (**self).in_edges(v)
    }

    fn out_degree(&self, v: VertexId) -> usize {
        (**self).out_degree(v)
    }

    fn in_degree(&self, v: VertexId) -> usize {
        (**self).in_degree(v)
    }

    fn visit_out_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        (**self).visit_out_matching(v, el, vl, f)
    }

    fn visit_in_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        (**self).visit_in_matching(v, el, vl, f)
    }

    fn has_edge_labeled(&self, s: VertexId, d: VertexId, el: ELabel) -> bool {
        (**self).has_edge_labeled(s, d, el)
    }

    fn vertex_fp(&self, v: VertexId) -> u64 {
        (**self).vertex_fp(v)
    }
}

/// Builds the subgraph consisting of the given edges plus their
/// endpoints, from any view. Vertex numbering is by first appearance in
/// `edge_ids` — identical to [`Graph::edge_subgraph`].
///
/// Returns the new builder graph and the `view id -> new id` mapping.
pub fn edge_subgraph<G: GraphView>(
    g: &G,
    edge_ids: &[EdgeId],
) -> (Graph, FxHashMap<VertexId, VertexId>) {
    let mut vmap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut out = Graph::new();
    for &e in edge_ids {
        let (s, d, l) = g.edge(e);
        let ns = *vmap
            .entry(s)
            .or_insert_with(|| out.add_vertex(g.vertex_label(s)));
        let nd = *vmap
            .entry(d)
            .or_insert_with(|| out.add_vertex(g.vertex_label(d)));
        out.add_edge(ns, nd, l);
    }
    (out, vmap)
}

/// Provider of graph transactions for the miners: either a plain slice of
/// arena graphs or a packed [`crate::frozen::TxnSet`]. The associated
/// view type is what support counting traverses.
pub trait TxnSource: Sync {
    /// Per-transaction read view.
    type View<'a>: GraphView + Copy + Sync
    where
        Self: 'a;

    /// Number of transactions.
    fn txn_count(&self) -> usize;

    /// View of transaction `i`.
    fn txn(&self, i: usize) -> Self::View<'_>;
}

impl TxnSource for [Graph] {
    type View<'a> = &'a Graph;

    fn txn_count(&self) -> usize {
        self.len()
    }

    fn txn(&self, i: usize) -> Self::View<'_> {
        &self[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ELabel, VLabel};

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(1));
        let b = g.add_vertex(VLabel(2));
        let c = g.add_vertex(VLabel(2));
        g.add_edge(a, b, ELabel(5));
        g.add_edge(a, c, ELabel(5));
        g.add_edge(b, c, ELabel(6));
        g
    }

    #[test]
    fn arena_implements_view() {
        let g = sample();
        let v: &dyn Fn(&Graph) -> usize = &|g| GraphView::vertex_count(g);
        assert_eq!(v(&g), 3);
        let a = VertexId(0);
        let mut hits = Vec::new();
        g.visit_out_matching(a, ELabel(5), VLabel(2), &mut |e, d| hits.push((e, d)));
        assert_eq!(hits.len(), 2);
        assert!(hits[0].0 < hits[1].0, "ascending edge-id order");
        assert!(g.has_edge_labeled(VertexId(1), VertexId(2), ELabel(6)));
        assert!(!g.has_edge_labeled(VertexId(1), VertexId(2), ELabel(5)));
    }

    #[test]
    fn edge_subgraph_matches_inherent() {
        let g = sample();
        let ids: Vec<EdgeId> = Graph::edges(&g).collect();
        let (a, _) = g.edge_subgraph(&ids);
        let (b, _) = edge_subgraph(&g, &ids);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn slice_txn_source() {
        let txns = vec![sample(), sample()];
        let src: &[Graph] = &txns;
        assert_eq!(src.txn_count(), 2);
        assert_eq!(GraphView::edge_count(&src.txn(1)), 3);
    }
}
