//! Arena-based labeled directed multigraph.
//!
//! This is the substrate every miner in the workspace operates on. Design
//! points, driven by the workloads in the paper:
//!
//! * **Directed multigraph.** Transportation data routinely has several
//!   deliveries between the same origin and destination; each becomes its
//!   own edge (§3 of the paper models the data as "perhaps a multigraph").
//! * **Small integer labels.** Labels are pre-binned interval ids or
//!   location ids, so a `u32` newtype suffices; meaning lives with the
//!   producer (bin boundaries in `tnet-data`, locations in the OD maps).
//! * **Tombstone deletion.** The BF/DF partitioners (Algorithm 2) peel
//!   edges off a working copy of the graph; deletion must be O(degree)
//!   without invalidating other ids mid-walk.
//!
//! The arena is the **builder** half of a two-representation lifecycle:
//! construct and mutate here, then [`GraphBuilder::freeze`] into an
//! immutable [`crate::frozen::FrozenGraph`] CSR snapshot for the read-only
//! mining phase (and [`crate::frozen::FrozenGraph::thaw`] back if needed).
//! `Graph` remains an alias for [`GraphBuilder`] because small append-only
//! pattern graphs — which are never frozen — are the pervasive currency of
//! the miners.

use crate::frozen::FrozenGraph;
use crate::hash::{FxHashMap, FxHashSet};
use std::fmt;

/// Identifier of a vertex within one [`Graph`]. Stable across edge removals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Identifier of an edge within one [`Graph`]. Stable across removals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// A vertex label (e.g. a coalesced location id, or `0` for "uniform").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct VLabel(pub u32);

/// An edge label (e.g. a weight/hours/distance bin id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct ELabel(pub u32);

impl VertexId {
    #[inline]
    /// Arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    #[inline]
    /// Arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct VertexData {
    label: VLabel,
    /// Edge ids leaving this vertex. May contain tombstoned ids; filtered on read.
    out: Vec<EdgeId>,
    /// Edge ids entering this vertex.
    inc: Vec<EdgeId>,
    alive: bool,
}

#[derive(Clone, Copy, Debug)]
struct EdgeData {
    src: VertexId,
    dst: VertexId,
    label: ELabel,
    alive: bool,
}

/// A labeled directed multigraph (the mutable **builder** arena).
///
/// Vertices and edges live in arenas and are addressed by [`VertexId`] /
/// [`EdgeId`]. Removal tombstones the slot; ids are never reused, so a
/// removal cannot invalidate an id held elsewhere (it merely makes
/// `contains_*` return `false`).
#[derive(Clone, Default)]
pub struct GraphBuilder {
    vertices: Vec<VertexData>,
    edges: Vec<EdgeData>,
    live_vertices: usize,
    live_edges: usize,
    /// Memoized Weisfeiler–Leman invariant hash (see `canon`). Cleared by
    /// every mutation; carried across `clone()` so iso-class lookups on a
    /// pattern and its stored copies hash at most once.
    pub(crate) hash_cache: std::sync::OnceLock<u64>,
}

/// The builder arena under its historical name. Miners build and pass
/// small pattern graphs constantly; the short alias keeps that code
/// readable while `GraphBuilder` names the role in the freeze lifecycle.
pub type Graph = GraphBuilder;

impl GraphBuilder {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with pre-reserved capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        Graph {
            vertices: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            live_vertices: 0,
            live_edges: 0,
            hash_cache: std::sync::OnceLock::new(),
        }
    }

    /// Invalidates the memoized invariant hash. Every mutator calls this.
    #[inline]
    fn touch(&mut self) {
        self.hash_cache.take();
    }

    /// Number of live vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.live_vertices
    }

    /// Number of live edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// `vertex_count() + edge_count()` — SUBDUE's "size" of a graph.
    #[inline]
    pub fn size(&self) -> usize {
        self.live_vertices + self.live_edges
    }

    /// True if the graph has no live vertices.
    pub fn is_empty(&self) -> bool {
        self.live_vertices == 0
    }

    /// Adds a vertex with the given label and returns its id.
    pub fn add_vertex(&mut self, label: VLabel) -> VertexId {
        self.touch();
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(VertexData {
            label,
            out: Vec::new(),
            inc: Vec::new(),
            alive: true,
        });
        self.live_vertices += 1;
        id
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// Parallel edges (same endpoints, any labels) are allowed.
    ///
    /// # Panics
    /// Panics if either endpoint is dead or out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: ELabel) -> EdgeId {
        assert!(self.contains_vertex(src), "add_edge: dead src {src:?}");
        assert!(self.contains_vertex(dst), "add_edge: dead dst {dst:?}");
        self.touch();
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            src,
            dst,
            label,
            alive: true,
        });
        self.vertices[src.index()].out.push(id);
        self.vertices[dst.index()].inc.push(id);
        self.live_edges += 1;
        id
    }

    /// True if `v` refers to a live vertex.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.get(v.index()).is_some_and(|d| d.alive)
    }

    /// True if `e` refers to a live edge.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|d| d.alive)
    }

    /// Label of a live vertex.
    ///
    /// # Panics
    /// Panics if `v` is dead or out of range.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> VLabel {
        let d = &self.vertices[v.index()];
        debug_assert!(d.alive, "vertex_label on dead {v:?}");
        d.label
    }

    /// Replaces the label of a live vertex.
    pub fn set_vertex_label(&mut self, v: VertexId, label: VLabel) {
        debug_assert!(self.contains_vertex(v));
        self.touch();
        self.vertices[v.index()].label = label;
    }

    /// `(src, dst, label)` of a live edge.
    ///
    /// # Panics
    /// Panics if `e` is dead or out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel) {
        let d = &self.edges[e.index()];
        debug_assert!(d.alive, "edge() on dead {e:?}");
        (d.src, d.dst, d.label)
    }

    /// Source vertex of a live edge.
    #[inline]
    pub fn edge_src(&self, e: EdgeId) -> VertexId {
        self.edges[e.index()].src
    }

    /// Destination vertex of a live edge.
    #[inline]
    pub fn edge_dst(&self, e: EdgeId) -> VertexId {
        self.edges[e.index()].dst
    }

    /// Label of a live edge.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> ELabel {
        self.edges[e.index()].label
    }

    /// Iterator over live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Iterator over live edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Live out-edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.vertices[v.index()]
            .out
            .iter()
            .copied()
            .filter(|&e| self.edges[e.index()].alive)
    }

    /// Live in-edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.vertices[v.index()]
            .inc
            .iter()
            .copied()
            .filter(|&e| self.edges[e.index()].alive)
    }

    /// All live edges incident to `v` (out first, then in). A self-loop
    /// appears twice.
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges(v).chain(self.in_edges(v))
    }

    /// Out-degree of `v` (live edges only).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges(v).count()
    }

    /// In-degree of `v` (live edges only).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges(v).count()
    }

    /// Total degree (in + out; self-loops count twice).
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Removes an edge. No-op if already dead.
    pub fn remove_edge(&mut self, e: EdgeId) {
        if let Some(d) = self.edges.get_mut(e.index()) {
            if d.alive {
                d.alive = false;
                self.live_edges -= 1;
                self.touch();
            }
        }
    }

    /// Removes a vertex and all incident edges. No-op if already dead.
    pub fn remove_vertex(&mut self, v: VertexId) {
        if !self.contains_vertex(v) {
            return;
        }
        let incident: Vec<EdgeId> = self.incident_edges(v).collect();
        for e in incident {
            self.remove_edge(e);
        }
        self.vertices[v.index()].alive = false;
        self.live_vertices -= 1;
        self.touch();
    }

    /// Removes every live vertex with no live incident edges ("orphans",
    /// the cleanup step of Algorithm 2). Returns how many were removed.
    pub fn remove_orphans(&mut self) -> usize {
        let orphans: Vec<VertexId> = self
            .vertices()
            .filter(|&v| self.incident_edges(v).next().is_none())
            .collect();
        let n = orphans.len();
        if n > 0 {
            self.touch();
        }
        for v in orphans {
            self.vertices[v.index()].alive = false;
            self.live_vertices -= 1;
        }
        n
    }

    /// Compacts tombstones away, renumbering vertices and edges densely.
    ///
    /// Returns the mapping `old VertexId -> new VertexId` for live vertices.
    /// Use after heavy removal to shrink memory and speed up iteration.
    pub fn compact(&mut self) -> FxHashMap<VertexId, VertexId> {
        let mut vmap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
        let mut out = Graph::with_capacity(self.live_vertices, self.live_edges);
        for v in self.vertices() {
            let nv = out.add_vertex(self.vertex_label(v));
            vmap.insert(v, nv);
        }
        for e in self.edges() {
            let (s, d, l) = self.edge(e);
            out.add_edge(vmap[&s], vmap[&d], l);
        }
        *self = out;
        vmap
    }

    /// Builds the subgraph consisting of the given edges plus their
    /// endpoints. Vertex/edge labels are preserved; ids are renumbered.
    ///
    /// Returns the new graph and the `old -> new` vertex mapping.
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> (Graph, FxHashMap<VertexId, VertexId>) {
        let mut vmap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
        let mut g = Graph::new();
        for &e in edge_ids {
            let (s, d, l) = self.edge(e);
            let ns = *vmap
                .entry(s)
                .or_insert_with(|| g.add_vertex(self.vertex_label(s)));
            let nd = *vmap
                .entry(d)
                .or_insert_with(|| g.add_vertex(self.vertex_label(d)));
            g.add_edge(ns, nd, l);
        }
        (g, vmap)
    }

    /// Builds the subgraph induced by the given vertices: those vertices
    /// plus every live edge whose endpoints are both in the set.
    ///
    /// Returns the new graph and the `old -> new` vertex mapping.
    pub fn induced_subgraph(
        &self,
        vertex_ids: &[VertexId],
    ) -> (Graph, FxHashMap<VertexId, VertexId>) {
        let keep: FxHashSet<VertexId> = vertex_ids.iter().copied().collect();
        let mut vmap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
        let mut g = Graph::new();
        for &v in vertex_ids {
            if self.contains_vertex(v) && !vmap.contains_key(&v) {
                let nv = g.add_vertex(self.vertex_label(v));
                vmap.insert(v, nv);
            }
        }
        for e in self.edges() {
            let (s, d, l) = self.edge(e);
            if keep.contains(&s) && keep.contains(&d) {
                g.add_edge(vmap[&s], vmap[&d], l);
            }
        }
        (g, vmap)
    }

    /// Collapses parallel edges: keeps only the first edge for each
    /// `(src, dst, label)` triple. Returns the number of edges removed.
    ///
    /// FSG operates on simple graphs, "we also had to remove duplicate
    /// edges within each transaction" (§6).
    pub fn dedup_edges(&mut self) -> usize {
        let mut seen: FxHashSet<(VertexId, VertexId, ELabel)> = FxHashSet::default();
        let dupes: Vec<EdgeId> = self
            .edges()
            .filter(|&e| {
                let key = self.edge(e);
                !seen.insert(key)
            })
            .collect();
        let n = dupes.len();
        for e in dupes {
            self.remove_edge(e);
        }
        n
    }

    /// Collapses parallel edges regardless of label: keeps one edge per
    /// `(src, dst)` pair (the first encountered). Returns edges removed.
    pub fn dedup_edges_ignore_label(&mut self) -> usize {
        let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        let dupes: Vec<EdgeId> = self
            .edges()
            .filter(|&e| {
                let (s, d, _) = self.edge(e);
                !seen.insert((s, d))
            })
            .collect();
        let n = dupes.len();
        for e in dupes {
            self.remove_edge(e);
        }
        n
    }

    /// Sets every vertex label to `label` (the paper's §5 structural mode:
    /// "we assign all vertices the same label").
    pub fn uniform_vertex_labels(&mut self, label: VLabel) {
        self.touch();
        for d in self.vertices.iter_mut().filter(|d| d.alive) {
            d.label = label;
        }
    }

    /// Multiset of distinct vertex labels with their frequencies.
    pub fn vertex_label_histogram(&self) -> FxHashMap<VLabel, usize> {
        let mut h: FxHashMap<VLabel, usize> = FxHashMap::default();
        for v in self.vertices() {
            *h.entry(self.vertex_label(v)).or_insert(0) += 1;
        }
        h
    }

    /// Multiset of distinct edge labels with their frequencies.
    pub fn edge_label_histogram(&self) -> FxHashMap<ELabel, usize> {
        let mut h: FxHashMap<ELabel, usize> = FxHashMap::default();
        for e in self.edges() {
            *h.entry(self.edge_label(e)).or_insert(0) += 1;
        }
        h
    }

    /// Snapshots the live structure into an immutable, compacted
    /// [`FrozenGraph`] (dense ids in live-id order, label-sorted CSR
    /// adjacency). The builder is untouched; see
    /// [`FrozenGraph::thaw`] for the inverse.
    pub fn freeze(&self) -> FrozenGraph {
        FrozenGraph::freeze(self)
    }
}

impl fmt::Debug for GraphBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Graph {{ |V|={}, |E|={} }}",
            self.live_vertices, self.live_edges
        )?;
        for e in self.edges() {
            let (s, d, l) = self.edge(e);
            writeln!(
                f,
                "  {s:?}({}) -[{}]-> {d:?}({})",
                self.vertex_label(s).0,
                l.0,
                self.vertex_label(d).0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, [VertexId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(1));
        let b = g.add_vertex(VLabel(2));
        let c = g.add_vertex(VLabel(3));
        let e1 = g.add_edge(a, b, ELabel(10));
        let e2 = g.add_edge(b, c, ELabel(11));
        let e3 = g.add_edge(c, a, ELabel(12));
        (g, [a, b, c], [e1, e2, e3])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c], [e1, ..]) = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.vertex_label(a), VLabel(1));
        assert_eq!(g.edge(e1), (a, b, ELabel(10)));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.out_edges(b).count(), 1);
        assert_eq!(g.in_edges(c).count(), 1);
    }

    #[test]
    fn multigraph_parallel_edges() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(1));
        g.add_edge(a, b, ELabel(1));
        g.add_edge(a, b, ELabel(2));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        let removed = g.dedup_edges();
        assert_eq!(removed, 1, "only the identical-label duplicate goes");
        assert_eq!(g.edge_count(), 2);
        let mut g2 = g.clone();
        let removed2 = g2.dedup_edges_ignore_label();
        assert_eq!(removed2, 1);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn remove_edge_updates_degrees() {
        let (mut g, [a, b, _], [e1, ..]) = triangle();
        g.remove_edge(e1);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.contains_edge(e1));
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.in_degree(b), 0);
        // Removing again is a no-op.
        g.remove_edge(e1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remove_vertex_cascades() {
        let (mut g, [a, b, c], _) = triangle();
        g.remove_vertex(b);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1); // only c -> a survives
        assert!(g.contains_vertex(a) && g.contains_vertex(c));
        let e = g.edges().next().unwrap();
        assert_eq!(g.edge(e), (c, a, ELabel(12)));
    }

    #[test]
    fn remove_orphans() {
        let (mut g, [_, b, _], [e1, e2, _]) = triangle();
        g.remove_edge(e1);
        g.remove_edge(e2);
        // b now has no incident edges.
        let n = g.remove_orphans();
        assert_eq!(n, 1);
        assert!(!g.contains_vertex(b));
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn compact_renumbers() {
        let (mut g, [a, b, _], _) = triangle();
        g.remove_vertex(a);
        let vmap = g.compact();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(vmap.contains_key(&b));
        // New ids are dense.
        let ids: Vec<u32> = g.vertices().map(|v| v.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn edge_subgraph_preserves_labels() {
        let (g, _, [e1, e2, _]) = triangle();
        let (sub, vmap) = g.edge_subgraph(&[e1, e2]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(vmap.len(), 3);
        let labels: Vec<u32> = sub.vertices().map(|v| sub.vertex_label(v).0).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn induced_subgraph() {
        let (g, [a, b, _], _) = triangle();
        let (sub, _) = g.induced_subgraph(&[a, b]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1); // only a->b is internal
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let (g, [a, b, _], _) = triangle();
        let (sub, _) = g.induced_subgraph(&[a, b, a, b]);
        assert_eq!(sub.vertex_count(), 2);
    }

    #[test]
    fn uniform_labels_and_histograms() {
        let (mut g, _, _) = triangle();
        assert_eq!(g.vertex_label_histogram().len(), 3);
        g.uniform_vertex_labels(VLabel(0));
        let h = g.vertex_label_histogram();
        assert_eq!(h.len(), 1);
        assert_eq!(h[&VLabel(0)], 3);
        let eh = g.edge_label_histogram();
        assert_eq!(eh.len(), 3);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        g.add_edge(a, a, ELabel(0));
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.incident_edges(a).count(), 2);
    }

    #[test]
    #[should_panic(expected = "dead src")]
    fn add_edge_to_removed_vertex_panics() {
        let (mut g, [a, b, _], _) = triangle();
        g.remove_vertex(a);
        g.add_edge(a, b, ELabel(0));
    }
}
