//! Immutable frozen-CSR snapshots of builder graphs.
//!
//! The arena [`Graph`] is the *mutation* representation: ingest, OD-graph
//! construction, and the Algorithm-2 partitioners all need cheap edge
//! removal, which tombstones buy. Everything downstream of partitioning
//! only reads — and pays the arena's costs (alive-filtering on every
//! adjacency probe, unsorted neighbor lists) millions of times per mining
//! run. [`FrozenGraph`] is the *read* representation: a compacted CSR
//! snapshot produced by [`Graph::freeze`], traversed through
//! [`GraphView`], and turned back into a builder with
//! [`FrozenGraph::thaw`].
//!
//! Layout per direction (out shown; in is symmetric):
//!
//! * `off[v]..off[v+1]` index two parallel adjacency arrays;
//! * `adj` holds edge ids in **ascending id order** — the exact order a
//!   dense arena yields, so plain iteration is representation-invariant
//!   (this is what keeps miner output byte-identical after freezing);
//! * `lab` holds the same edge ids sorted by `(ELabel, dst-VLabel,
//!   EdgeId)` — embedding extension binary-searches its `(edge label,
//!   endpoint label)` candidate slice here instead of scanning, and the
//!   trailing edge-id key keeps matches in ascending id order so the
//!   fast path emits candidates in the same sequence the scan would.
//!
//! [`TxnSet`] packs a whole partition's transactions into one shared set
//! of arenas (vertex labels, edge triples, offsets) with per-transaction
//! base offsets; [`TxnRef`] is a `Copy` per-transaction view with local
//! ids. Besides cache locality, the packed form is the intended sharding
//! boundary: a `TxnSet` is a self-contained, immutable unit of mining
//! work.
//!
//! Freezing compacts ids in live-id order (the same numbering
//! [`Graph::compact`] produces); [`FrozenGraph::orig_vertex`] /
//! [`FrozenGraph::orig_edge`] recover the builder ids, which is how
//! SUBDUE reports instances in the caller's id space.

use crate::canon::wl_hash_view;
use crate::graph::{ELabel, EdgeId, Graph, VLabel, VertexId};
use crate::view::{GraphView, TxnSource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static FREEZE_COUNT: AtomicU64 = AtomicU64::new(0);
static CSR_BYTES: AtomicU64 = AtomicU64::new(0);
static ADJ_BINARY_SEARCHES: AtomicU64 = AtomicU64::new(0);
static FINGERPRINT_BYTES: AtomicU64 = AtomicU64::new(0);

/// Process-wide frozen-graph counters, snapshotted by the CLI/bench
/// layers into the `tnet-obs` registry as `graph.freeze_count`,
/// `graph.csr_bytes`, `graph.adj_binary_searches`, and
/// `graph.fingerprint_bytes`.
///
/// All four are cumulative and deterministic for a fixed workload at any
/// thread count: the set of freezes and candidate queries a mining run
/// performs does not depend on scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrozenStats {
    /// Number of `freeze()` calls (each packed transaction counts one).
    pub freeze_count: u64,
    /// Total bytes of CSR arrays built by those freezes.
    pub csr_bytes: u64,
    /// Label-directed candidate lookups answered by binary search.
    pub adj_binary_searches: u64,
    /// Bytes of per-vertex fingerprint arrays precomputed by freezes
    /// (see [`crate::fingerprint`]): 8 bytes per frozen vertex.
    pub fingerprint_bytes: u64,
}

impl FrozenStats {
    /// Current process-wide totals.
    pub fn snapshot() -> FrozenStats {
        FrozenStats {
            freeze_count: FREEZE_COUNT.load(Ordering::Relaxed),
            csr_bytes: CSR_BYTES.load(Ordering::Relaxed),
            adj_binary_searches: ADJ_BINARY_SEARCHES.load(Ordering::Relaxed),
            fingerprint_bytes: FINGERPRINT_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &FrozenStats) -> FrozenStats {
        FrozenStats {
            freeze_count: self.freeze_count - earlier.freeze_count,
            csr_bytes: self.csr_bytes - earlier.csr_bytes,
            adj_binary_searches: self.adj_binary_searches - earlier.adj_binary_searches,
            fingerprint_bytes: self.fingerprint_bytes - earlier.fingerprint_bytes,
        }
    }

    /// Hands each counter to `f` under its registry name
    /// (`graph.freeze_count`, …). The callback shape avoids a dependency
    /// on `tnet-obs`: callers pass `|name, v| registry.add(name, v)`.
    pub fn publish(&self, f: &mut dyn FnMut(&str, u64)) {
        f("graph.freeze_count", self.freeze_count);
        f("graph.csr_bytes", self.csr_bytes);
        f("graph.adj_binary_searches", self.adj_binary_searches);
        f("graph.fingerprint_bytes", self.fingerprint_bytes);
    }
}

/// Binary-searches a label-sorted adjacency row for the contiguous run
/// with key exactly `want`. `key` must be monotone over `row`.
#[inline]
fn matching_run(row: &[EdgeId], key: impl Fn(EdgeId) -> (u32, u32), want: (u32, u32)) -> &[EdgeId] {
    ADJ_BINARY_SEARCHES.fetch_add(1, Ordering::Relaxed);
    let lo = row.partition_point(|&e| key(e) < want);
    let hi = lo + row[lo..].partition_point(|&e| key(e) == want);
    &row[lo..hi]
}

/// An immutable compacted CSR snapshot of a [`Graph`].
///
/// Ids are dense (`0..vertex_count`, `0..edge_count`), numbered in the
/// builder's live-id order. Construct with [`Graph::freeze`]; all reads
/// go through [`GraphView`].
pub struct FrozenGraph {
    vlabels: Vec<VLabel>,
    esrc: Vec<VertexId>,
    edst: Vec<VertexId>,
    elabels: Vec<ELabel>,
    out_off: Vec<u32>,
    /// Out adjacency in ascending edge-id order.
    out_adj: Vec<EdgeId>,
    /// Out adjacency sorted by `(ELabel, dst VLabel, EdgeId)`.
    out_lab: Vec<EdgeId>,
    in_off: Vec<u32>,
    in_adj: Vec<EdgeId>,
    /// In adjacency sorted by `(ELabel, src VLabel, EdgeId)`.
    in_lab: Vec<EdgeId>,
    /// Dense id -> builder arena id.
    orig_v: Vec<VertexId>,
    orig_e: Vec<EdgeId>,
    /// Per-vertex structural fingerprints (see [`crate::fingerprint`]),
    /// precomputed so the pre-VF2 filter is an array load.
    fps: Vec<u64>,
    hash_cache: OnceLock<u64>,
}

/// Builds `(off, adj, lab)` for one direction from dense endpoint lists.
/// `endpoint[e]` is the vertex owning edge `e` in this direction;
/// `other[e]` is the far endpoint whose label sorts the `lab` array.
fn build_csr(
    n: usize,
    endpoint: &[VertexId],
    other: &[VertexId],
    elabels: &[ELabel],
    vlabels: &[VLabel],
) -> (Vec<u32>, Vec<EdgeId>, Vec<EdgeId>) {
    let mut off = vec![0u32; n + 1];
    for v in endpoint {
        off[v.index() + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut adj = vec![EdgeId(0); endpoint.len()];
    let mut cursor = off.clone();
    // Ascending edge-id fill keeps each row in ascending id order.
    for (e, v) in endpoint.iter().enumerate() {
        let c = &mut cursor[v.index()];
        adj[*c as usize] = EdgeId(e as u32);
        *c += 1;
    }
    let mut lab = adj.clone();
    for v in 0..n {
        let row = &mut lab[off[v] as usize..off[v + 1] as usize];
        row.sort_unstable_by_key(|&e| {
            (
                elabels[e.index()].0,
                vlabels[other[e.index()].index()].0,
                e.0,
            )
        });
    }
    (off, adj, lab)
}

impl FrozenGraph {
    /// Freezes `g` into a CSR snapshot. Live vertices and edges are
    /// renumbered densely in ascending builder-id order (the numbering
    /// [`Graph::compact`] uses).
    pub fn freeze(g: &Graph) -> FrozenGraph {
        let slots = g.vertices().last().map_or(0, |v| v.index() + 1);
        let mut dense = vec![u32::MAX; slots];
        let mut vlabels = Vec::with_capacity(g.vertex_count());
        let mut orig_v = Vec::with_capacity(g.vertex_count());
        for v in g.vertices() {
            dense[v.index()] = vlabels.len() as u32;
            vlabels.push(g.vertex_label(v));
            orig_v.push(v);
        }
        let m = g.edge_count();
        let mut esrc = Vec::with_capacity(m);
        let mut edst = Vec::with_capacity(m);
        let mut elabels = Vec::with_capacity(m);
        let mut orig_e = Vec::with_capacity(m);
        for e in g.edges() {
            let (s, d, l) = g.edge(e);
            esrc.push(VertexId(dense[s.index()]));
            edst.push(VertexId(dense[d.index()]));
            elabels.push(l);
            orig_e.push(e);
        }
        let n = vlabels.len();
        let (out_off, out_adj, out_lab) = build_csr(n, &esrc, &edst, &elabels, &vlabels);
        let (in_off, in_adj, in_lab) = build_csr(n, &edst, &esrc, &elabels, &vlabels);
        let mut fg = FrozenGraph {
            vlabels,
            esrc,
            edst,
            elabels,
            out_off,
            out_adj,
            out_lab,
            in_off,
            in_adj,
            in_lab,
            orig_v,
            orig_e,
            fps: Vec::new(),
            hash_cache: OnceLock::new(),
        };
        // Computed through the free function (not the trait method, whose
        // override would read the still-empty array), over the snapshot's
        // own view — the same label/degree surface the arena exposes, so
        // filter decisions are representation-invariant.
        fg.fps = crate::fingerprint::graph_fingerprints(&fg);
        // Freezing is structure-preserving, so a hash the builder already
        // paid for carries over (the WL hash is id-invariant).
        if let Some(&h) = g.hash_cache.get() {
            let _ = fg.hash_cache.set(h);
        }
        FREEZE_COUNT.fetch_add(1, Ordering::Relaxed);
        CSR_BYTES.fetch_add(fg.csr_bytes() as u64, Ordering::Relaxed);
        FINGERPRINT_BYTES.fetch_add(8 * fg.fps.len() as u64, Ordering::Relaxed);
        fg
    }

    /// Bytes held by the snapshot's arrays.
    pub fn csr_bytes(&self) -> usize {
        4 * (self.vlabels.len()
            + self.esrc.len()
            + self.edst.len()
            + self.elabels.len()
            + self.out_off.len()
            + self.out_adj.len()
            + self.out_lab.len()
            + self.in_off.len()
            + self.in_adj.len()
            + self.in_lab.len()
            + self.orig_v.len()
            + self.orig_e.len())
    }

    /// Rebuilds a mutable [`Graph`] with the snapshot's dense ids.
    pub fn thaw(&self) -> Graph {
        let mut g = Graph::with_capacity(self.vlabels.len(), self.elabels.len());
        for &l in &self.vlabels {
            g.add_vertex(l);
        }
        for i in 0..self.elabels.len() {
            g.add_edge(self.esrc[i], self.edst[i], self.elabels[i]);
        }
        if let Some(&h) = self.hash_cache.get() {
            let _ = g.hash_cache.set(h);
        }
        g
    }

    /// Builder arena id of dense vertex `v`.
    pub fn orig_vertex(&self, v: VertexId) -> VertexId {
        self.orig_v[v.index()]
    }

    /// Builder arena id of dense edge `e`.
    pub fn orig_edge(&self, e: EdgeId) -> EdgeId {
        self.orig_e[e.index()]
    }

    /// Isomorphism-invariant WL hash, memoized. Equal to
    /// [`crate::canon::invariant_hash`] of any isomorphic builder graph.
    pub fn invariant_hash(&self) -> u64 {
        *self.hash_cache.get_or_init(|| wl_hash_view(self))
    }

    fn out_row(&self, v: VertexId) -> &[EdgeId] {
        &self.out_adj[self.out_off[v.index()] as usize..self.out_off[v.index() + 1] as usize]
    }

    fn in_row(&self, v: VertexId) -> &[EdgeId] {
        &self.in_adj[self.in_off[v.index()] as usize..self.in_off[v.index() + 1] as usize]
    }
}

impl std::fmt::Debug for FrozenGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FrozenGraph {{ |V|={}, |E|={} }}",
            self.vlabels.len(),
            self.elabels.len()
        )
    }
}

impl GraphView for FrozenGraph {
    fn vertex_count(&self) -> usize {
        self.vlabels.len()
    }

    fn edge_count(&self) -> usize {
        self.elabels.len()
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vlabels.len() as u32).map(VertexId)
    }

    fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.elabels.len() as u32).map(EdgeId)
    }

    fn vertex_label(&self, v: VertexId) -> VLabel {
        self.vlabels[v.index()]
    }

    fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel) {
        (
            self.esrc[e.index()],
            self.edst[e.index()],
            self.elabels[e.index()],
        )
    }

    fn edge_src(&self, e: EdgeId) -> VertexId {
        self.esrc[e.index()]
    }

    fn edge_dst(&self, e: EdgeId) -> VertexId {
        self.edst[e.index()]
    }

    fn edge_label(&self, e: EdgeId) -> ELabel {
        self.elabels[e.index()]
    }

    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_row(v).iter().copied()
    }

    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_row(v).iter().copied()
    }

    fn out_degree(&self, v: VertexId) -> usize {
        self.out_row(v).len()
    }

    fn in_degree(&self, v: VertexId) -> usize {
        self.in_row(v).len()
    }

    fn visit_out_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        let row =
            &self.out_lab[self.out_off[v.index()] as usize..self.out_off[v.index() + 1] as usize];
        let run = matching_run(
            row,
            |e| {
                (
                    self.elabels[e.index()].0,
                    self.vlabels[self.edst[e.index()].index()].0,
                )
            },
            (el.0, vl.0),
        );
        for &e in run {
            f(e, self.edst[e.index()]);
        }
    }

    fn visit_in_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        let row =
            &self.in_lab[self.in_off[v.index()] as usize..self.in_off[v.index() + 1] as usize];
        let run = matching_run(
            row,
            |e| {
                (
                    self.elabels[e.index()].0,
                    self.vlabels[self.esrc[e.index()].index()].0,
                )
            },
            (el.0, vl.0),
        );
        for &e in run {
            f(e, self.esrc[e.index()]);
        }
    }

    fn has_edge_labeled(&self, s: VertexId, d: VertexId, el: ELabel) -> bool {
        // Narrow to the (label, dst-label) run by binary search, then scan
        // the handful of parallel candidates for the exact endpoint.
        let mut found = false;
        self.visit_out_matching(s, el, self.vlabels[d.index()], &mut |_, dd| {
            found |= dd == d;
        });
        found
    }

    fn vertex_fp(&self, v: VertexId) -> u64 {
        self.fps[v.index()]
    }
}

/// A whole partition's transactions packed into shared arenas.
///
/// Per-transaction vertex/edge ids are **local** (dense from 0), so a
/// [`TxnRef`] looks exactly like a small [`FrozenGraph`]; the backing
/// storage is contiguous across all transactions.
pub struct TxnSet {
    vlabels: Vec<VLabel>,
    esrc: Vec<VertexId>,
    edst: Vec<VertexId>,
    elabels: Vec<ELabel>,
    out_off: Vec<u32>,
    out_adj: Vec<EdgeId>,
    out_lab: Vec<EdgeId>,
    in_off: Vec<u32>,
    in_adj: Vec<EdgeId>,
    in_lab: Vec<EdgeId>,
    /// Per-vertex fingerprints, packed alongside `vlabels`.
    fps: Vec<u64>,
    /// Transaction boundaries into the vertex arrays (`len = n + 1`).
    v_off: Vec<u32>,
    /// Transaction boundaries into the edge arrays (`len = n + 1`).
    e_off: Vec<u32>,
}

impl TxnSet {
    /// Freezes every transaction and packs the snapshots into shared
    /// arenas. Transaction order is preserved; ids inside transaction
    /// `i` are local dense ids, numbered like `transactions[i].freeze()`
    /// would number them.
    pub fn freeze(transactions: &[Graph]) -> TxnSet {
        let mut set = TxnSet {
            vlabels: Vec::new(),
            esrc: Vec::new(),
            edst: Vec::new(),
            elabels: Vec::new(),
            out_off: Vec::new(),
            out_adj: Vec::new(),
            out_lab: Vec::new(),
            in_off: Vec::new(),
            in_adj: Vec::new(),
            in_lab: Vec::new(),
            fps: Vec::new(),
            v_off: vec![0],
            e_off: vec![0],
        };
        for g in transactions {
            let fg = g.freeze();
            let adj_base = set.out_adj.len() as u32;
            // Offsets are global positions into the packed adjacency
            // arrays; the final per-graph offset duplicates the next
            // graph's first, so rows index as off[row]..off[row + 1] with
            // row = v_off[t] + local vertex id... the extra slot per graph
            // is avoided by dropping the leading 0 of each appended run.
            if set.out_off.is_empty() {
                set.out_off.push(0);
                set.in_off.push(0);
            }
            set.out_off
                .extend(fg.out_off.iter().skip(1).map(|&o| o + adj_base));
            set.in_off
                .extend(fg.in_off.iter().skip(1).map(|&o| o + adj_base));
            set.out_adj.extend_from_slice(&fg.out_adj);
            set.out_lab.extend_from_slice(&fg.out_lab);
            set.in_adj.extend_from_slice(&fg.in_adj);
            set.in_lab.extend_from_slice(&fg.in_lab);
            set.vlabels.extend_from_slice(&fg.vlabels);
            set.fps.extend_from_slice(&fg.fps);
            set.esrc.extend_from_slice(&fg.esrc);
            set.edst.extend_from_slice(&fg.edst);
            set.elabels.extend_from_slice(&fg.elabels);
            set.v_off.push(set.vlabels.len() as u32);
            set.e_off.push(set.elabels.len() as u32);
        }
        set
    }

    /// Number of packed transactions.
    pub fn len(&self) -> usize {
        self.v_off.len() - 1
    }

    /// True if the set holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View of transaction `i` (local dense ids).
    pub fn get(&self, i: usize) -> TxnRef<'_> {
        TxnRef {
            set: self,
            v_base: self.v_off[i],
            e_base: self.e_off[i],
            v_count: self.v_off[i + 1] - self.v_off[i],
            e_count: self.e_off[i + 1] - self.e_off[i],
        }
    }

    /// Iterator over all transaction views in order.
    pub fn iter(&self) -> impl Iterator<Item = TxnRef<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// A [`TxnSource`] view of the contiguous transaction range
    /// `lo..hi`, re-numbered from 0. Windows over a shared frozen set
    /// mine through this without re-freezing.
    pub fn slice(&self, lo: usize, hi: usize) -> TxnSlice<'_> {
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        TxnSlice { set: self, lo, hi }
    }

    /// Total packed edges across transactions `lo..hi`.
    pub fn edge_count_in(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi <= self.len());
        (self.e_off[hi] - self.e_off[lo]) as usize
    }
}

/// A contiguous window `lo..hi` of a [`TxnSet`], itself a [`TxnSource`]
/// with transactions re-numbered from 0. Copy-cheap: borrows the set's
/// arenas.
#[derive(Clone, Copy)]
pub struct TxnSlice<'a> {
    set: &'a TxnSet,
    lo: usize,
    hi: usize,
}

impl<'a> TxnSlice<'a> {
    /// First transaction index of the window in the backing set.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// One past the last transaction index in the backing set.
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// The backing set.
    pub fn set(&self) -> &'a TxnSet {
        self.set
    }
}

impl TxnSource for TxnSlice<'_> {
    type View<'a>
        = TxnRef<'a>
    where
        Self: 'a;

    fn txn_count(&self) -> usize {
        self.hi - self.lo
    }

    fn txn(&self, i: usize) -> Self::View<'_> {
        debug_assert!(i < self.hi - self.lo);
        self.set.get(self.lo + i)
    }
}

impl TxnSource for TxnSet {
    type View<'a> = TxnRef<'a>;

    fn txn_count(&self) -> usize {
        self.len()
    }

    fn txn(&self, i: usize) -> Self::View<'_> {
        self.get(i)
    }
}

/// `Copy` read view of one transaction inside a [`TxnSet`]. All ids are
/// local to the transaction.
#[derive(Clone, Copy)]
pub struct TxnRef<'a> {
    set: &'a TxnSet,
    v_base: u32,
    e_base: u32,
    v_count: u32,
    e_count: u32,
}

impl TxnRef<'_> {
    #[inline]
    fn gv(&self, v: VertexId) -> usize {
        (self.v_base + v.0) as usize
    }

    #[inline]
    fn ge(&self, e: EdgeId) -> usize {
        (self.e_base + e.0) as usize
    }

    fn out_row(&self, v: VertexId) -> &[EdgeId] {
        let gv = self.gv(v);
        &self.set.out_adj[self.set.out_off[gv] as usize..self.set.out_off[gv + 1] as usize]
    }

    fn in_row(&self, v: VertexId) -> &[EdgeId] {
        let gv = self.gv(v);
        &self.set.in_adj[self.set.in_off[gv] as usize..self.set.in_off[gv + 1] as usize]
    }
}

impl GraphView for TxnRef<'_> {
    fn vertex_count(&self) -> usize {
        self.v_count as usize
    }

    fn edge_count(&self) -> usize {
        self.e_count as usize
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.v_count).map(VertexId)
    }

    fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.e_count).map(EdgeId)
    }

    fn vertex_label(&self, v: VertexId) -> VLabel {
        self.set.vlabels[self.gv(v)]
    }

    fn edge(&self, e: EdgeId) -> (VertexId, VertexId, ELabel) {
        let ge = self.ge(e);
        (self.set.esrc[ge], self.set.edst[ge], self.set.elabels[ge])
    }

    fn edge_src(&self, e: EdgeId) -> VertexId {
        self.set.esrc[self.ge(e)]
    }

    fn edge_dst(&self, e: EdgeId) -> VertexId {
        self.set.edst[self.ge(e)]
    }

    fn edge_label(&self, e: EdgeId) -> ELabel {
        self.set.elabels[self.ge(e)]
    }

    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_row(v).iter().copied()
    }

    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_row(v).iter().copied()
    }

    fn out_degree(&self, v: VertexId) -> usize {
        self.out_row(v).len()
    }

    fn in_degree(&self, v: VertexId) -> usize {
        self.in_row(v).len()
    }

    fn visit_out_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        let gv = self.gv(v);
        let row =
            &self.set.out_lab[self.set.out_off[gv] as usize..self.set.out_off[gv + 1] as usize];
        let run = matching_run(
            row,
            |e| {
                let ge = self.ge(e);
                (
                    self.set.elabels[ge].0,
                    self.set.vlabels[(self.v_base + self.set.edst[ge].0) as usize].0,
                )
            },
            (el.0, vl.0),
        );
        for &e in run {
            f(e, self.set.edst[self.ge(e)]);
        }
    }

    fn visit_in_matching(
        &self,
        v: VertexId,
        el: ELabel,
        vl: VLabel,
        f: &mut dyn FnMut(EdgeId, VertexId),
    ) {
        let gv = self.gv(v);
        let row = &self.set.in_lab[self.set.in_off[gv] as usize..self.set.in_off[gv + 1] as usize];
        let run = matching_run(
            row,
            |e| {
                let ge = self.ge(e);
                (
                    self.set.elabels[ge].0,
                    self.set.vlabels[(self.v_base + self.set.esrc[ge].0) as usize].0,
                )
            },
            (el.0, vl.0),
        );
        for &e in run {
            f(e, self.set.esrc[self.ge(e)]);
        }
    }

    fn has_edge_labeled(&self, s: VertexId, d: VertexId, el: ELabel) -> bool {
        let mut found = false;
        self.visit_out_matching(s, el, self.vertex_label(d), &mut |_, dd| {
            found |= dd == d;
        });
        found
    }

    fn vertex_fp(&self, v: VertexId) -> u64 {
        self.set.fps[self.gv(v)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::invariant_hash;
    use crate::generate::shapes;
    use crate::iso::are_isomorphic;

    fn messy_graph() -> Graph {
        // Build with tombstones so freezing actually compacts.
        let mut g = Graph::new();
        let vs: Vec<_> = (0..6).map(|i| g.add_vertex(VLabel(i % 3))).collect();
        let mut es = Vec::new();
        for i in 0..6 {
            es.push(g.add_edge(vs[i], vs[(i + 1) % 6], ELabel(i as u32 % 2)));
        }
        g.add_edge(vs[0], vs[3], ELabel(7));
        g.add_edge(vs[0], vs[4], ELabel(7));
        g.remove_edge(es[2]);
        g.remove_vertex(vs[5]);
        g
    }

    #[test]
    fn freeze_thaw_roundtrip_is_isomorphic() {
        let g = messy_graph();
        let fg = g.freeze();
        assert_eq!(GraphView::vertex_count(&fg), g.vertex_count());
        assert_eq!(GraphView::edge_count(&fg), g.edge_count());
        let back = fg.thaw();
        assert!(are_isomorphic(&g, &back));
        assert_eq!(invariant_hash(&g), invariant_hash(&back));
        assert_eq!(invariant_hash(&g), fg.invariant_hash());
    }

    #[test]
    fn freeze_preserves_live_order_and_orig_ids() {
        let g = messy_graph();
        let fg = g.freeze();
        let live_v: Vec<VertexId> = g.vertices().collect();
        let live_e: Vec<EdgeId> = g.edges().collect();
        for (i, &v) in live_v.iter().enumerate() {
            assert_eq!(fg.orig_vertex(VertexId(i as u32)), v);
            assert_eq!(fg.vertex_label(VertexId(i as u32)), g.vertex_label(v));
        }
        for (i, &e) in live_e.iter().enumerate() {
            assert_eq!(fg.orig_edge(EdgeId(i as u32)), e);
            assert_eq!(fg.edge_label(EdgeId(i as u32)), g.edge_label(e));
        }
    }

    #[test]
    fn adjacency_iteration_matches_dense_arena() {
        // On a dense graph, frozen ids equal arena ids and every iterator
        // must yield the identical sequence — the byte-identity contract.
        let g = shapes::hub_and_spoke(5, 0, 1);
        let fg = g.freeze();
        for v in g.vertices() {
            let a: Vec<EdgeId> = g.out_edges(v).collect();
            let b: Vec<EdgeId> = GraphView::out_edges(&fg, v).collect();
            assert_eq!(a, b);
            let a: Vec<EdgeId> = g.in_edges(v).collect();
            let b: Vec<EdgeId> = GraphView::in_edges(&fg, v).collect();
            assert_eq!(a, b);
            assert_eq!(g.out_degree(v), GraphView::out_degree(&fg, v));
            assert_eq!(g.in_degree(v), GraphView::in_degree(&fg, v));
        }
    }

    #[test]
    fn visit_matching_agrees_with_linear_scan() {
        let g = messy_graph();
        let fg = g.freeze();
        let labels: Vec<VLabel> = (0..3).map(VLabel).collect();
        let elabels: Vec<ELabel> = vec![ELabel(0), ELabel(1), ELabel(7)];
        for v in GraphView::vertices(&fg) {
            for &el in &elabels {
                for &vl in &labels {
                    let mut fast: Vec<(EdgeId, VertexId)> = Vec::new();
                    fg.visit_out_matching(v, el, vl, &mut |e, d| fast.push((e, d)));
                    // The default (linear) implementation on the thawed
                    // graph is the reference.
                    let back = fg.thaw();
                    let mut slow: Vec<(EdgeId, VertexId)> = Vec::new();
                    back.visit_out_matching(v, el, vl, &mut |e, d| slow.push((e, d)));
                    assert_eq!(fast, slow, "out v={v:?} el={el:?} vl={vl:?}");
                    let mut fast_in: Vec<(EdgeId, VertexId)> = Vec::new();
                    fg.visit_in_matching(v, el, vl, &mut |e, s| fast_in.push((e, s)));
                    let mut slow_in: Vec<(EdgeId, VertexId)> = Vec::new();
                    back.visit_in_matching(v, el, vl, &mut |e, s| slow_in.push((e, s)));
                    assert_eq!(fast_in, slow_in, "in v={v:?} el={el:?} vl={vl:?}");
                }
            }
        }
    }

    #[test]
    fn txnset_views_match_individual_freezes() {
        let txns = vec![
            messy_graph(),
            shapes::cycle(4, 1, 2),
            shapes::hub_and_spoke(3, 0, 9),
        ];
        let set = TxnSet::freeze(&txns);
        assert_eq!(set.len(), 3);
        for (i, g) in txns.iter().enumerate() {
            let t = set.get(i);
            let fg = g.freeze();
            assert_eq!(GraphView::vertex_count(&t), GraphView::vertex_count(&fg));
            assert_eq!(GraphView::edge_count(&t), GraphView::edge_count(&fg));
            for v in GraphView::vertices(&fg) {
                assert_eq!(t.vertex_label(v), fg.vertex_label(v));
                let a: Vec<EdgeId> = GraphView::out_edges(&t, v).collect();
                let b: Vec<EdgeId> = GraphView::out_edges(&fg, v).collect();
                assert_eq!(a, b, "txn {i} out row of {v:?}");
                let a: Vec<EdgeId> = GraphView::in_edges(&t, v).collect();
                let b: Vec<EdgeId> = GraphView::in_edges(&fg, v).collect();
                assert_eq!(a, b, "txn {i} in row of {v:?}");
            }
            for e in GraphView::edges(&fg) {
                assert_eq!(GraphView::edge(&t, e), GraphView::edge(&fg, e));
            }
            assert!(are_isomorphic(&fg.thaw(), g));
        }
    }

    #[test]
    fn stats_accumulate() {
        let before = FrozenStats::snapshot();
        let g = shapes::cycle(5, 0, 1);
        let fg = g.freeze();
        let mut n = 0u64;
        fg.visit_out_matching(VertexId(0), ELabel(1), VLabel(0), &mut |_, _| {});
        n += 1;
        let after = FrozenStats::snapshot().since(&before);
        assert!(after.freeze_count >= 1);
        assert!(after.csr_bytes >= fg.csr_bytes() as u64);
        assert!(after.adj_binary_searches >= n);
        assert!(
            after.fingerprint_bytes >= 8 * GraphView::vertex_count(&fg) as u64,
            "freeze must account its fingerprint array"
        );
        let mut names = Vec::new();
        after.publish(&mut |name, _| names.push(name.to_string()));
        assert_eq!(
            names,
            [
                "graph.freeze_count",
                "graph.csr_bytes",
                "graph.adj_binary_searches",
                "graph.fingerprint_bytes"
            ]
        );
    }
}
