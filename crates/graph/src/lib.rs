//! # tnet-graph
//!
//! Labeled directed multigraph substrate for transportation-network
//! mining — the shared foundation of the `tnet-mine` workspace
//! (a Rust reproduction of *Knowledge Discovery from Transportation
//! Network Data*, ICDE 2005).
//!
//! Provides:
//!
//! * [`graph::GraphBuilder`] (alias [`graph::Graph`]) — arena-based
//!   directed labeled multigraph with tombstone deletion (what ingest
//!   builds and the partitioners peel edges from);
//! * [`frozen`] — immutable [`frozen::FrozenGraph`] CSR snapshots
//!   (`freeze()`/`thaw()`) with label-sorted adjacency, and
//!   [`frozen::TxnSet`], a whole partition's transactions packed into
//!   shared arenas — the read side every miner traverses;
//! * [`view`] — the [`view::GraphView`] read trait both representations
//!   implement (and [`view::TxnSource`] for transaction collections);
//! * [`traverse`] — BFS/DFS, weakly connected components;
//! * [`iso`] — VF2-style subgraph monomorphism & graph isomorphism,
//!   implementing the paper's §4 pattern-identity definition;
//! * [`canon`] — isomorphism-invariant hashing and iso-class keyed maps
//!   (pattern dedup for the miners);
//! * [`generate`] — random graphs, planted-pattern composites (footnote 2
//!   recall experiment), and the paper's "known good shapes";
//! * [`rng`] — in-tree seeded PRNG (splitmix64 + xoshiro256\*\*), the
//!   workspace-wide replacement for the external `rand` crate;
//! * [`stats`], [`dot`] — summaries and rendering;
//! * [`hash`] — fast Fx hashing used throughout the workspace.
//!
//! ## Quick example
//!
//! ```
//! use tnet_graph::graph::{Graph, VLabel, ELabel};
//! use tnet_graph::iso::has_embedding;
//!
//! // A tiny transportation graph: factory ships to two stores.
//! let mut g = Graph::new();
//! let factory = g.add_vertex(VLabel(0));
//! let store_a = g.add_vertex(VLabel(0));
//! let store_b = g.add_vertex(VLabel(0));
//! g.add_edge(factory, store_a, ELabel(1)); // light load
//! g.add_edge(factory, store_b, ELabel(1));
//!
//! // Does the 2-spoke hub pattern occur?
//! let pattern = tnet_graph::generate::shapes::hub_and_spoke(2, 0, 1);
//! assert!(has_embedding(&pattern, &g));
//! ```

pub mod canon;
pub mod delta;
pub mod dot;
pub mod fingerprint;
pub mod frozen;
pub mod generate;
pub mod graph;
pub mod hash;
pub mod iso;
pub mod rng;
pub mod stats;
pub mod traverse;
pub mod view;

pub use delta::GraphDelta;
pub use frozen::{FrozenGraph, FrozenStats, TxnRef, TxnSet, TxnSlice};
pub use graph::{ELabel, EdgeId, Graph, GraphBuilder, VLabel, VertexId};
pub use view::{GraphView, TxnSource};
