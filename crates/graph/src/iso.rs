//! Subgraph monomorphism and graph isomorphism (VF2-style backtracking).
//!
//! Both miners reduce to the same primitive: *does pattern `P` occur in
//! graph `G`?* — where an occurrence is an injective mapping of `P`'s
//! vertices into `G`'s vertices that preserves vertex labels and maps every
//! directed labeled edge of `P` onto a distinct directed labeled edge of
//! `G` (§4 of the paper spells out this definition).
//!
//! The implementation is a VF2-flavoured backtracking search:
//!
//! * pattern vertices are matched in a connectivity-first order, so every
//!   vertex after the first is constrained by at least one already-matched
//!   neighbour (unless the pattern is disconnected);
//! * candidates for a constrained vertex are drawn from the adjacency of
//!   the already-mapped anchor, not from all of `G`;
//! * label and degree feasibility prune before recursion.
//!
//! Parallel edges are handled by multiplicity counting: if `P` has `k`
//! edges `(u, v, l)`, the image pair must carry at least `k` such edges.

use crate::graph::{ELabel, Graph, VLabel, VertexId};
use crate::hash::{FxHashMap, FxHashSet};

/// One occurrence of a pattern: `assignment[i]` is the target vertex that
/// pattern vertex `i` (in dense order after `search_order`) maps to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    /// Pattern vertex -> target vertex.
    pub map: FxHashMap<VertexId, VertexId>,
}

impl Embedding {
    /// The set of target vertices used by this embedding.
    pub fn target_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.map.values().copied()
    }

    /// True if the two embeddings share any target vertex.
    pub fn overlaps(&self, other: &Embedding) -> bool {
        let mine: FxHashSet<VertexId> = self.map.values().copied().collect();
        other.map.values().any(|v| mine.contains(v))
    }
}

/// Controls how many embeddings [`Matcher::find`] collects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Find {
    /// Stop after the first embedding (existence check).
    First,
    /// Collect at most this many embeddings.
    AtMost(usize),
    /// Collect all embeddings (beware combinatorial blow-up on symmetric
    /// patterns).
    All,
}

struct SearchPlan {
    /// Pattern vertices in match order.
    order: Vec<VertexId>,
    /// For `order[i]` (i > 0): edges to already-matched pattern vertices,
    /// as `(matched_vertex, label, outgoing_from_new)` with multiplicity.
    back_edges: Vec<Vec<(VertexId, ELabel, bool)>>,
    /// Anchor for candidate generation: Some((matched vertex, label,
    /// new_is_dst)) — the new vertex must be adjacent to this one.
    anchor: Vec<Option<(VertexId, ELabel, bool)>>,
    /// Symmetry breaking for "twin" leaves — pattern vertices of degree 1
    /// hanging off the same anchor with identical labels/direction are
    /// interchangeable, so their images are forced into ascending id
    /// order. `twin_prev[i] = Some(j)` requires
    /// `assignment[i] > assignment[j]`. Without this, a failing match of
    /// a k-spoke hub explores k! equivalent orderings.
    twin_prev: Vec<Option<usize>>,
}

fn build_plan(pattern: &Graph) -> SearchPlan {
    let mut order: Vec<VertexId> = Vec::with_capacity(pattern.vertex_count());
    let mut placed: FxHashSet<VertexId> = FxHashSet::default();
    let all: Vec<VertexId> = pattern.vertices().collect();

    // Start from the highest-degree vertex: it constrains the search most.
    if let Some(&start) = all.iter().max_by_key(|&&v| pattern.degree(v)) {
        order.push(start);
        placed.insert(start);
    }
    while order.len() < all.len() {
        // Prefer a vertex adjacent to the already-placed set with maximal
        // connectivity into it; fall back to any unplaced vertex
        // (disconnected patterns).
        let next = all
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .max_by_key(|&v| {
                pattern
                    .incident_edges(v)
                    .filter(|&e| {
                        let (s, d, _) = pattern.edge(e);
                        let other = if s == v { d } else { s };
                        placed.contains(&other)
                    })
                    .count()
            })
            .expect("unplaced vertex must exist");
        order.push(next);
        placed.insert(next);
    }

    let pos: FxHashMap<VertexId, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut back_edges = vec![Vec::new(); order.len()];
    let mut anchor = vec![None; order.len()];
    for (i, &v) in order.iter().enumerate() {
        for e in pattern.out_edges(v) {
            let (_, d, l) = pattern.edge(e);
            if pos[&d] < i {
                back_edges[i].push((d, l, true));
            }
        }
        for e in pattern.in_edges(v) {
            let (s, _, l) = pattern.edge(e);
            if pos[&s] < i {
                back_edges[i].push((s, l, false));
            }
        }
        if let Some(&(m, l, out)) = back_edges[i].first() {
            // If the new vertex has an outgoing back edge v->m, then in the
            // target the candidate is an *in*-neighbor source... careful:
            // back edge (m, l, true) means pattern edge v -> m. Candidates
            // for v are target vertices with an edge into image(m).
            anchor[i] = Some((m, l, out));
        }
    }
    // Twin detection: degree-1 vertices with identical
    // (anchor, direction, edge label, vertex label) signatures.
    let mut twin_prev = vec![None; order.len()];
    let signature = |i: usize| -> Option<(VertexId, bool, ELabel, VLabel)> {
        let v = order[i];
        if pattern.degree(v) != 1 || back_edges[i].len() != 1 {
            return None;
        }
        let (m, l, out) = back_edges[i][0];
        Some((m, out, l, pattern.vertex_label(v)))
    };
    for (i, twin) in twin_prev.iter_mut().enumerate().skip(1) {
        let Some(sig) = signature(i) else { continue };
        for j in (1..i).rev() {
            if signature(j) == Some(sig) {
                *twin = Some(j);
                break;
            }
        }
    }
    SearchPlan {
        order,
        back_edges,
        anchor,
        twin_prev,
    }
}

/// Reusable matcher for one pattern against many targets.
///
/// Building the matcher precomputes the pattern's search plan and label
/// requirements; [`Matcher::find`] then runs against any target graph.
pub struct Matcher {
    plan: SearchPlan,
    vlabels: Vec<VLabel>,
    /// Pattern edge multiplicities keyed by (src, dst, label) — used to
    /// require sufficient parallel-edge counts in the target.
    multiplicity: FxHashMap<(VertexId, VertexId, ELabel), usize>,
    pattern_degrees: FxHashMap<VertexId, (usize, usize)>,
}

impl Matcher {
    /// Prepares a matcher for `pattern`. Cheap for the small patterns the
    /// miners produce; reuse it across transactions.
    pub fn new(pattern: &Graph) -> Self {
        let plan = build_plan(pattern);
        let vlabels = plan
            .order
            .iter()
            .map(|&v| pattern.vertex_label(v))
            .collect();
        let mut multiplicity: FxHashMap<(VertexId, VertexId, ELabel), usize> = FxHashMap::default();
        for e in pattern.edges() {
            *multiplicity.entry(pattern.edge(e)).or_insert(0) += 1;
        }
        let pattern_degrees = pattern
            .vertices()
            .map(|v| (v, (pattern.out_degree(v), pattern.in_degree(v))))
            .collect();
        Matcher {
            plan,
            vlabels,
            multiplicity,
            pattern_degrees,
        }
    }

    /// Searches for embeddings of the pattern in `target`.
    ///
    /// Embeddings are enumerated *up to twin-leaf permutation*:
    /// interchangeable degree-1 pattern vertices (same anchor, labels,
    /// direction) are assigned in ascending target-id order, so each
    /// unordered choice of their images appears exactly once. Existence,
    /// supports, and disjoint counts are unaffected; only the raw
    /// embedding multiplicity of symmetric patterns is reduced.
    pub fn find(&self, target: &Graph, mode: Find) -> Vec<Embedding> {
        let limit = match mode {
            Find::First => 1,
            Find::AtMost(n) => n,
            Find::All => usize::MAX,
        };
        if limit == 0 || self.plan.order.is_empty() {
            return Vec::new();
        }
        let mut results = Vec::new();
        let mut assignment: Vec<VertexId> = Vec::with_capacity(self.plan.order.len());
        let mut used: FxHashSet<VertexId> = FxHashSet::default();
        self.recurse(target, &mut assignment, &mut used, &mut results, limit);
        results
    }

    /// True if at least one embedding exists.
    pub fn matches(&self, target: &Graph) -> bool {
        !self.find(target, Find::First).is_empty()
    }

    fn image(&self, assignment: &[VertexId], pv: VertexId) -> VertexId {
        let idx = self
            .plan
            .order
            .iter()
            .position(|&v| v == pv)
            .expect("back edge to unmatched vertex");
        assignment[idx]
    }

    fn feasible(
        &self,
        target: &Graph,
        assignment: &[VertexId],
        depth: usize,
        candidate: VertexId,
    ) -> bool {
        if target.vertex_label(candidate) != self.vlabels[depth] {
            return false;
        }
        let pv = self.plan.order[depth];
        let (pout, pin) = self.pattern_degrees[&pv];
        if target.out_degree(candidate) < pout || target.in_degree(candidate) < pin {
            return false;
        }
        // Self-loops never appear as back edges (they connect a vertex to
        // itself, not to an earlier one), so verify them here.
        for (&(s, d, l), &need) in &self.multiplicity {
            if s == pv && d == pv {
                let have = target
                    .out_edges(candidate)
                    .filter(|&e| {
                        let (_, dd, ll) = target.edge(e);
                        dd == candidate && ll == l
                    })
                    .count();
                if have < need {
                    return false;
                }
            }
        }
        // Every pattern back edge must have enough parallel target edges.
        for &(m, _l, out) in &self.plan.back_edges[depth] {
            let tm = self.image(assignment, m);
            let (ps, pd) = if out { (pv, m) } else { (m, pv) };
            let (ts, td) = if out {
                (candidate, tm)
            } else {
                (tm, candidate)
            };
            // Sum multiplicity over labels for this ordered pair once per
            // distinct (pair,label); recomputing per back edge is fine for
            // the tiny patterns in play.
            for (&(s, d, l), &need) in &self.multiplicity {
                if s == ps && d == pd {
                    let have = target
                        .out_edges(ts)
                        .filter(|&e| {
                            let (_, dd, ll) = target.edge(e);
                            dd == td && ll == l
                        })
                        .count();
                    if have < need {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn recurse(
        &self,
        target: &Graph,
        assignment: &mut Vec<VertexId>,
        used: &mut FxHashSet<VertexId>,
        results: &mut Vec<Embedding>,
        limit: usize,
    ) -> bool {
        let depth = assignment.len();
        if depth == self.plan.order.len() {
            let map = self
                .plan
                .order
                .iter()
                .copied()
                .zip(assignment.iter().copied())
                .collect();
            results.push(Embedding { map });
            return results.len() >= limit;
        }
        let candidates: Vec<VertexId> = match self.plan.anchor[depth] {
            Some((m, l, out)) => {
                let tm = self.image(assignment, m);
                if out {
                    // pattern edge new->m: candidates are sources of
                    // in-edges of image(m) with label l.
                    target
                        .in_edges(tm)
                        .filter(|&e| target.edge_label(e) == l)
                        .map(|e| target.edge_src(e))
                        .collect()
                } else {
                    target
                        .out_edges(tm)
                        .filter(|&e| target.edge_label(e) == l)
                        .map(|e| target.edge_dst(e))
                        .collect()
                }
            }
            None => target.vertices().collect(),
        };
        let twin_floor = self.plan.twin_prev[depth].map(|j| assignment[j]);
        let mut local_seen: FxHashSet<VertexId> = FxHashSet::default();
        for c in candidates {
            if used.contains(&c) || !local_seen.insert(c) {
                continue;
            }
            // Interchangeable twin leaves: only ascending-id assignments
            // (each unordered choice of images is explored once).
            if twin_floor.is_some_and(|f| c <= f) {
                continue;
            }
            if !self.feasible(target, assignment, depth, c) {
                continue;
            }
            assignment.push(c);
            used.insert(c);
            let done = self.recurse(target, assignment, used, results, limit);
            assignment.pop();
            used.remove(&c);
            if done {
                return true;
            }
        }
        false
    }
}

/// Existence check: does `pattern` occur in `target` (per §4's definition)?
pub fn has_embedding(pattern: &Graph, target: &Graph) -> bool {
    if pattern.vertex_count() > target.vertex_count() || pattern.edge_count() > target.edge_count()
    {
        return false;
    }
    Matcher::new(pattern).matches(target)
}

/// All embeddings of `pattern` in `target` (use with care on symmetric
/// patterns in dense targets).
pub fn find_embeddings(pattern: &Graph, target: &Graph, mode: Find) -> Vec<Embedding> {
    Matcher::new(pattern).find(target, mode)
}

/// Exact isomorphism of two labeled directed multigraphs.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.vertex_label_histogram() != b.vertex_label_histogram()
        || a.edge_label_histogram() != b.edge_label_histogram()
    {
        return false;
    }
    // A monomorphism between same-size graphs with equal edge counts is a
    // bijection on vertices; equal per-pair multiplicities then force edge
    // bijectivity too (each pair's multiplicity in b is >= that of a, and
    // totals agree).
    has_embedding(a, b)
}

/// Greedily selects a maximal set of pairwise vertex-disjoint embeddings
/// from `embeddings`, preferring earlier entries. SUBDUE counts pattern
/// instances "without allowing overlap" — this is that filter.
pub fn disjoint_subset(embeddings: &[Embedding]) -> Vec<Embedding> {
    let mut used: FxHashSet<VertexId> = FxHashSet::default();
    let mut out = Vec::new();
    for emb in embeddings {
        if emb.target_vertices().any(|v| used.contains(&v)) {
            continue;
        }
        used.extend(emb.target_vertices());
        out.push(emb.clone());
    }
    out
}

/// Counts vertex-disjoint occurrences of `pattern` in `target` by greedy
/// selection over all embeddings.
pub fn count_disjoint(pattern: &Graph, target: &Graph) -> usize {
    let all = find_embeddings(pattern, target, Find::All);
    disjoint_subset(&all).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ELabel, VLabel};

    fn path(labels: &[u32], elabels: &[u32]) -> Graph {
        assert_eq!(labels.len(), elabels.len() + 1);
        let mut g = Graph::new();
        let vs: Vec<VertexId> = labels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
        for (i, &el) in elabels.iter().enumerate() {
            g.add_edge(vs[i], vs[i + 1], ELabel(el));
        }
        g
    }

    #[test]
    fn path_in_path() {
        let p = path(&[0, 0], &[5]);
        let t = path(&[0, 0, 0], &[5, 5]);
        assert!(has_embedding(&p, &t));
        let all = find_embeddings(&p, &t, Find::All);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn label_mismatch_blocks() {
        let p = path(&[0, 0], &[5]);
        let t = path(&[0, 0], &[6]);
        assert!(!has_embedding(&p, &t));
        let t2 = path(&[0, 1], &[5]);
        assert!(!has_embedding(&p, &t2));
    }

    #[test]
    fn direction_matters() {
        let mut t = Graph::new();
        let a = t.add_vertex(VLabel(0));
        let b = t.add_vertex(VLabel(0));
        t.add_edge(a, b, ELabel(0));
        let mut p = Graph::new();
        let x = p.add_vertex(VLabel(0));
        let y = p.add_vertex(VLabel(0));
        p.add_edge(y, x, ELabel(0)); // same shape, same direction class
        assert!(has_embedding(&p, &t)); // x:=b, y:=a works
                                        // but a 2-cycle pattern must not embed in a single directed edge
        let mut c = Graph::new();
        let u = c.add_vertex(VLabel(0));
        let v = c.add_vertex(VLabel(0));
        c.add_edge(u, v, ELabel(0));
        c.add_edge(v, u, ELabel(0));
        assert!(!has_embedding(&c, &t));
    }

    #[test]
    fn injective_vertices() {
        // Pattern: two distinct out-edges from a hub; target has only one.
        let mut p = Graph::new();
        let h = p.add_vertex(VLabel(0));
        let a = p.add_vertex(VLabel(0));
        let b = p.add_vertex(VLabel(0));
        p.add_edge(h, a, ELabel(0));
        p.add_edge(h, b, ELabel(0));
        let t = path(&[0, 0], &[0]);
        assert!(!has_embedding(&p, &t));
    }

    #[test]
    fn parallel_edge_multiplicity() {
        let mut p = Graph::new();
        let a = p.add_vertex(VLabel(0));
        let b = p.add_vertex(VLabel(0));
        p.add_edge(a, b, ELabel(1));
        p.add_edge(a, b, ELabel(1));
        // Target with a single such edge: no match.
        let mut t1 = Graph::new();
        let x = t1.add_vertex(VLabel(0));
        let y = t1.add_vertex(VLabel(0));
        t1.add_edge(x, y, ELabel(1));
        assert!(!has_embedding(&p, &t1));
        // Target with two parallel edges: match.
        t1.add_edge(x, y, ELabel(1));
        assert!(has_embedding(&p, &t1));
    }

    #[test]
    fn hub_and_spoke_embeds() {
        // 3-spoke hub pattern inside a 5-spoke hub target.
        let mut p = Graph::new();
        let h = p.add_vertex(VLabel(0));
        for _ in 0..3 {
            let s = p.add_vertex(VLabel(0));
            p.add_edge(h, s, ELabel(2));
        }
        let mut t = Graph::new();
        let th = t.add_vertex(VLabel(0));
        for _ in 0..5 {
            let s = t.add_vertex(VLabel(0));
            t.add_edge(th, s, ELabel(2));
        }
        assert!(has_embedding(&p, &t));
        // Twin-leaf symmetry breaking: C(5,3) = 10 unordered spoke
        // choices (not 5*4*3 = 60 ordered ones).
        assert_eq!(find_embeddings(&p, &t, Find::All).len(), 10);
        assert_eq!(find_embeddings(&p, &t, Find::AtMost(7)).len(), 7);
    }

    #[test]
    fn isomorphism_positive_and_negative() {
        let a = path(&[1, 2, 3], &[7, 8]);
        let b = path(&[1, 2, 3], &[7, 8]);
        assert!(are_isomorphic(&a, &b));
        let c = path(&[1, 2, 3], &[8, 7]);
        assert!(!are_isomorphic(&a, &c));
        let d = path(&[3, 2, 1], &[8, 7]); // reversed path = same graph? No:
                                           // d's edges: 3-[8]->2, 2-[7]->1; a's: 1-[7]->2, 2-[8]->3. Relabel
                                           // mapping 1<->3 sends a's 1-[7]->2 to 3-[7]->2 which d lacks.
        assert!(!are_isomorphic(&a, &d));
    }

    #[test]
    fn isomorphism_cycle_rotation() {
        let mk = |rot: usize| {
            let mut g = Graph::new();
            let vs: Vec<_> = (0..4).map(|_| g.add_vertex(VLabel(0))).collect();
            for i in 0..4 {
                g.add_edge(
                    vs[(i + rot) % 4],
                    vs[(i + rot + 1) % 4],
                    ELabel(i as u32 % 2),
                );
            }
            g
        };
        assert!(are_isomorphic(&mk(0), &mk(2)));
    }

    #[test]
    fn disjoint_count() {
        // Target: two separate a->b edges; pattern: one a->b edge.
        let mut t = Graph::new();
        for _ in 0..2 {
            let a = t.add_vertex(VLabel(0));
            let b = t.add_vertex(VLabel(0));
            t.add_edge(a, b, ELabel(0));
        }
        let p = path(&[0, 0], &[0]);
        assert_eq!(count_disjoint(&p, &t), 2);
        // A 3-vertex chain target holds only one disjoint 2-vertex edge
        // pattern... actually chain a->b->c has 2 embeddings sharing b.
        let chain = path(&[0, 0, 0], &[0, 0]);
        assert_eq!(count_disjoint(&p, &chain), 1);
    }

    #[test]
    fn empty_pattern_no_embeddings() {
        let p = Graph::new();
        let t = path(&[0, 0], &[0]);
        assert!(find_embeddings(&p, &t, Find::All).is_empty());
    }

    #[test]
    fn disconnected_pattern() {
        // Pattern: two isolated edges; target has them.
        let mut p = Graph::new();
        let a = p.add_vertex(VLabel(1));
        let b = p.add_vertex(VLabel(2));
        p.add_edge(a, b, ELabel(0));
        let c = p.add_vertex(VLabel(3));
        let d = p.add_vertex(VLabel(4));
        p.add_edge(c, d, ELabel(0));
        let mut t = Graph::new();
        let ta = t.add_vertex(VLabel(1));
        let tb = t.add_vertex(VLabel(2));
        let tc = t.add_vertex(VLabel(3));
        let td = t.add_vertex(VLabel(4));
        t.add_edge(ta, tb, ELabel(0));
        t.add_edge(tc, td, ELabel(0));
        assert!(has_embedding(&p, &t));
    }
}
