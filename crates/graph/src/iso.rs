//! Subgraph monomorphism and graph isomorphism (VF2-style backtracking).
//!
//! Both miners reduce to the same primitive: *does pattern `P` occur in
//! graph `G`?* — where an occurrence is an injective mapping of `P`'s
//! vertices into `G`'s vertices that preserves vertex labels and maps every
//! directed labeled edge of `P` onto a distinct directed labeled edge of
//! `G` (§4 of the paper spells out this definition).
//!
//! The implementation is a VF2-flavoured backtracking search:
//!
//! * pattern vertices are matched in a connectivity-first order, so every
//!   vertex after the first is constrained by at least one already-matched
//!   neighbour (unless the pattern is disconnected);
//! * candidates for a constrained vertex are drawn from the adjacency of
//!   the already-mapped anchor, not from all of `G`;
//! * label and degree feasibility prune before recursion.
//!
//! Parallel edges are handled by multiplicity counting: if `P` has `k`
//! edges `(u, v, l)`, the image pair must carry at least `k` such edges.

use crate::graph::{ELabel, Graph, VLabel, VertexId};
use crate::hash::{FxHashMap, FxHashSet};
use crate::view::GraphView;

/// Sentinel for a pattern-vertex slot with no image (dead arena slots in
/// non-dense patterns). Never a valid target id: the arena is `u32`
/// indexed and a graph of `u32::MAX` vertices is unrepresentable.
const UNMAPPED: VertexId = VertexId(u32::MAX);

/// One occurrence of a pattern: a flat vector mapping pattern vertex `i`
/// (by arena index) to its target vertex.
///
/// Miners' pattern graphs are dense (append-only construction), so the
/// vector has no holes in practice; tombstoned pattern slots hold an
/// internal sentinel and are skipped by the accessors. The flat layout is
/// what makes embedding-list propagation cheap: no per-embedding hash
/// map, and extending by one appended pattern vertex is a `push`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    assignment: Vec<VertexId>,
}

impl Embedding {
    /// Builds an embedding from a flat assignment (`assignment[i]` =
    /// image of pattern vertex `i`). Intended for callers that enumerate
    /// occurrences directly (e.g. single-edge pattern scans).
    pub fn from_assignment(assignment: Vec<VertexId>) -> Embedding {
        Embedding { assignment }
    }

    /// Image of pattern vertex `pv`.
    ///
    /// # Panics
    /// Panics if `pv` has no image (out of range or dead pattern slot).
    #[inline]
    pub fn image(&self, pv: VertexId) -> VertexId {
        let tv = self.assignment[pv.index()];
        debug_assert_ne!(tv, UNMAPPED, "image() of unmapped {pv:?}");
        tv
    }

    /// Image of pattern vertex `pv`, or `None` for unmapped slots.
    pub fn get(&self, pv: VertexId) -> Option<VertexId> {
        match self.assignment.get(pv.index()) {
            Some(&tv) if tv != UNMAPPED => Some(tv),
            _ => None,
        }
    }

    /// Number of mapped pattern vertices.
    pub fn len(&self) -> usize {
        self.target_vertices().count()
    }

    /// True if no pattern vertex is mapped.
    pub fn is_empty(&self) -> bool {
        self.target_vertices().next().is_none()
    }

    /// The set of target vertices used by this embedding.
    pub fn target_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.assignment.iter().copied().filter(|&v| v != UNMAPPED)
    }

    /// True if some pattern vertex maps onto target vertex `tv`.
    #[inline]
    pub fn maps_onto(&self, tv: VertexId) -> bool {
        self.assignment.contains(&tv)
    }

    /// True if the two embeddings share any target vertex. Allocation-free
    /// linear scan — embeddings are pattern-sized (a handful of slots).
    pub fn overlaps(&self, other: &Embedding) -> bool {
        self.assignment
            .iter()
            .any(|&v| v != UNMAPPED && other.assignment.contains(&v))
    }

    /// The flat assignment slice (`[i]` = image of pattern vertex `i`).
    /// What the structure-of-arrays stores copy in and out.
    pub fn as_row(&self) -> &[VertexId] {
        &self.assignment
    }
}

/// Controls how many embeddings [`Matcher::find`] collects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Find {
    /// Stop after the first embedding (existence check).
    First,
    /// Collect at most this many embeddings.
    AtMost(usize),
    /// Collect all embeddings (beware combinatorial blow-up on symmetric
    /// patterns).
    All,
}

struct SearchPlan {
    /// Pattern vertices in match order.
    order: Vec<VertexId>,
    /// For `order[i]` (i > 0): edges to already-matched pattern vertices,
    /// as `(matched_vertex, label, outgoing_from_new)` with multiplicity.
    back_edges: Vec<Vec<(VertexId, ELabel, bool)>>,
    /// Anchor for candidate generation: Some((matched vertex, label,
    /// new_is_dst)) — the new vertex must be adjacent to this one.
    anchor: Vec<Option<(VertexId, ELabel, bool)>>,
    /// Symmetry breaking for "twin" leaves — pattern vertices of degree 1
    /// hanging off the same anchor with identical labels/direction are
    /// interchangeable, so their images are forced into ascending id
    /// order. `twin_prev[i] = Some(j)` requires
    /// `assignment[i] > assignment[j]`. Without this, a failing match of
    /// a k-spoke hub explores k! equivalent orderings.
    twin_prev: Vec<Option<usize>>,
    /// For anchor-less depths (the search root, plus each new component
    /// of a disconnected pattern): the label and direction of one pattern
    /// edge incident to `order[depth]`, or `None` for isolated vertices.
    /// Any image of that vertex must carry a same-direction edge with
    /// this label, so candidate roots are harvested from the target's
    /// matching edge endpoints instead of scanning every vertex — a pure
    /// necessary-condition filter that leaves the embedding enumeration
    /// (and its order) unchanged.
    root_edge: Vec<Option<(ELabel, bool)>>,
}

/// Number of target edges `ts -> td` with label `l`.
fn count_pair<G: GraphView>(target: &G, ts: VertexId, td: VertexId, l: ELabel) -> usize {
    target
        .out_edges(ts)
        .filter(|&e| {
            let (_, dd, ll) = target.edge(e);
            dd == td && ll == l
        })
        .count()
}

fn build_plan(pattern: &Graph) -> SearchPlan {
    let mut order: Vec<VertexId> = Vec::with_capacity(pattern.vertex_count());
    let mut placed: FxHashSet<VertexId> = FxHashSet::default();
    let all: Vec<VertexId> = pattern.vertices().collect();

    // Start from the highest-degree vertex: it constrains the search most.
    if let Some(&start) = all.iter().max_by_key(|&&v| pattern.degree(v)) {
        order.push(start);
        placed.insert(start);
    }
    while order.len() < all.len() {
        // Prefer a vertex adjacent to the already-placed set with maximal
        // connectivity into it; fall back to any unplaced vertex
        // (disconnected patterns).
        let next = all
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .max_by_key(|&v| {
                pattern
                    .incident_edges(v)
                    .filter(|&e| {
                        let (s, d, _) = pattern.edge(e);
                        let other = if s == v { d } else { s };
                        placed.contains(&other)
                    })
                    .count()
            })
            .expect("unplaced vertex must exist");
        order.push(next);
        placed.insert(next);
    }

    let pos: FxHashMap<VertexId, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut back_edges = vec![Vec::new(); order.len()];
    let mut anchor = vec![None; order.len()];
    for (i, &v) in order.iter().enumerate() {
        for e in pattern.out_edges(v) {
            let (_, d, l) = pattern.edge(e);
            if pos[&d] < i {
                back_edges[i].push((d, l, true));
            }
        }
        for e in pattern.in_edges(v) {
            let (s, _, l) = pattern.edge(e);
            if pos[&s] < i {
                back_edges[i].push((s, l, false));
            }
        }
        if let Some(&(m, l, out)) = back_edges[i].first() {
            // If the new vertex has an outgoing back edge v->m, then in the
            // target the candidate is an *in*-neighbor source... careful:
            // back edge (m, l, true) means pattern edge v -> m. Candidates
            // for v are target vertices with an edge into image(m).
            anchor[i] = Some((m, l, out));
        }
    }
    // Twin detection: degree-1 vertices with identical
    // (anchor, direction, edge label, vertex label) signatures.
    let mut twin_prev = vec![None; order.len()];
    let signature = |i: usize| -> Option<(VertexId, bool, ELabel, VLabel)> {
        let v = order[i];
        if pattern.degree(v) != 1 || back_edges[i].len() != 1 {
            return None;
        }
        let (m, l, out) = back_edges[i][0];
        Some((m, out, l, pattern.vertex_label(v)))
    };
    for (i, twin) in twin_prev.iter_mut().enumerate().skip(1) {
        let Some(sig) = signature(i) else { continue };
        for j in (1..i).rev() {
            if signature(j) == Some(sig) {
                *twin = Some(j);
                break;
            }
        }
    }
    let root_edge = order
        .iter()
        .zip(&anchor)
        .map(|(&v, a)| {
            if a.is_some() {
                return None;
            }
            pattern
                .out_edges(v)
                .next()
                .map(|e| (pattern.edge_label(e), true))
                .or_else(|| {
                    pattern
                        .in_edges(v)
                        .next()
                        .map(|e| (pattern.edge_label(e), false))
                })
        })
        .collect();
    SearchPlan {
        order,
        back_edges,
        anchor,
        twin_prev,
        root_edge,
    }
}

/// Reusable matcher for one pattern against many targets.
///
/// Building the matcher precomputes the pattern's search plan and label
/// requirements; [`Matcher::find`] then runs against any target graph.
pub struct Matcher {
    plan: SearchPlan,
    vlabels: Vec<VLabel>,
    /// Pattern edge multiplicities keyed by (src, dst, label) — used to
    /// require sufficient parallel-edge counts in the target.
    multiplicity: FxHashMap<(VertexId, VertexId, ELabel), usize>,
    pattern_degrees: FxHashMap<VertexId, (usize, usize)>,
    /// Flat-assignment slot count: 1 + the largest pattern vertex index.
    slots: usize,
}

impl Matcher {
    /// Prepares a matcher for `pattern`. Cheap for the small patterns the
    /// miners produce; reuse it across transactions.
    pub fn new(pattern: &Graph) -> Self {
        let plan = build_plan(pattern);
        let vlabels = plan
            .order
            .iter()
            .map(|&v| pattern.vertex_label(v))
            .collect();
        let mut multiplicity: FxHashMap<(VertexId, VertexId, ELabel), usize> = FxHashMap::default();
        for e in pattern.edges() {
            *multiplicity.entry(pattern.edge(e)).or_insert(0) += 1;
        }
        let pattern_degrees = pattern
            .vertices()
            .map(|v| (v, (pattern.out_degree(v), pattern.in_degree(v))))
            .collect();
        let slots = plan.order.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Matcher {
            plan,
            vlabels,
            multiplicity,
            pattern_degrees,
            slots,
        }
    }

    /// Searches for embeddings of the pattern in `target`.
    ///
    /// Embeddings are enumerated *up to twin-leaf permutation*:
    /// interchangeable degree-1 pattern vertices (same anchor, labels,
    /// direction) are assigned in ascending target-id order, so each
    /// unordered choice of their images appears exactly once. Existence,
    /// supports, and disjoint counts are unaffected; only the raw
    /// embedding multiplicity of symmetric patterns is reduced.
    ///
    /// The target may be any [`GraphView`]: the builder arena, a
    /// [`crate::frozen::FrozenGraph`], or a [`crate::frozen::TxnRef`].
    pub fn find<G: GraphView>(&self, target: &G, mode: Find) -> Vec<Embedding> {
        self.search(target, mode, true)
    }

    /// Searches for embeddings **without** twin-leaf symmetry breaking:
    /// every distinct vertex mapping is enumerated. This is the mode
    /// embedding-list propagation requires — a stored list must contain
    /// *all* occurrences, or restricting a child occurrence to the parent
    /// could land on an embedding the pruned search never emitted.
    pub fn find_unpruned<G: GraphView>(&self, target: &G, mode: Find) -> Vec<Embedding> {
        self.search(target, mode, false)
    }

    fn search<G: GraphView>(&self, target: &G, mode: Find, prune_twins: bool) -> Vec<Embedding> {
        let limit = match mode {
            Find::First => 1,
            Find::AtMost(n) => n,
            Find::All => usize::MAX,
        };
        if limit == 0 || self.plan.order.is_empty() {
            return Vec::new();
        }
        let mut results = Vec::new();
        let mut assignment: Vec<VertexId> = Vec::with_capacity(self.plan.order.len());
        let mut used: FxHashSet<VertexId> = FxHashSet::default();
        self.recurse(
            target,
            &mut assignment,
            &mut used,
            &mut results,
            limit,
            prune_twins,
        );
        results
    }

    /// True if at least one embedding exists.
    pub fn matches<G: GraphView>(&self, target: &G) -> bool {
        !self.find(target, Find::First).is_empty()
    }

    fn image(&self, assignment: &[VertexId], pv: VertexId) -> VertexId {
        let idx = self
            .plan
            .order
            .iter()
            .position(|&v| v == pv)
            .expect("back edge to unmatched vertex");
        assignment[idx]
    }

    fn feasible<G: GraphView>(
        &self,
        target: &G,
        assignment: &[VertexId],
        depth: usize,
        candidate: VertexId,
    ) -> bool {
        if target.vertex_label(candidate) != self.vlabels[depth] {
            return false;
        }
        let pv = self.plan.order[depth];
        let (pout, pin) = self.pattern_degrees[&pv];
        if target.out_degree(candidate) < pout || target.in_degree(candidate) < pin {
            return false;
        }
        // Self-loops never appear as back edges (they connect a vertex to
        // itself, not to an earlier one), so verify them here.
        for (&(s, d, l), &need) in &self.multiplicity {
            if s == pv && d == pv && count_pair(target, candidate, candidate, l) < need {
                return false;
            }
        }
        // Every pattern back edge must have enough parallel target edges.
        for &(m, _l, out) in &self.plan.back_edges[depth] {
            let tm = self.image(assignment, m);
            let (ps, pd) = if out { (pv, m) } else { (m, pv) };
            let (ts, td) = if out {
                (candidate, tm)
            } else {
                (tm, candidate)
            };
            // Sum multiplicity over labels for this ordered pair once per
            // distinct (pair,label); recomputing per back edge is fine for
            // the tiny patterns in play.
            for (&(s, d, l), &need) in &self.multiplicity {
                if s == ps && d == pd && count_pair(target, ts, td, l) < need {
                    return false;
                }
            }
        }
        true
    }

    fn recurse<G: GraphView>(
        &self,
        target: &G,
        assignment: &mut Vec<VertexId>,
        used: &mut FxHashSet<VertexId>,
        results: &mut Vec<Embedding>,
        limit: usize,
        prune_twins: bool,
    ) -> bool {
        let depth = assignment.len();
        if depth == self.plan.order.len() {
            let mut flat = vec![UNMAPPED; self.slots];
            for (i, &pv) in self.plan.order.iter().enumerate() {
                flat[pv.index()] = assignment[i];
            }
            results.push(Embedding { assignment: flat });
            return results.len() >= limit;
        }
        let candidates: Vec<VertexId> = match self.plan.anchor[depth] {
            Some((m, l, out)) => {
                // Label-indexed adjacency (binary-searched on frozen
                // targets) with the new vertex's label folded in: the
                // same candidates `feasible` would keep, visited in the
                // same ascending edge-id order as the raw scan.
                let tm = self.image(assignment, m);
                let mut c = Vec::new();
                if out {
                    // pattern edge new->m: candidates are sources of
                    // in-edges of image(m) with label l.
                    target.visit_in_matching(tm, l, self.vlabels[depth], &mut |_, s| c.push(s));
                } else {
                    target.visit_out_matching(tm, l, self.vlabels[depth], &mut |_, d| c.push(d));
                }
                c
            }
            None => match self.plan.root_edge[depth] {
                // Harvest roots from matching-label edge endpoints and
                // visit them in ascending id order — the same order (and
                // a subset) of the full vertex scan, so enumeration
                // output is unchanged; vertices lacking the required
                // incident edge could never complete an embedding.
                Some((l, out)) => {
                    let mut roots: Vec<VertexId> = target
                        .edges()
                        .filter(|&e| target.edge_label(e) == l)
                        .map(|e| {
                            if out {
                                target.edge_src(e)
                            } else {
                                target.edge_dst(e)
                            }
                        })
                        .collect();
                    roots.sort_unstable();
                    roots.dedup();
                    roots
                }
                None => target.vertices().collect(),
            },
        };
        let twin_floor = if prune_twins {
            self.plan.twin_prev[depth].map(|j| assignment[j])
        } else {
            None
        };
        let mut local_seen: FxHashSet<VertexId> = FxHashSet::default();
        for c in candidates {
            if used.contains(&c) || !local_seen.insert(c) {
                continue;
            }
            // Interchangeable twin leaves: only ascending-id assignments
            // (each unordered choice of images is explored once).
            if twin_floor.is_some_and(|f| c <= f) {
                continue;
            }
            if !self.feasible(target, assignment, depth, c) {
                continue;
            }
            assignment.push(c);
            used.insert(c);
            let done = self.recurse(target, assignment, used, results, limit, prune_twins);
            assignment.pop();
            used.remove(&c);
            if done {
                return true;
            }
        }
        false
    }
}

/// How a child pattern grows its parent by exactly one edge.
///
/// Miners build candidates as `parent.clone()` plus one appended edge
/// (and, for tree growth, one appended vertex), so the delta is always one
/// of three shapes. [`derive_extension`] recovers it from the graphs;
/// [`extend_embedding`] replays it against a stored parent occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Extension {
    /// New edge `src -> new_vertex`, where the new vertex (pattern slot =
    /// parent vertex count) has label `vlabel` and degree 1.
    NewDst {
        /// Parent-pattern source of the new edge.
        src: VertexId,
        /// Label of the new edge.
        elabel: ELabel,
        /// Label of the appended vertex.
        vlabel: VLabel,
    },
    /// New edge `new_vertex -> dst`; mirror of [`Extension::NewDst`].
    NewSrc {
        /// Parent-pattern destination of the new edge.
        dst: VertexId,
        /// Label of the new edge.
        elabel: ELabel,
        /// Label of the appended vertex.
        vlabel: VLabel,
    },
    /// Cycle-closing edge `src -> dst` between existing parent vertices
    /// (`src == dst` for a self-loop).
    Close {
        /// Parent-pattern source of the new edge.
        src: VertexId,
        /// Parent-pattern destination of the new edge.
        dst: VertexId,
        /// Label of the new edge.
        elabel: ELabel,
    },
}

/// Recovers the one-edge growth step from a parent with
/// `parent_vertices` vertices to `child`, or `None` if `child` is not a
/// dense append-only extension of such a parent (tombstoned slots,
/// wrong vertex count, or a new vertex with degree != 1).
///
/// Correctness relies on the miners' construction discipline: the child is
/// `parent.clone()` with one `add_edge` (and at most one preceding
/// `add_vertex`), so the new edge is the last edge id and the new vertex,
/// if any, is slot `parent_vertices`.
pub fn derive_extension(parent_vertices: usize, child: &Graph) -> Option<Extension> {
    let vc = child.vertex_count();
    let ec = child.edge_count();
    // Dense check: no tombstones, so arena indices equal counts.
    if child.vertices().last().map(|v| v.index()) != Some(vc.checked_sub(1)?) {
        return None;
    }
    let last_edge = child.edges().last()?;
    if last_edge.index() != ec - 1 {
        return None;
    }
    let (s, d, elabel) = child.edge(last_edge);
    if vc == parent_vertices {
        return Some(Extension::Close {
            src: s,
            dst: d,
            elabel,
        });
    }
    if vc != parent_vertices + 1 {
        return None;
    }
    let nv = VertexId(parent_vertices as u32);
    if child.degree(nv) != 1 {
        return None;
    }
    let vlabel = child.vertex_label(nv);
    if d == nv && s != nv {
        Some(Extension::NewDst {
            src: s,
            elabel,
            vlabel,
        })
    } else if s == nv && d != nv {
        Some(Extension::NewSrc {
            dst: d,
            elabel,
            vlabel,
        })
    } else {
        None
    }
}

/// Extends one parent embedding by `ext`, pushing every resulting child
/// embedding onto `out`.
///
/// With an **unpruned** parent list (see [`Matcher::find_unpruned`]) this
/// enumerates each child occurrence exactly once: distinct
/// `(parent embedding, new endpoint)` pairs yield distinct child
/// embeddings, and parallel target edges to the same endpoint are
/// deduplicated in place.
///
/// Candidate edges come from [`GraphView::visit_out_matching`] /
/// [`GraphView::visit_in_matching`]: a linear label scan on the arena, a
/// binary-searched `(ELabel, VLabel)` slice on frozen targets. Both visit
/// matches in ascending edge-id order, so the emitted embedding order is
/// representation-independent.
pub fn extend_embedding<G: GraphView>(
    target: &G,
    emb: &Embedding,
    ext: &Extension,
    out: &mut Vec<Embedding>,
) {
    let mut flat: Vec<VertexId> = Vec::new();
    extend_embedding_row(target, &emb.assignment, ext, &mut flat);
    let stride = child_stride(emb.assignment.len(), ext);
    for row in flat.chunks_exact(stride.max(1)) {
        out.push(Embedding {
            assignment: row.to_vec(),
        });
    }
}

/// Row width of the children `ext` produces from a parent row of width
/// `parent_stride`: one appended slot for the `New*` shapes, unchanged
/// for `Close`.
#[inline]
pub fn child_stride(parent_stride: usize, ext: &Extension) -> usize {
    match ext {
        Extension::Close { .. } => parent_stride,
        _ => parent_stride + 1,
    }
}

/// Structure-of-arrays form of [`extend_embedding`]: the parent occurrence
/// is a flat assignment slice (`row[i]` = image of pattern vertex `i`) and
/// every child occurrence is appended to `out` as [`child_stride`]
/// contiguous ids. Same candidate enumeration, same dedup, same emission
/// order — only the layout differs, which is what lets the miners' stores
/// stream one contiguous buffer instead of hopping per-`Embedding` heap
/// vectors.
pub fn extend_embedding_row<G: GraphView>(
    target: &G,
    row: &[VertexId],
    ext: &Extension,
    out: &mut Vec<VertexId>,
) {
    match *ext {
        Extension::NewDst {
            src,
            elabel,
            vlabel,
        } => {
            let ts = row[src.index()];
            debug_assert_ne!(ts, UNMAPPED);
            let start = out.len();
            let stride = row.len() + 1;
            target.visit_out_matching(ts, elabel, vlabel, &mut |_, td| {
                if row.contains(&td) {
                    return;
                }
                // Parallel edges reach the same endpoint; emit it once.
                if out[start..]
                    .chunks_exact(stride)
                    .any(|c| c[stride - 1] == td)
                {
                    return;
                }
                out.extend_from_slice(row);
                out.push(td);
            });
        }
        Extension::NewSrc {
            dst,
            elabel,
            vlabel,
        } => {
            let td = row[dst.index()];
            debug_assert_ne!(td, UNMAPPED);
            let start = out.len();
            let stride = row.len() + 1;
            target.visit_in_matching(td, elabel, vlabel, &mut |_, ts| {
                if row.contains(&ts) {
                    return;
                }
                if out[start..]
                    .chunks_exact(stride)
                    .any(|c| c[stride - 1] == ts)
                {
                    return;
                }
                out.extend_from_slice(row);
                out.push(ts);
            });
        }
        Extension::Close { src, dst, elabel } => {
            // Pattern graphs are simple per (src, dst, label) at the point
            // of closure (miners check before adding), so existence of one
            // matching target edge suffices — multiplicity is only needed
            // for parallel pattern edges, which closure never creates.
            let ts = row[src.index()];
            let td = row[dst.index()];
            if target.has_edge_labeled(ts, td, elabel) {
                out.extend_from_slice(row);
            }
        }
    }
}

/// Existence check: does `pattern` occur in `target` (per §4's definition)?
pub fn has_embedding<G: GraphView>(pattern: &Graph, target: &G) -> bool {
    if pattern.vertex_count() > target.vertex_count() || pattern.edge_count() > target.edge_count()
    {
        return false;
    }
    Matcher::new(pattern).matches(target)
}

/// All embeddings of `pattern` in `target` (use with care on symmetric
/// patterns in dense targets).
pub fn find_embeddings<G: GraphView>(pattern: &Graph, target: &G, mode: Find) -> Vec<Embedding> {
    Matcher::new(pattern).find(target, mode)
}

/// Exact isomorphism of two labeled directed multigraphs.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    // Mining patterns are tiny, dense (append-only construction), and
    // compared millions of times inside iso-class buckets: take the lean
    // array-indexed path whenever possible, the allocation-heavy general
    // matcher otherwise.
    if a.vertex_count() <= 16 && vertex_dense(a) && vertex_dense(b) {
        return small_iso(a, b);
    }
    if a.vertex_label_histogram() != b.vertex_label_histogram()
        || a.edge_label_histogram() != b.edge_label_histogram()
    {
        return false;
    }
    // A monomorphism between same-size graphs with equal edge counts is a
    // bijection on vertices; equal per-pair multiplicities then force edge
    // bijectivity too (each pair's multiplicity in b is >= that of a, and
    // totals agree).
    has_embedding(a, b)
}

/// True if the vertex arena has no tombstoned slots (ids run 0..count).
fn vertex_dense(g: &Graph) -> bool {
    g.vertices()
        .last()
        .is_none_or(|v| v.index() + 1 == g.vertex_count())
}

/// Exact-isomorphism backtracking specialized for small vertex-dense
/// graphs: flat arrays instead of hash maps, vertices mapped in arena
/// order. Requires equal vertex and edge counts (checked by the caller).
///
/// Per-vertex label/degree equality plus per-(pair, label) multiplicity
/// coverage forces a full edge bijection: every `b` vertex is an image, so
/// summed coverage equals both edge totals and no `b` edge is left over.
fn small_iso(a: &Graph, b: &Graph) -> bool {
    let n = a.vertex_count();
    let la: Vec<u32> = (0..n)
        .map(|i| a.vertex_label(VertexId(i as u32)).0)
        .collect();
    let lb: Vec<u32> = (0..n)
        .map(|i| b.vertex_label(VertexId(i as u32)).0)
        .collect();
    {
        let mut sa = la.clone();
        let mut sb = lb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        if sa != sb {
            return false;
        }
    }
    let ea: Vec<(usize, usize, u32)> = a
        .edges()
        .map(|e| {
            let (s, d, l) = a.edge(e);
            (s.index(), d.index(), l.0)
        })
        .collect();
    let eb: Vec<(usize, usize, u32)> = b
        .edges()
        .map(|e| {
            let (s, d, l) = b.edge(e);
            (s.index(), d.index(), l.0)
        })
        .collect();
    {
        let mut sa: Vec<u32> = ea.iter().map(|t| t.2).collect();
        let mut sb: Vec<u32> = eb.iter().map(|t| t.2).collect();
        sa.sort_unstable();
        sb.sort_unstable();
        if sa != sb {
            return false;
        }
    }
    let mut outa = vec![0u16; n];
    let mut ina = vec![0u16; n];
    for &(s, d, _) in &ea {
        outa[s] += 1;
        ina[d] += 1;
    }
    let mut outb = vec![0u16; n];
    let mut inb = vec![0u16; n];
    for &(s, d, _) in &eb {
        outb[s] += 1;
        inb[d] += 1;
    }
    // Each `a` edge is registered at its higher-numbered endpoint, so the
    // constraint fires as soon as both endpoints are mapped. Miner
    // patterns (append-grown) and `edge_subgraph` outputs (first-
    // appearance numbering) both attach every vertex after the first to
    // an earlier one, so pruning bites at every depth.
    let mut back: Vec<Vec<(usize, u32, bool)>> = vec![Vec::new(); n];
    for &(s, d, l) in &ea {
        if s >= d {
            back[s].push((d, l, true));
        } else {
            back[d].push((s, l, false));
        }
    }

    struct Ctx<'c> {
        n: usize,
        la: &'c [u32],
        lb: &'c [u32],
        outa: &'c [u16],
        ina: &'c [u16],
        outb: &'c [u16],
        inb: &'c [u16],
        back: &'c [Vec<(usize, u32, bool)>],
        eb: &'c [(usize, usize, u32)],
    }
    fn rec(cx: &Ctx<'_>, i: usize, map: &mut [usize], used: &mut u32) -> bool {
        if i == cx.n {
            return true;
        }
        for m in 0..cx.n {
            if *used & (1 << m) != 0
                || cx.lb[m] != cx.la[i]
                || cx.outb[m] != cx.outa[i]
                || cx.inb[m] != cx.ina[i]
            {
                continue;
            }
            let ok = cx.back[i].iter().all(|&(j, l, out)| {
                let mj = if j == i { m } else { map[j] };
                let (bs, bd) = if out { (m, mj) } else { (mj, m) };
                let need = cx.back[i]
                    .iter()
                    .filter(|&&(jj, ll, oo)| jj == j && ll == l && oo == out)
                    .count();
                let have = cx
                    .eb
                    .iter()
                    .filter(|&&(s, d, l2)| s == bs && d == bd && l2 == l)
                    .count();
                have >= need
            });
            if !ok {
                continue;
            }
            map[i] = m;
            *used |= 1 << m;
            if rec(cx, i + 1, map, used) {
                return true;
            }
            *used &= !(1 << m);
        }
        false
    }
    let cx = Ctx {
        n,
        la: &la,
        lb: &lb,
        outa: &outa,
        ina: &ina,
        outb: &outb,
        inb: &inb,
        back: &back,
        eb: &eb,
    };
    let mut map = vec![usize::MAX; n];
    let mut used = 0u32;
    rec(&cx, 0, &mut map, &mut used)
}

/// Greedily selects a maximal set of pairwise vertex-disjoint embeddings
/// from `embeddings`, preferring earlier entries. SUBDUE counts pattern
/// instances "without allowing overlap" — this is that filter.
pub fn disjoint_subset(embeddings: &[Embedding]) -> Vec<Embedding> {
    let mut used: FxHashSet<VertexId> = FxHashSet::default();
    let mut out = Vec::new();
    for emb in embeddings {
        if emb.target_vertices().any(|v| used.contains(&v)) {
            continue;
        }
        used.extend(emb.target_vertices());
        out.push(emb.clone());
    }
    out
}

/// Counts vertex-disjoint occurrences of `pattern` in `target` by greedy
/// selection over all embeddings.
pub fn count_disjoint<G: GraphView>(pattern: &Graph, target: &G) -> usize {
    let all = find_embeddings(pattern, target, Find::All);
    disjoint_subset(&all).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ELabel, VLabel};

    fn path(labels: &[u32], elabels: &[u32]) -> Graph {
        assert_eq!(labels.len(), elabels.len() + 1);
        let mut g = Graph::new();
        let vs: Vec<VertexId> = labels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
        for (i, &el) in elabels.iter().enumerate() {
            g.add_edge(vs[i], vs[i + 1], ELabel(el));
        }
        g
    }

    #[test]
    fn path_in_path() {
        let p = path(&[0, 0], &[5]);
        let t = path(&[0, 0, 0], &[5, 5]);
        assert!(has_embedding(&p, &t));
        let all = find_embeddings(&p, &t, Find::All);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn label_mismatch_blocks() {
        let p = path(&[0, 0], &[5]);
        let t = path(&[0, 0], &[6]);
        assert!(!has_embedding(&p, &t));
        let t2 = path(&[0, 1], &[5]);
        assert!(!has_embedding(&p, &t2));
    }

    #[test]
    fn direction_matters() {
        let mut t = Graph::new();
        let a = t.add_vertex(VLabel(0));
        let b = t.add_vertex(VLabel(0));
        t.add_edge(a, b, ELabel(0));
        let mut p = Graph::new();
        let x = p.add_vertex(VLabel(0));
        let y = p.add_vertex(VLabel(0));
        p.add_edge(y, x, ELabel(0)); // same shape, same direction class
        assert!(has_embedding(&p, &t)); // x:=b, y:=a works
                                        // but a 2-cycle pattern must not embed in a single directed edge
        let mut c = Graph::new();
        let u = c.add_vertex(VLabel(0));
        let v = c.add_vertex(VLabel(0));
        c.add_edge(u, v, ELabel(0));
        c.add_edge(v, u, ELabel(0));
        assert!(!has_embedding(&c, &t));
    }

    #[test]
    fn injective_vertices() {
        // Pattern: two distinct out-edges from a hub; target has only one.
        let mut p = Graph::new();
        let h = p.add_vertex(VLabel(0));
        let a = p.add_vertex(VLabel(0));
        let b = p.add_vertex(VLabel(0));
        p.add_edge(h, a, ELabel(0));
        p.add_edge(h, b, ELabel(0));
        let t = path(&[0, 0], &[0]);
        assert!(!has_embedding(&p, &t));
    }

    #[test]
    fn parallel_edge_multiplicity() {
        let mut p = Graph::new();
        let a = p.add_vertex(VLabel(0));
        let b = p.add_vertex(VLabel(0));
        p.add_edge(a, b, ELabel(1));
        p.add_edge(a, b, ELabel(1));
        // Target with a single such edge: no match.
        let mut t1 = Graph::new();
        let x = t1.add_vertex(VLabel(0));
        let y = t1.add_vertex(VLabel(0));
        t1.add_edge(x, y, ELabel(1));
        assert!(!has_embedding(&p, &t1));
        // Target with two parallel edges: match.
        t1.add_edge(x, y, ELabel(1));
        assert!(has_embedding(&p, &t1));
    }

    #[test]
    fn hub_and_spoke_embeds() {
        // 3-spoke hub pattern inside a 5-spoke hub target.
        let mut p = Graph::new();
        let h = p.add_vertex(VLabel(0));
        for _ in 0..3 {
            let s = p.add_vertex(VLabel(0));
            p.add_edge(h, s, ELabel(2));
        }
        let mut t = Graph::new();
        let th = t.add_vertex(VLabel(0));
        for _ in 0..5 {
            let s = t.add_vertex(VLabel(0));
            t.add_edge(th, s, ELabel(2));
        }
        assert!(has_embedding(&p, &t));
        // Twin-leaf symmetry breaking: C(5,3) = 10 unordered spoke
        // choices (not 5*4*3 = 60 ordered ones).
        assert_eq!(find_embeddings(&p, &t, Find::All).len(), 10);
        assert_eq!(find_embeddings(&p, &t, Find::AtMost(7)).len(), 7);
    }

    #[test]
    fn unpruned_enumerates_twin_permutations() {
        // 2-spoke hub in a 3-spoke hub: pruned = C(3,2) = 3 unordered
        // choices; unpruned = 3*2 = 6 ordered assignments.
        let mut p = Graph::new();
        let h = p.add_vertex(VLabel(0));
        for _ in 0..2 {
            let s = p.add_vertex(VLabel(0));
            p.add_edge(h, s, ELabel(2));
        }
        let mut t = Graph::new();
        let th = t.add_vertex(VLabel(0));
        for _ in 0..3 {
            let s = t.add_vertex(VLabel(0));
            t.add_edge(th, s, ELabel(2));
        }
        let m = Matcher::new(&p);
        assert_eq!(m.find(&t, Find::All).len(), 3);
        assert_eq!(m.find_unpruned(&t, Find::All).len(), 6);
        assert_eq!(m.find_unpruned(&t, Find::AtMost(4)).len(), 4);
    }

    #[test]
    fn derive_extension_shapes() {
        // Parent: a -> b. Child 1: append vertex c, edge b -> c (NewDst).
        let mut parent = Graph::new();
        let a = parent.add_vertex(VLabel(1));
        let b = parent.add_vertex(VLabel(2));
        parent.add_edge(a, b, ELabel(9));

        let mut child = parent.clone();
        let c = child.add_vertex(VLabel(3));
        child.add_edge(b, c, ELabel(8));
        assert_eq!(
            derive_extension(2, &child),
            Some(Extension::NewDst {
                src: b,
                elabel: ELabel(8),
                vlabel: VLabel(3)
            })
        );

        // Child 2: append vertex c, edge c -> a (NewSrc).
        let mut child = parent.clone();
        let c = child.add_vertex(VLabel(3));
        child.add_edge(c, a, ELabel(8));
        assert_eq!(
            derive_extension(2, &child),
            Some(Extension::NewSrc {
                dst: a,
                elabel: ELabel(8),
                vlabel: VLabel(3)
            })
        );

        // Child 3: closing edge b -> a (Close), no new vertex.
        let mut child = parent.clone();
        child.add_edge(b, a, ELabel(7));
        assert_eq!(
            derive_extension(2, &child),
            Some(Extension::Close {
                src: b,
                dst: a,
                elabel: ELabel(7)
            })
        );

        // Not a one-edge growth: two extra vertices.
        let mut child = parent.clone();
        let c = child.add_vertex(VLabel(3));
        let d = child.add_vertex(VLabel(3));
        child.add_edge(c, d, ELabel(8));
        assert_eq!(derive_extension(2, &child), None);

        // Tombstoned (non-dense) child is rejected.
        let mut child = parent.clone();
        let c = child.add_vertex(VLabel(3));
        child.add_edge(b, c, ELabel(8));
        let first_edge = child.edges().next().unwrap();
        child.remove_edge(first_edge);
        assert_eq!(derive_extension(2, &child), None);
    }

    #[test]
    fn extend_embedding_matches_unpruned_search() {
        // Parent: hub with 2 spokes; child grows a third spoke — the twin
        // counterexample: pruned parent lists would miss child embeddings,
        // unpruned ones must not.
        let mut parent = Graph::new();
        let h = parent.add_vertex(VLabel(0));
        for _ in 0..2 {
            let s = parent.add_vertex(VLabel(0));
            parent.add_edge(h, s, ELabel(2));
        }
        let mut child = parent.clone();
        let s3 = child.add_vertex(VLabel(0));
        child.add_edge(h, s3, ELabel(2));

        let mut t = Graph::new();
        let th = t.add_vertex(VLabel(0));
        for _ in 0..4 {
            let s = t.add_vertex(VLabel(0));
            t.add_edge(th, s, ELabel(2));
        }

        let parent_embs = Matcher::new(&parent).find_unpruned(&t, Find::All);
        assert_eq!(parent_embs.len(), 12); // 4*3 ordered spoke pairs
        let ext = derive_extension(3, &child).unwrap();
        let mut grown = Vec::new();
        for e in &parent_embs {
            extend_embedding(&t, e, &ext, &mut grown);
        }
        let direct = Matcher::new(&child).find_unpruned(&t, Find::All);
        assert_eq!(grown.len(), direct.len()); // 4*3*2 = 24
        let key = |e: &Embedding| {
            let mut v: Vec<VertexId> = e.target_vertices().collect();
            v.sort_unstable();
            (e.image(VertexId(0)), v)
        };
        let mut a: Vec<_> = grown.iter().map(key).collect();
        let mut b: Vec<_> = direct.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn extend_embedding_close_and_dedup() {
        // Parent a -> b; child closes b -> a.
        let mut parent = Graph::new();
        let a = parent.add_vertex(VLabel(0));
        let b = parent.add_vertex(VLabel(1));
        parent.add_edge(a, b, ELabel(0));
        let mut child = parent.clone();
        child.add_edge(b, a, ELabel(5));

        let mut t = Graph::new();
        let x = t.add_vertex(VLabel(0));
        let y = t.add_vertex(VLabel(1));
        let z = t.add_vertex(VLabel(1));
        t.add_edge(x, y, ELabel(0));
        t.add_edge(x, z, ELabel(0));
        t.add_edge(y, x, ELabel(5));

        let parent_embs = Matcher::new(&parent).find_unpruned(&t, Find::All);
        assert_eq!(parent_embs.len(), 2);
        let ext = derive_extension(2, &child).unwrap();
        let mut grown = Vec::new();
        for e in &parent_embs {
            extend_embedding(&t, e, &ext, &mut grown);
        }
        // Only x->y closes back.
        assert_eq!(grown.len(), 1);
        assert_eq!(grown[0].image(b), y);

        // Parallel target edges to the same endpoint are emitted once.
        let mut pt = Graph::new();
        let px = pt.add_vertex(VLabel(0));
        let py = pt.add_vertex(VLabel(1));
        pt.add_edge(px, py, ELabel(0));
        pt.add_edge(px, py, ELabel(0));
        let mut single = Graph::new();
        single.add_vertex(VLabel(0));
        let embs = vec![Embedding::from_assignment(vec![px])];
        let mut grown_child = Graph::new();
        let ga = grown_child.add_vertex(VLabel(0));
        let gb = grown_child.add_vertex(VLabel(1));
        grown_child.add_edge(ga, gb, ELabel(0));
        let ext = derive_extension(1, &grown_child).unwrap();
        let mut out = Vec::new();
        for e in &embs {
            extend_embedding(&pt, e, &ext, &mut out);
        }
        assert_eq!(out.len(), 1);
        let _ = single;
    }

    #[test]
    fn isomorphism_positive_and_negative() {
        let a = path(&[1, 2, 3], &[7, 8]);
        let b = path(&[1, 2, 3], &[7, 8]);
        assert!(are_isomorphic(&a, &b));
        let c = path(&[1, 2, 3], &[8, 7]);
        assert!(!are_isomorphic(&a, &c));
        let d = path(&[3, 2, 1], &[8, 7]); // reversed path = same graph? No:
                                           // d's edges: 3-[8]->2, 2-[7]->1; a's: 1-[7]->2, 2-[8]->3. Relabel
                                           // mapping 1<->3 sends a's 1-[7]->2 to 3-[7]->2 which d lacks.
        assert!(!are_isomorphic(&a, &d));
    }

    #[test]
    fn isomorphism_cycle_rotation() {
        let mk = |rot: usize| {
            let mut g = Graph::new();
            let vs: Vec<_> = (0..4).map(|_| g.add_vertex(VLabel(0))).collect();
            for i in 0..4 {
                g.add_edge(
                    vs[(i + rot) % 4],
                    vs[(i + rot + 1) % 4],
                    ELabel(i as u32 % 2),
                );
            }
            g
        };
        assert!(are_isomorphic(&mk(0), &mk(2)));
    }

    #[test]
    fn disjoint_count() {
        // Target: two separate a->b edges; pattern: one a->b edge.
        let mut t = Graph::new();
        for _ in 0..2 {
            let a = t.add_vertex(VLabel(0));
            let b = t.add_vertex(VLabel(0));
            t.add_edge(a, b, ELabel(0));
        }
        let p = path(&[0, 0], &[0]);
        assert_eq!(count_disjoint(&p, &t), 2);
        // A 3-vertex chain target holds only one disjoint 2-vertex edge
        // pattern... actually chain a->b->c has 2 embeddings sharing b.
        let chain = path(&[0, 0, 0], &[0, 0]);
        assert_eq!(count_disjoint(&p, &chain), 1);
    }

    #[test]
    fn empty_pattern_no_embeddings() {
        let p = Graph::new();
        let t = path(&[0, 0], &[0]);
        assert!(find_embeddings(&p, &t, Find::All).is_empty());
    }

    #[test]
    fn disconnected_pattern() {
        // Pattern: two isolated edges; target has them.
        let mut p = Graph::new();
        let a = p.add_vertex(VLabel(1));
        let b = p.add_vertex(VLabel(2));
        p.add_edge(a, b, ELabel(0));
        let c = p.add_vertex(VLabel(3));
        let d = p.add_vertex(VLabel(4));
        p.add_edge(c, d, ELabel(0));
        let mut t = Graph::new();
        let ta = t.add_vertex(VLabel(1));
        let tb = t.add_vertex(VLabel(2));
        let tc = t.add_vertex(VLabel(3));
        let td = t.add_vertex(VLabel(4));
        t.add_edge(ta, tb, ELabel(0));
        t.add_edge(tc, td, ELabel(0));
        assert!(has_embedding(&p, &t));
    }
}
