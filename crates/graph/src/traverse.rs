//! Traversals and connectivity.
//!
//! All traversals treat the graph as *weakly* connected (edges are walked in
//! both directions) — that is what both SUBDUE's expansion and the paper's
//! partitioners need: a truck route is "connected" regardless of edge
//! direction.

use crate::graph::{ELabel, EdgeId, Graph, VertexId};
use crate::hash::FxHashSet;
use crate::view::GraphView;
use std::collections::VecDeque;

/// Vertices reachable from `start` following edges in either direction,
/// in breadth-first order (including `start`).
pub fn bfs_reachable(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for e in g.incident_edges(v) {
            let (s, d, _) = g.edge(e);
            let other = if s == v { d } else { s };
            if seen.insert(other) {
                queue.push_back(other);
            }
        }
    }
    order
}

/// Vertices reachable from `start` (either direction), depth-first
/// preorder.
pub fn dfs_reachable(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        order.push(v);
        for e in g.incident_edges(v) {
            let (s, d, _) = g.edge(e);
            let other = if s == v { d } else { s };
            if !seen.contains(&other) {
                stack.push(other);
            }
        }
    }
    order
}

/// Weakly connected components; each component is a sorted vector of
/// vertex ids. Components are returned largest first.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut comps = Vec::new();
    for v in g.vertices() {
        if seen.contains(&v) {
            continue;
        }
        let mut comp = bfs_reachable(g, v);
        for &u in &comp {
            seen.insert(u);
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
    comps
}

/// True if every live vertex is reachable from every other ignoring
/// direction. The empty graph and single vertices count as connected.
pub fn is_connected(g: &Graph) -> bool {
    match g.vertices().next() {
        None => true,
        Some(v0) => bfs_reachable(g, v0).len() == g.vertex_count(),
    }
}

/// Splits a graph into one graph per weakly connected component.
///
/// Used by temporal partitioning (§6): "we further broke each disconnected
/// graph transaction into multiple connected graph transactions".
pub fn split_components(g: &Graph) -> Vec<Graph> {
    connected_components(g)
        .into_iter()
        .map(|comp| g.induced_subgraph(&comp).0)
        .collect()
}

/// Counts directed walks whose consecutive edge labels spell `labels`.
///
/// A walk of length `k` is a vertex/edge alternation `v0 -e1-> v1 ...
/// -ek-> vk` with `label(ei) = labels[i-1]`; vertices and edges may
/// repeat. Counting runs as a dynamic program over the per-vertex
/// walk-end counts, so cost is `O(k · |E|)` regardless of how many walks
/// exist, and the count saturates at `u64::MAX` instead of overflowing.
///
/// This is the `tnet-serve` support query: on an OD graph a label
/// sequence is a chain of binned legs (e.g. "heavy load into a short
/// haul"), and the walk count is its occurrence support in the pinned
/// snapshot. An empty `labels` counts the empty walks, one per vertex.
pub fn count_label_walks<G: GraphView>(g: &G, labels: &[ELabel]) -> u64 {
    if labels.is_empty() {
        return g.vertex_count() as u64;
    }
    // ends[v] = number of walks matching the prefix consumed so far that
    // end at v, indexed by raw id (a tombstoned arena can have live ids
    // past vertex_count, so size by the largest id, not the live count).
    let slots = g.vertices().last().map_or(0, |v| v.index() + 1);
    let mut ends = vec![0u64; slots];
    for e in g.edges() {
        if g.edge_label(e) == labels[0] {
            let d = g.edge_dst(e).index();
            ends[d] = ends[d].saturating_add(1);
        }
    }
    let mut next = vec![0u64; slots];
    for &want in &labels[1..] {
        next.iter_mut().for_each(|n| *n = 0);
        for (v, &n) in ends.iter().enumerate() {
            if n == 0 {
                continue;
            }
            for e in g.out_edges(crate::graph::VertexId(v as u32)) {
                if g.edge_label(e) == want {
                    let d = g.edge_dst(e).index();
                    next[d] = next[d].saturating_add(n);
                }
            }
        }
        std::mem::swap(&mut ends, &mut next);
    }
    ends.iter().fold(0u64, |acc, &n| acc.saturating_add(n))
}

/// Edges on a shortest (undirected) path from `a` to `b`, or `None` if
/// unreachable. Useful for diagnostics and pattern rendering.
pub fn shortest_path(g: &Graph, a: VertexId, b: VertexId) -> Option<Vec<EdgeId>> {
    if a == b {
        return Some(Vec::new());
    }
    let mut prev: std::collections::HashMap<VertexId, (VertexId, EdgeId)> =
        std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    seen.insert(a);
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        for e in g.incident_edges(v) {
            let (s, d, _) = g.edge(e);
            let other = if s == v { d } else { s };
            if seen.insert(other) {
                prev.insert(other, (v, e));
                if other == b {
                    let mut path = Vec::new();
                    let mut cur = b;
                    while cur != a {
                        let (p, pe) = prev[&cur];
                        path.push(pe);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(other);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ELabel, VLabel};

    /// Two components: a directed path a->b->c and an isolated pair d->e.
    fn two_components() -> (Graph, [VertexId; 5]) {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        let d = g.add_vertex(VLabel(0));
        let e = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(0));
        g.add_edge(b, c, ELabel(0));
        g.add_edge(d, e, ELabel(0));
        (g, [a, b, c, d, e])
    }

    #[test]
    fn bfs_ignores_direction() {
        let (g, [a, b, c, ..]) = two_components();
        // Starting from c we can still reach a by walking edges backwards.
        let r = bfs_reachable(&g, c);
        assert_eq!(r.len(), 3);
        assert!(r.contains(&a) && r.contains(&b));
    }

    #[test]
    fn dfs_matches_bfs_reachability() {
        let (g, [a, ..]) = two_components();
        let mut bfs = bfs_reachable(&g, a);
        let mut dfs = dfs_reachable(&g, a);
        bfs.sort_unstable();
        dfs.sort_unstable();
        assert_eq!(bfs, dfs);
    }

    #[test]
    fn components_largest_first() {
        let (g, _) = two_components();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn connectivity() {
        let (mut g, [_, _, _, d, e]) = two_components();
        assert!(!is_connected(&g));
        g.remove_vertex(d);
        g.remove_vertex(e);
        assert!(is_connected(&g));
        let empty = Graph::new();
        assert!(is_connected(&empty));
    }

    #[test]
    fn split_into_component_graphs() {
        let (g, _) = two_components();
        let parts = split_components(&g);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].vertex_count(), 3);
        assert_eq!(parts[0].edge_count(), 2);
        assert_eq!(parts[1].vertex_count(), 2);
        assert_eq!(parts[1].edge_count(), 1);
    }

    #[test]
    fn shortest_path_basic() {
        let (g, [a, _, c, d, _]) = two_components();
        let p = shortest_path(&g, a, c).unwrap();
        assert_eq!(p.len(), 2);
        assert!(shortest_path(&g, a, d).is_none());
        assert_eq!(shortest_path(&g, a, a).unwrap().len(), 0);
    }

    #[test]
    fn isolated_vertex_is_own_component() {
        let mut g = Graph::new();
        g.add_vertex(VLabel(0));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 1);
    }

    /// Diamond with labeled legs: a -0-> b -1-> d and a -0-> c -1-> d,
    /// plus a stray a -2-> d.
    fn labeled_diamond() -> Graph {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        let d = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(0));
        g.add_edge(a, c, ELabel(0));
        g.add_edge(b, d, ELabel(1));
        g.add_edge(c, d, ELabel(1));
        g.add_edge(a, d, ELabel(2));
        g
    }

    #[test]
    fn walk_counts_by_label_sequence() {
        let g = labeled_diamond();
        assert_eq!(count_label_walks(&g, &[]), 4, "one empty walk per vertex");
        assert_eq!(count_label_walks(&g, &[ELabel(0)]), 2);
        assert_eq!(count_label_walks(&g, &[ELabel(2)]), 1);
        assert_eq!(count_label_walks(&g, &[ELabel(0), ELabel(1)]), 2);
        assert_eq!(count_label_walks(&g, &[ELabel(1), ELabel(0)]), 0);
        assert_eq!(count_label_walks(&g, &[ELabel(9)]), 0);
    }

    #[test]
    fn walk_counts_agree_between_arena_and_frozen() {
        let mut g = labeled_diamond();
        // Tombstone a vertex so the arena has dead slots past the live
        // count — the frozen snapshot compacts them away.
        let dead = g.add_vertex(VLabel(0));
        g.remove_vertex(dead);
        let fg = g.freeze();
        for labels in [
            vec![],
            vec![ELabel(0)],
            vec![ELabel(0), ELabel(1)],
            vec![ELabel(2), ELabel(1)],
        ] {
            assert_eq!(
                count_label_walks(&g, &labels),
                count_label_walks(&fg, &labels),
                "labels {labels:?}"
            );
        }
    }

    #[test]
    fn walk_counts_follow_multigraph_multiplicity() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(0));
        g.add_edge(a, b, ELabel(0));
        g.add_edge(b, c, ELabel(0));
        // Two parallel first legs times one second leg.
        assert_eq!(count_label_walks(&g, &[ELabel(0), ELabel(0)]), 2);
    }
}
