//! Random graph generators and planted-pattern construction.
//!
//! Two consumers:
//!
//! * the **recall experiment** (paper footnote 2): "simulated data
//!   constructed by joining subgraphs with known frequent patterns to form
//!   a single graph, and then partitioned" — [`plant_patterns`];
//! * the **label-cardinality experiment** (§8): the authors used FSG's
//!   synthetic transaction generator with many distinct vertex labels to
//!   show candidate-set explosion — [`random_transactions`].

use crate::graph::{ELabel, Graph, VLabel, VertexId};
use crate::rng::{Rng, StdRng};

/// Configuration for uniform random labeled digraphs.
#[derive(Clone, Debug)]
pub struct RandomGraphConfig {
    pub vertices: usize,
    pub edges: usize,
    /// Vertex labels drawn uniformly from `0..vertex_labels`.
    pub vertex_labels: u32,
    /// Edge labels drawn uniformly from `0..edge_labels`.
    pub edge_labels: u32,
    /// Allow self loops.
    pub self_loops: bool,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            vertices: 20,
            edges: 40,
            vertex_labels: 1,
            edge_labels: 4,
            self_loops: false,
        }
    }
}

/// Generates a random labeled directed multigraph.
pub fn random_graph(cfg: &RandomGraphConfig, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_graph_with(cfg, &mut rng)
}

/// As [`random_graph`], drawing from a caller-supplied RNG.
pub fn random_graph_with(cfg: &RandomGraphConfig, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::with_capacity(cfg.vertices, cfg.edges);
    let vs: Vec<VertexId> = (0..cfg.vertices)
        .map(|_| g.add_vertex(VLabel(rng.gen_range(0..cfg.vertex_labels.max(1)))))
        .collect();
    if vs.is_empty() {
        return g;
    }
    let mut added = 0usize;
    while added < cfg.edges {
        let s = vs[rng.gen_range(0..vs.len())];
        let d = vs[rng.gen_range(0..vs.len())];
        if !cfg.self_loops && s == d && vs.len() > 1 {
            continue;
        }
        g.add_edge(s, d, ELabel(rng.gen_range(0..cfg.edge_labels.max(1))));
        added += 1;
    }
    g
}

/// A set of independent random graph transactions (FSG-style synthetic
/// workload). `vertex_labels` is the key knob for reproducing the §8
/// candidate-explosion result.
pub fn random_transactions(count: usize, cfg: &RandomGraphConfig, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_graph_with(cfg, &mut rng))
        .collect()
}

/// Result of [`plant_patterns`]: the composite graph plus the planted
/// pattern templates (for recall measurement).
pub struct Planted {
    /// One large graph containing `copies_per_pattern` disjoint copies of
    /// each pattern, plus `noise_edges` random background edges stitched
    /// between copies.
    pub graph: Graph,
    /// The pattern templates, in the order given.
    pub patterns: Vec<Graph>,
}

/// Builds a single graph containing `copies` disjoint copies of every
/// pattern in `patterns`, then adds `noise_edges` random edges between
/// arbitrary vertices to stitch the copies into one connected-ish graph
/// (mirroring the recall simulation of footnote 2).
///
/// Noise edges use labels `0..noise_edge_labels`, vertices keep their
/// pattern labels.
pub fn plant_patterns(
    patterns: &[Graph],
    copies: usize,
    noise_edges: usize,
    noise_edge_labels: u32,
    seed: u64,
) -> Planted {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    for pat in patterns {
        for _ in 0..copies {
            // Disjoint copy of the pattern. The vertex remap is a dense
            // index-addressed table: arena ids are small stable
            // integers, and a per-edge linear scan would make planting
            // quadratic in pattern size on scaled workloads.
            let max_idx = pat.vertices().map(|v| v.index()).max().unwrap_or(0);
            let mut vmap: Vec<VertexId> = vec![VertexId(u32::MAX); max_idx + 1];
            for v in pat.vertices() {
                vmap[v.index()] = g.add_vertex(pat.vertex_label(v));
            }
            for e in pat.edges() {
                let (s, d, l) = pat.edge(e);
                g.add_edge(vmap[s.index()], vmap[d.index()], l);
            }
        }
    }
    let vs: Vec<VertexId> = g.vertices().collect();
    if vs.len() > 1 {
        for _ in 0..noise_edges {
            let s = vs[rng.gen_range(0..vs.len())];
            let mut d = vs[rng.gen_range(0..vs.len())];
            while d == s {
                d = vs[rng.gen_range(0..vs.len())];
            }
            g.add_edge(s, d, ELabel(rng.gen_range(0..noise_edge_labels.max(1))));
        }
    }
    Planted {
        graph: g,
        patterns: patterns.to_vec(),
    }
}

/// Convenience constructors for the paper's "known good shapes" (§1):
/// hubs, chains, and cycles.
pub mod shapes {
    use super::*;

    /// Hub-and-spoke: one center with `spokes` outgoing edges, all edges
    /// labeled `elabel`, all vertices labeled `vlabel`.
    pub fn hub_and_spoke(spokes: usize, vlabel: u32, elabel: u32) -> Graph {
        let mut g = Graph::new();
        let hub = g.add_vertex(VLabel(vlabel));
        for _ in 0..spokes {
            let s = g.add_vertex(VLabel(vlabel));
            g.add_edge(hub, s, ELabel(elabel));
        }
        g
    }

    /// Directed chain of `edges` edges (a "route": pick up and deliver at
    /// each stop), uniform labels.
    pub fn chain(edges: usize, vlabel: u32, elabel: u32) -> Graph {
        let mut g = Graph::new();
        let mut prev = g.add_vertex(VLabel(vlabel));
        for _ in 0..edges {
            let next = g.add_vertex(VLabel(vlabel));
            g.add_edge(prev, next, ELabel(elabel));
            prev = next;
        }
        g
    }

    /// Directed cycle of `len` vertices ("circular route ... regularly
    /// return home"), uniform labels.
    pub fn cycle(len: usize, vlabel: u32, elabel: u32) -> Graph {
        assert!(len >= 2);
        let mut g = Graph::new();
        let vs: Vec<_> = (0..len).map(|_| g.add_vertex(VLabel(vlabel))).collect();
        for i in 0..len {
            g.add_edge(vs[i], vs[(i + 1) % len], ELabel(elabel));
        }
        g
    }

    /// Bow-tie (§5's motivating hypothetical): `fan` small loads
    /// converging on a point, one heavy long-haul edge to a distant point,
    /// `fan` small loads diverging there. Edge labels: `small` for the
    /// fan edges, `large` for the middle edge.
    pub fn bow_tie(fan: usize, vlabel: u32, small: u32, large: u32) -> Graph {
        let mut g = Graph::new();
        let left = g.add_vertex(VLabel(vlabel));
        let right = g.add_vertex(VLabel(vlabel));
        g.add_edge(left, right, ELabel(large));
        for _ in 0..fan {
            let a = g.add_vertex(VLabel(vlabel));
            g.add_edge(a, left, ELabel(small));
            let b = g.add_vertex(VLabel(vlabel));
            g.add_edge(right, b, ELabel(small));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::{count_disjoint, has_embedding};

    #[test]
    fn random_graph_respects_config() {
        let cfg = RandomGraphConfig {
            vertices: 30,
            edges: 55,
            vertex_labels: 3,
            edge_labels: 5,
            self_loops: false,
        };
        let g = random_graph(&cfg, 1);
        assert_eq!(g.vertex_count(), 30);
        assert_eq!(g.edge_count(), 55);
        for e in g.edges() {
            let (s, d, l) = g.edge(e);
            assert_ne!(s, d, "self loops disabled");
            assert!(l.0 < 5);
        }
        for v in g.vertices() {
            assert!(g.vertex_label(v).0 < 3);
        }
    }

    #[test]
    fn random_graph_deterministic_by_seed() {
        let cfg = RandomGraphConfig::default();
        let a = random_graph(&cfg, 99);
        let b = random_graph(&cfg, 99);
        let ea: Vec<_> = a.edges().map(|e| a.edge(e)).collect();
        let eb: Vec<_> = b.edges().map(|e| b.edge(e)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn transactions_count() {
        let txns = random_transactions(7, &RandomGraphConfig::default(), 3);
        assert_eq!(txns.len(), 7);
    }

    #[test]
    fn planted_patterns_present() {
        let pats = vec![
            shapes::hub_and_spoke(3, 0, 1),
            shapes::chain(4, 0, 2),
            shapes::cycle(3, 0, 3),
        ];
        let planted = plant_patterns(&pats, 5, 20, 1, 7);
        let expect_v: usize = pats.iter().map(|p| p.vertex_count()).sum::<usize>() * 5;
        let expect_e_min: usize = pats.iter().map(|p| p.edge_count()).sum::<usize>() * 5;
        assert_eq!(planted.graph.vertex_count(), expect_v);
        assert_eq!(planted.graph.edge_count(), expect_e_min + 20);
        for p in &pats {
            assert!(has_embedding(p, &planted.graph));
            assert!(count_disjoint(p, &planted.graph) >= 5);
        }
    }

    /// The dense index-addressed vertex remap must reproduce the
    /// pre-optimization linear-scan (`vmap.iter().find`) remap byte for
    /// byte on the calibrated planted workload: same vertex ids, same
    /// edge insertion order, same noise draws.
    #[test]
    fn plant_patterns_matches_linear_scan_reference() {
        let pats = vec![
            shapes::hub_and_spoke(3, 0, 1),
            shapes::chain(4, 0, 2),
            shapes::cycle(3, 0, 3),
        ];
        let (copies, noise, noise_labels, seed) = (50, 40, 2u32, 11u64);
        let fast = plant_patterns(&pats, copies, noise, noise_labels, seed);

        // Reference: the old quadratic implementation, verbatim.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new();
        for pat in &pats {
            for _ in 0..copies {
                let mut vmap: Vec<(VertexId, VertexId)> = Vec::new();
                for v in pat.vertices() {
                    let nv = g.add_vertex(pat.vertex_label(v));
                    vmap.push((v, nv));
                }
                let lookup = |v: VertexId| vmap.iter().find(|(o, _)| *o == v).unwrap().1;
                for e in pat.edges() {
                    let (s, d, l) = pat.edge(e);
                    g.add_edge(lookup(s), lookup(d), l);
                }
            }
        }
        let vs: Vec<VertexId> = g.vertices().collect();
        for _ in 0..noise {
            let s = vs[rng.gen_range(0..vs.len())];
            let mut d = vs[rng.gen_range(0..vs.len())];
            while d == s {
                d = vs[rng.gen_range(0..vs.len())];
            }
            g.add_edge(s, d, ELabel(rng.gen_range(0..noise_labels)));
        }

        assert_eq!(fast.graph.vertex_count(), g.vertex_count());
        assert_eq!(fast.graph.edge_count(), g.edge_count());
        let fa: Vec<_> = fast.graph.edges().map(|e| fast.graph.edge(e)).collect();
        let fb: Vec<_> = g.edges().map(|e| g.edge(e)).collect();
        assert_eq!(fa, fb);
        for (a, b) in fast.graph.vertices().zip(g.vertices()) {
            assert_eq!(a, b);
            assert_eq!(fast.graph.vertex_label(a), g.vertex_label(b));
        }
    }

    #[test]
    fn shape_constructors() {
        let h = shapes::hub_and_spoke(4, 0, 1);
        assert_eq!(h.vertex_count(), 5);
        assert_eq!(h.edge_count(), 4);
        let hub = h.vertices().find(|&v| h.out_degree(v) == 4).unwrap();
        assert_eq!(h.in_degree(hub), 0);

        let c = shapes::chain(3, 0, 1);
        assert_eq!(c.vertex_count(), 4);
        assert_eq!(c.edge_count(), 3);

        let cy = shapes::cycle(4, 0, 1);
        assert_eq!(cy.vertex_count(), 4);
        assert_eq!(cy.edge_count(), 4);
        for v in cy.vertices() {
            assert_eq!(cy.out_degree(v), 1);
            assert_eq!(cy.in_degree(v), 1);
        }

        let bt = shapes::bow_tie(3, 0, 1, 2);
        assert_eq!(bt.vertex_count(), 8);
        assert_eq!(bt.edge_count(), 7);
    }

    #[test]
    fn single_vertex_random_graph_allows_loops_only_if_enabled() {
        let cfg = RandomGraphConfig {
            vertices: 1,
            edges: 2,
            self_loops: true,
            ..Default::default()
        };
        let g = random_graph(&cfg, 5);
        assert_eq!(g.edge_count(), 2);
    }
}
