//! Property-based tests for the graph substrate.
//!
//! Invariants verified here underpin the correctness of both miners:
//! isomorphism must be an equivalence relation blind to vertex numbering,
//! and the invariant hash must never separate isomorphic graphs.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_graph::canon::invariant_hash;
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::iso::{are_isomorphic, find_embeddings, has_embedding, Find};
use tnet_graph::traverse::{connected_components, is_connected, split_components};
use tnet_graph::view::GraphView;

/// A generated edge: (src index, dst index, edge label).
type RawEdge = (usize, usize, u32);

/// Strategy: a small random labeled digraph as (vertex labels, edges).
fn raw_graph(max_v: usize, max_e: usize) -> impl Strategy<Value = (Vec<u32>, Vec<RawEdge>)> {
    (1..=max_v).prop_flat_map(move |nv| {
        let vlabels = proptest::collection::vec(0u32..3, nv);
        let edges = proptest::collection::vec((0..nv, 0..nv, 0u32..3), 0..=max_e);
        (vlabels, edges)
    })
}

fn build(vlabels: &[u32], edges: &[RawEdge]) -> Graph {
    let mut g = Graph::new();
    let vs: Vec<VertexId> = vlabels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
    for &(s, d, l) in edges {
        g.add_edge(vs[s], vs[d], ELabel(l));
    }
    g
}

/// Builds the same graph with vertices inserted in permuted order.
fn build_permuted(vlabels: &[u32], edges: &[RawEdge], perm: &[usize]) -> Graph {
    let mut g = Graph::new();
    // position_of[original index] = new VertexId
    let mut ids: Vec<Option<VertexId>> = vec![None; vlabels.len()];
    for &orig in perm {
        ids[orig] = Some(g.add_vertex(VLabel(vlabels[orig])));
    }
    for &(s, d, l) in edges {
        g.add_edge(ids[s].unwrap(), ids[d].unwrap(), ELabel(l));
    }
    g
}

fn permutation(n: usize, seed: u64) -> Vec<usize> {
    // Simple deterministic Fisher-Yates with an LCG; proptest's seed
    // variety comes from the graph strategy itself.
    let mut v: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Isomorphism is reflexive.
    #[test]
    fn iso_reflexive((vl, es) in raw_graph(7, 12)) {
        let g = build(&vl, &es);
        prop_assert!(are_isomorphic(&g, &g));
    }

    /// Renumbering vertices never changes the isomorphism class or the
    /// invariant hash.
    #[test]
    fn iso_invariant_under_permutation((vl, es) in raw_graph(7, 12), seed in 0u64..1000) {
        let g = build(&vl, &es);
        let perm = permutation(vl.len(), seed);
        let h = build_permuted(&vl, &es, &perm);
        prop_assert!(are_isomorphic(&g, &h));
        prop_assert_eq!(invariant_hash(&g), invariant_hash(&h));
    }

    /// Unequal invariant hashes imply non-isomorphism (contrapositive of
    /// hash soundness): whenever the exact check says isomorphic, hashes
    /// agree.
    #[test]
    fn hash_sound((vl1, es1) in raw_graph(5, 8), (vl2, es2) in raw_graph(5, 8)) {
        let a = build(&vl1, &es1);
        let b = build(&vl2, &es2);
        if are_isomorphic(&a, &b) {
            prop_assert_eq!(invariant_hash(&a), invariant_hash(&b));
        }
    }

    /// Every graph embeds in itself, and single-edge subpatterns embed.
    #[test]
    fn self_embedding((vl, es) in raw_graph(6, 10)) {
        let g = build(&vl, &es);
        if g.edge_count() > 0 {
            prop_assert!(has_embedding(&g, &g));
            // Each single edge of g is a pattern occurring in g.
            for e in g.edges() {
                let (sub, _) = g.edge_subgraph(&[e]);
                prop_assert!(has_embedding(&sub, &g));
            }
        }
    }

    /// Embeddings map pattern edges onto existing target edges with
    /// matching labels (spot-check of the §4 definition).
    #[test]
    fn embeddings_are_valid((vl, es) in raw_graph(5, 8)) {
        let g = build(&vl, &es);
        let edges: Vec<_> = g.edges().collect();
        if edges.len() >= 2 {
            let (pat, _) = g.edge_subgraph(&edges[..2]);
            for emb in find_embeddings(&pat, &g, Find::AtMost(16)) {
                for pe in pat.edges() {
                    let (ps, pd, pl) = pat.edge(pe);
                    let ts = emb.image(ps);
                    let td = emb.image(pd);
                    let found = g.out_edges(ts).any(|te| {
                        let (_, d2, l2) = g.edge(te);
                        d2 == td && l2 == pl
                    });
                    prop_assert!(found, "pattern edge not realized in target");
                }
                // Injectivity.
                let mut seen = std::collections::HashSet::new();
                for tv in emb.target_vertices() {
                    prop_assert!(seen.insert(tv));
                }
            }
        }
    }

    /// Components partition the vertex set, and splitting preserves edge
    /// totals.
    #[test]
    fn components_partition((vl, es) in raw_graph(8, 12)) {
        let g = build(&vl, &es);
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.vertex_count());
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for v in c {
                prop_assert!(seen.insert(*v), "vertex in two components");
            }
        }
        let parts = split_components(&g);
        let esum: usize = parts.iter().map(|p| p.edge_count()).sum();
        prop_assert_eq!(esum, g.edge_count());
        for p in &parts {
            prop_assert!(is_connected(p));
        }
    }

    /// dedup_edges removes exactly the duplicate (src,dst,label) triples.
    #[test]
    fn dedup_is_exact((vl, es) in raw_graph(6, 14)) {
        let mut g = build(&vl, &es);
        let before = g.edge_count();
        let mut triples = std::collections::HashSet::new();
        let mut expect_removed = 0;
        for e in g.edges() {
            if !triples.insert(g.edge(e)) {
                expect_removed += 1;
            }
        }
        let removed = g.dedup_edges();
        prop_assert_eq!(removed, expect_removed);
        prop_assert_eq!(g.edge_count(), before - removed);
        // Idempotent.
        prop_assert_eq!(g.dedup_edges(), 0);
    }

    /// `thaw(freeze(g))` is isomorphic to `g` with an identical invariant
    /// hash: the frozen-CSR snapshot is a lossless representation change,
    /// even when the builder carries tombstones from removals.
    #[test]
    fn freeze_thaw_roundtrip((vl, es) in raw_graph(7, 12), kill in proptest::collection::vec(any::<prop::sample::Index>(), 0..3)) {
        let mut g = build(&vl, &es);
        let vs: Vec<_> = g.vertices().collect();
        for idx in kill {
            g.remove_vertex(*idx.get(&vs));
        }
        let frozen = g.freeze();
        prop_assert_eq!(frozen.vertex_count(), g.vertex_count());
        prop_assert_eq!(frozen.edge_count(), g.edge_count());
        prop_assert_eq!(frozen.invariant_hash(), invariant_hash(&g));
        let thawed = frozen.thaw();
        prop_assert!(are_isomorphic(&g, &thawed));
        prop_assert_eq!(invariant_hash(&g), invariant_hash(&thawed));
    }

    /// compact() preserves the isomorphism class.
    #[test]
    fn compact_preserves_structure((vl, es) in raw_graph(7, 12), kill in proptest::collection::vec(any::<prop::sample::Index>(), 0..3)) {
        let mut g = build(&vl, &es);
        let vs: Vec<_> = g.vertices().collect();
        for idx in kill {
            let v = *idx.get(&vs);
            g.remove_vertex(v);
        }
        if g.vertex_count() == 0 { return Ok(()); }
        let before = g.clone();
        g.compact();
        prop_assert!(are_isomorphic(&before, &g));
    }
}
