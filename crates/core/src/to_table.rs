//! Flattening transactions into the §7 "pure transactional form".
//!
//! The paper excluded the two date attributes ("Since Weka maps the DATE
//! attribute type to a REAL, interpreting experiment results is
//! non-trivial. This led to our exclusion of these two attributes"), so
//! the default table carries the nine remaining columns.

use tnet_data::model::Transaction;
use tnet_tabular::table::{Column, Table};

/// Column names in the emitted table (Table 1 minus the dates, plus the
/// nominal TRANS_MODE).
pub const NUMERIC_COLUMNS: [&str; 7] = [
    "ORIGIN_LATITUDE",
    "ORIGIN_LONGITUDE",
    "DEST_LATITUDE",
    "DEST_LONGITUDE",
    "TOTAL_DISTANCE",
    "GROSS_WEIGHT",
    "MOVE_TRANSIT_HOURS",
];

/// Builds the undiscretized transactional table.
pub fn transactions_to_table(txns: &[Transaction]) -> Table {
    let mut t = Table::new();
    t.add_column(
        "ORIGIN_LATITUDE",
        Column::Numeric(txns.iter().map(|x| x.origin.lat()).collect()),
    );
    t.add_column(
        "ORIGIN_LONGITUDE",
        Column::Numeric(txns.iter().map(|x| x.origin.lon()).collect()),
    );
    t.add_column(
        "DEST_LATITUDE",
        Column::Numeric(txns.iter().map(|x| x.dest.lat()).collect()),
    );
    t.add_column(
        "DEST_LONGITUDE",
        Column::Numeric(txns.iter().map(|x| x.dest.lon()).collect()),
    );
    t.add_column(
        "TOTAL_DISTANCE",
        Column::Numeric(txns.iter().map(|x| x.total_distance).collect()),
    );
    t.add_column(
        "GROSS_WEIGHT",
        Column::Numeric(txns.iter().map(|x| x.gross_weight).collect()),
    );
    t.add_column(
        "MOVE_TRANSIT_HOURS",
        Column::Numeric(txns.iter().map(|x| x.transit_hours).collect()),
    );
    t.add_column(
        "TRANS_MODE",
        Column::Nominal {
            values: txns
                .iter()
                .map(|x| match x.mode {
                    tnet_data::model::TransMode::LessThanTruckload => 0,
                    tnet_data::model::TransMode::Truckload => 1,
                })
                .collect(),
            names: vec!["LTL".into(), "TL".into()],
        },
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::synth::{generate, SynthConfig};

    #[test]
    fn table_shape_and_values() {
        let ds = generate(&SynthConfig::scaled(0.01));
        let t = transactions_to_table(&ds.transactions);
        assert_eq!(t.rows(), ds.transactions.len());
        assert_eq!(t.column_count(), 8);
        for name in NUMERIC_COLUMNS {
            assert!(t.column_by_name(name).is_numeric(), "{name} numeric");
        }
        let (modes, names) = t.column_by_name("TRANS_MODE").as_nominal().unwrap();
        assert_eq!(names, &["LTL".to_string(), "TL".to_string()]);
        assert_eq!(modes.len(), ds.transactions.len());
        // Spot-check one row.
        let w = t.column_by_name("GROSS_WEIGHT").as_numeric().unwrap();
        assert_eq!(w[0], ds.transactions[0].gross_weight);
    }

    #[test]
    fn dates_excluded() {
        let ds = generate(&SynthConfig::scaled(0.01));
        let t = transactions_to_table(&ds.transactions);
        assert!(t.index_of("REQ_PICKUP_DT").is_none());
        assert!(t.index_of("REQ_DELIVERY_DT").is_none());
    }
}
