//! # tnet-core
//!
//! The top-level library of the `tnet-mine` workspace — a Rust
//! reproduction of *Knowledge Discovery from Transportation Network
//! Data* (Jiang, Vaidya, Balaporia, Clifton, Banich; ICDE 2005).
//!
//! It ties the substrates together:
//!
//! * [`pipeline::Pipeline`] — dataset → OD graphs → partitioning →
//!   miners → combined report;
//! * [`patterns`] — the transportation pattern taxonomy (hubs, chains,
//!   cycles, bow-ties, deadheads) and interestingness scoring;
//! * [`to_table`] — the §7 flattened transactional form;
//! * [`experiments`] — one runner per table/figure of the paper
//!   (E1–E15; see the module table).
//!
//! ```
//! use tnet_core::pipeline::Pipeline;
//!
//! let p = Pipeline::synthetic(0.01, 42);
//! let stats = p.dataset_stats();
//! assert!(stats.distinct_od_pairs > 100);
//! ```

pub mod error;
pub mod experiments;
pub mod null_model;
pub mod patterns;
pub mod pipeline;
pub mod supervisor;
pub mod to_table;

pub use error::PipelineError;
pub use patterns::{classify, interestingness, Interestingness, PatternShape};
pub use pipeline::{Pipeline, ReportOutcome};
pub use supervisor::{Effort, SectionCtx, SectionOutcome, SectionStatus, SupervisorConfig};
pub use to_table::transactions_to_table;
