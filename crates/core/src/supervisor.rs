//! Section supervision: deadlines, panic isolation, and degraded retry.
//!
//! The full report runs each experiment section under a supervisor that
//! (1) gives the section a child execution handle carrying an optional
//! wall-clock deadline, (2) catches panics so one section's crash cannot
//! take down the report, and (3) on a *retryable* failure — a miner's
//! memory-budget abort or a deadline overrun — retries the section once
//! at reduced effort, mirroring the paper's §6.1 response to FSG
//! exhausting memory (raise the support threshold, shrink the input).
//! Whatever happens, the report completes: failed sections render a
//! notice block instead of their results.

use crate::error::PipelineError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use tnet_exec::Exec;

/// Supervision policy for a report run. The default (no deadline, no
/// budget) never aborts a section, so unsupervised output is preserved.
#[derive(Clone, Debug, Default)]
pub struct SupervisorConfig {
    /// Wall-clock limit per section attempt. The section's execution
    /// handle carries the deadline; cancellation-aware loops (SUBDUE
    /// beam, FSG levels, gSpan growth, EM iterations, chunked pool
    /// regions) observe it between units of work.
    pub section_deadline: Option<Duration>,
    /// Memory budget in bytes per section, passed to every miner the
    /// section runs.
    pub section_budget: Option<usize>,
}

/// How hard a section attempt should try. The first attempt runs at
/// [`Effort::Normal`]; a retry after a retryable failure runs at
/// [`Effort::Degraded`] — sections respond by raising support, halving
/// input sizes, or narrowing beams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    Normal,
    Degraded,
}

/// Everything a section body receives from the supervisor.
pub struct SectionCtx<'a> {
    /// Execution handle for the attempt. Carries the deadline: when it
    /// expires, `exec.is_cancelled()` turns true and cancellation-aware
    /// work aborts with a `Cancelled` error the supervisor reclassifies
    /// as [`PipelineError::DeadlineExceeded`].
    pub exec: &'a Exec,
    /// Effort level for the attempt.
    pub effort: Effort,
    /// Memory budget (bytes) to hand to miners, if any.
    pub budget: Option<usize>,
}

/// Terminal status of a supervised section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionStatus {
    /// Succeeded at normal effort.
    Ok,
    /// First attempt hit a retryable failure; the degraded retry
    /// succeeded.
    Degraded,
    /// No attempt produced output.
    Failed,
}

/// A supervised section's result: its rendered block (results or a
/// failure notice) plus how it got there.
pub struct SectionOutcome {
    pub name: &'static str,
    pub status: SectionStatus,
    /// The block to splice into the report.
    pub text: String,
    /// The failure that ended the run (Failed) or triggered the retry
    /// (Degraded).
    pub error: Option<PipelineError>,
}

/// A supervised section body.
pub type Section<'a> = dyn Fn(&SectionCtx) -> Result<String, PipelineError> + Sync + 'a;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt of `body` under a fresh child handle. A fresh token
/// per attempt matters: if the first attempt tripped its deadline or a
/// budget abort cancelled the token, a reused handle would leave the
/// retry born-cancelled.
fn attempt(
    name: &'static str,
    cfg: &SupervisorConfig,
    exec: &Exec,
    threads: usize,
    effort: Effort,
    body: &Section<'_>,
) -> Result<String, PipelineError> {
    let child = match cfg.section_deadline {
        Some(limit) => exec.child_with_deadline(threads, limit),
        None => exec.child_with_threads(threads),
    };
    // Scope the attempt's work under the section's span node (both
    // attempts of a retried section aggregate there — the node's call
    // count reads 2). Sections run concurrently, so the caller
    // pre-registers section nodes in report order to keep the rendered
    // tree deterministic.
    let section_span = exec.span().child(name);
    let child = child.with_span(section_span.clone());
    let ctx = SectionCtx {
        exec: &child,
        effort,
        budget: cfg.section_budget,
    };
    let timer = section_span.timer();
    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
    drop(timer);
    match result {
        Ok(Ok(text)) => Ok(text),
        Ok(Err(e)) => {
            // A bare Cancelled out of a section whose deadline token has
            // expired *is* the deadline firing — name it.
            if e.is_cancellation() && child.cancel_token().deadline_expired() {
                Err(PipelineError::DeadlineExceeded {
                    section: name.to_string(),
                    limit: cfg
                        .section_deadline
                        .expect("expired deadline implies one was set"),
                })
            } else {
                Err(e)
            }
        }
        Err(payload) => Err(PipelineError::Panic {
            section: name.to_string(),
            message: panic_message(payload),
        }),
    }
}

/// Renders the notice block for a section that produced no output.
fn failure_block(name: &str, error: &PipelineError, retried: Option<&PipelineError>) -> String {
    let mut s = format!("=== {name} ===\n!! section failed: {error}\n");
    if let Some(first) = retried {
        s.push_str(&format!(
            "!! (degraded retry after: {first} — retry also failed)\n"
        ));
    }
    s.push('\n');
    s
}

/// Runs `body` under the full supervision policy: deadline + panic
/// isolation + one degraded retry on a retryable failure. Always returns
/// an outcome with renderable text.
pub fn run_section(
    name: &'static str,
    cfg: &SupervisorConfig,
    exec: &Exec,
    threads: usize,
    body: &Section<'_>,
) -> SectionOutcome {
    match attempt(name, cfg, exec, threads, Effort::Normal, body) {
        Ok(text) => SectionOutcome {
            name,
            status: SectionStatus::Ok,
            text,
            error: None,
        },
        Err(first) if first.is_retryable() => {
            match attempt(name, cfg, exec, threads, Effort::Degraded, body) {
                Ok(text) => SectionOutcome {
                    name,
                    status: SectionStatus::Degraded,
                    text: format!(
                        "!! degraded: `{name}` retried at reduced effort after: {first}\n{text}"
                    ),
                    error: Some(first),
                },
                Err(second) => SectionOutcome {
                    name,
                    status: SectionStatus::Failed,
                    text: failure_block(name, &second, Some(&first)),
                    error: Some(second),
                },
            }
        }
        Err(first) => SectionOutcome {
            name,
            status: SectionStatus::Failed,
            text: failure_block(name, &first, None),
            error: Some(first),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_deadline(ms: u64) -> SupervisorConfig {
        SupervisorConfig {
            section_deadline: Some(Duration::from_millis(ms)),
            section_budget: None,
        }
    }

    #[test]
    fn ok_section_passes_through() {
        let exec = Exec::new(2);
        let out = run_section(
            "t",
            &SupervisorConfig::default(),
            &exec,
            1,
            &|_ctx: &SectionCtx| Ok("hello\n".to_string()),
        );
        assert_eq!(out.status, SectionStatus::Ok);
        assert_eq!(out.text, "hello\n");
        assert!(out.error.is_none());
    }

    #[test]
    fn panic_is_isolated_and_not_retried() {
        let exec = Exec::new(2);
        let attempts = std::sync::atomic::AtomicUsize::new(0);
        let out = run_section("boom", &SupervisorConfig::default(), &exec, 1, &|_ctx| {
            attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            panic!("kaboom {}", 7);
        });
        assert_eq!(out.status, SectionStatus::Failed);
        assert_eq!(attempts.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(out.text.contains("section failed"), "{}", out.text);
        assert!(out.text.contains("kaboom 7"), "{}", out.text);
        match out.error {
            Some(PipelineError::Panic { ref message, .. }) => assert_eq!(message, "kaboom 7"),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_inside_pool_is_isolated() {
        let exec = Exec::new(4);
        let out = run_section("w", &SupervisorConfig::default(), &exec, 2, &|ctx| {
            let items: Vec<usize> = (0..64).collect();
            let _ = ctx.exec.par_map(&items, |&i| {
                if i == 13 {
                    panic!("worker died");
                }
                i * 2
            });
            Ok("unreachable".into())
        });
        assert_eq!(out.status, SectionStatus::Failed);
        assert!(out.text.contains("worker died"), "{}", out.text);
    }

    #[test]
    fn deadline_cancellation_is_reclassified() {
        let exec = Exec::new(2);
        let cfg = cfg_with_deadline(15);
        let out = run_section("slow", &cfg, &exec, 1, &|ctx| {
            // Spin until the deadline shows up through the handle, then
            // report the bare cancellation a miner would.
            while !ctx.exec.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(PipelineError::Cancelled)
        });
        // DeadlineExceeded is retryable; the retry times out the same
        // way, so the section fails with a deadline error, not Cancelled.
        assert_eq!(out.status, SectionStatus::Failed);
        match out.error {
            Some(PipelineError::DeadlineExceeded { ref section, .. }) => {
                assert_eq!(section, "slow");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(out.text.contains("deadline"), "{}", out.text);
    }

    #[test]
    fn degraded_retry_recovers_from_budget_abort() {
        let exec = Exec::new(2);
        let out = run_section(
            "mem",
            &SupervisorConfig::default(),
            &exec,
            1,
            &|ctx| match ctx.effort {
                Effort::Normal => Err(PipelineError::Subdue(
                    tnet_subdue::SubdueError::MemoryBudgetExceeded {
                        estimated_bytes: 1024,
                        budget: 512,
                        expanded: 3,
                    },
                )),
                Effort::Degraded => Ok("smaller result\n".into()),
            },
        );
        assert_eq!(out.status, SectionStatus::Degraded);
        assert!(out.text.contains("degraded"), "{}", out.text);
        assert!(out.text.contains("smaller result"), "{}", out.text);
        assert!(matches!(
            out.error,
            Some(PipelineError::Subdue(
                tnet_subdue::SubdueError::MemoryBudgetExceeded { .. }
            ))
        ));
    }

    #[test]
    fn retry_gets_a_fresh_uncancelled_handle() {
        let exec = Exec::new(2);
        let cfg = cfg_with_deadline(40);
        let saw_fresh = std::sync::atomic::AtomicBool::new(false);
        let out = run_section("fresh", &cfg, &exec, 1, &|ctx| match ctx.effort {
            Effort::Normal => {
                while !ctx.exec.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(PipelineError::Cancelled)
            }
            Effort::Degraded => {
                saw_fresh.store(
                    !ctx.exec.is_cancelled(),
                    std::sync::atomic::Ordering::SeqCst,
                );
                Ok("quick\n".into())
            }
        });
        assert_eq!(out.status, SectionStatus::Degraded);
        assert!(
            saw_fresh.load(std::sync::atomic::Ordering::SeqCst),
            "degraded attempt must start on an uncancelled handle"
        );
    }

    #[test]
    fn non_retryable_error_fails_without_retry() {
        let exec = Exec::new(2);
        let attempts = std::sync::atomic::AtomicUsize::new(0);
        let out = run_section("io", &SupervisorConfig::default(), &exec, 1, &|_ctx| {
            attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Err(PipelineError::Io("disk gone".into()))
        });
        assert_eq!(out.status, SectionStatus::Failed);
        assert_eq!(attempts.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(out.text.contains("disk gone"));
    }
}
