//! The high-level knowledge-discovery pipeline: dataset → graphs →
//! partitioning → miners → report.

use crate::experiments::{conventional, structural, temporal};
use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, OdGraph, VertexLabeling};
use tnet_data::stats::{dataset_stats, DatasetStats};
use tnet_data::synth::{generate, Dataset, SynthConfig};
use tnet_exec::Exec;
use tnet_partition::split::Strategy;

/// One pipeline over a transaction dataset. Construction is cheap; each
/// accessor builds what it needs.
pub struct Pipeline {
    transactions: Vec<Transaction>,
    scheme: BinScheme,
    /// Ground truth when the data came from the synthetic generator.
    pub dataset: Option<Dataset>,
}

impl Pipeline {
    /// Builds the pipeline over a synthetic dataset at `scale` of the
    /// paper's published size (1.0 = 98,292 transactions).
    pub fn synthetic(scale: f64, seed: u64) -> Pipeline {
        let cfg = SynthConfig::scaled(scale).with_seed(seed);
        let dataset = generate(&cfg);
        let scheme = BinScheme::fit_width_transactions(&dataset.transactions);
        Pipeline {
            transactions: dataset.transactions.clone(),
            scheme,
            dataset: Some(dataset),
        }
    }

    /// Builds the pipeline over externally supplied transactions (e.g.
    /// parsed from CSV).
    pub fn from_transactions(transactions: Vec<Transaction>) -> Pipeline {
        let scheme = BinScheme::fit_width_transactions(&transactions);
        Pipeline {
            transactions,
            scheme,
            dataset: None,
        }
    }

    /// Overrides the binning scheme.
    pub fn with_scheme(mut self, scheme: BinScheme) -> Pipeline {
        self.scheme = scheme;
        self
    }

    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    pub fn scheme(&self) -> &BinScheme {
        &self.scheme
    }

    /// E1: the §3 dataset description statistics.
    pub fn dataset_stats(&self) -> DatasetStats {
        dataset_stats(&self.transactions)
    }

    /// A labeled OD graph (`OD_GW` / `OD_TH` / `OD_TD`).
    pub fn od_graph(&self, labeling: EdgeLabeling, vertices: VertexLabeling) -> OdGraph {
        build_od_graph(&self.transactions, &self.scheme, labeling, vertices)
    }

    /// Runs every experiment at sizes proportionate to the dataset and
    /// renders one combined text report. `scale` should match the value
    /// given to [`Pipeline::synthetic`] so thresholds stay calibrated.
    /// Equivalent to [`Pipeline::full_report_with`] on the default
    /// (`--threads` / `TNET_THREADS` / hardware) pool.
    pub fn full_report(&self, scale: f64, seed: u64) -> String {
        self.full_report_with(scale, seed, &Exec::default())
    }

    /// As [`Pipeline::full_report`], running the experiment sections
    /// across `exec`'s workers. Each section is an independent experiment
    /// block and receives a child handle with a proportional slice of the
    /// thread budget for its own inner parallelism; blocks are assembled
    /// in section order, so the report text is identical at any thread
    /// count.
    pub fn full_report_with(&self, scale: f64, seed: u64, exec: &Exec) -> String {
        let txns = &self.transactions;
        let s = |full: usize, min: usize| ((full as f64 * scale).round() as usize).max(min);

        type Section<'a> = Box<dyn Fn(&Exec) -> String + Sync + 'a>;
        let sections: Vec<Section> = vec![
            Box::new(|_| {
                format!(
                    "=== E1: dataset description (Sec 3) ===\n{}\n",
                    self.dataset_stats()
                )
            }),
            Box::new(move |e| format!("{}\n", structural::run_fig1(txns, s(100, 40), e))),
            Box::new(move |e| {
                let rows =
                    structural::run_subdue_scaling(txns, &[s(25, 10), s(50, 20), s(100, 40)], e);
                format!("{}\n", structural::render_scaling(&rows))
            }),
            Box::new(move |e| format!("{}\n", structural::run_size_principle(14, 3, 60, seed, e))),
            Box::new(move |e| {
                let rows = structural::run_partition_sweep(
                    txns,
                    EdgeLabeling::GrossWeight,
                    &[s(400, 6), s(800, 12), s(1200, 18), s(1600, 24)],
                    s(240, 4),
                    s(120, 3),
                    2,
                    5,
                    seed,
                    e,
                );
                format!("{}\n", structural::render_sweep(&rows))
            }),
            Box::new(move |e| {
                format!(
                    "{}\n",
                    structural::run_shape_mining(
                        txns,
                        EdgeLabeling::TransitHours,
                        Strategy::BreadthFirst,
                        s(800, 10),
                        s(240, 4),
                        2,
                        5,
                        seed,
                        e,
                    )
                )
            }),
            Box::new(move |e| {
                format!(
                    "{}\n",
                    structural::run_shape_mining(
                        txns,
                        EdgeLabeling::TotalDistance,
                        Strategy::DepthFirst,
                        s(800, 10),
                        s(120, 3),
                        2,
                        5,
                        seed,
                        e,
                    )
                )
            }),
            Box::new(move |e| {
                let mut out = String::new();
                for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
                    out.push_str(&structural::run_recall(24, 60, 6, strategy, seed, e).to_string());
                }
                out.push('\n');
                out
            }),
            // The §6 temporal chain shares data (Table 2's transactions
            // feed E11), so it stays one section.
            Box::new(move |e| {
                let t2 = temporal::run_table2(txns);
                let label_limit = temporal::quiet_day_label_limit(txns, 0.1);
                let fig4 = temporal::run_fig4(txns, label_limit, e);
                let oom = temporal::run_fsg_oom(
                    &t2.transactions,
                    tnet_fsg::Support::Count(8),
                    256 * 1024,
                    e,
                );
                format!("{t2}\n{fig4}\n{oom}\n")
            }),
            Box::new(|_| format!("{}\n", conventional::run_assoc(txns, 12))),
            Box::new(|_| format!("{}\n", conventional::run_classify(txns))),
            Box::new(move |e| conventional::run_cluster(txns, 9, seed, e).to_string()),
        ];
        let outer = exec.threads().min(sections.len()).max(1);
        let inner = (exec.threads() / outer).max(1);
        let blocks = exec.par_map(&sections, |sec| sec(&exec.child_with_threads(inner)));
        blocks.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_pipeline_basics() {
        let p = Pipeline::synthetic(0.01, 42);
        let st = p.dataset_stats();
        assert_eq!(st.transactions, p.transactions().len());
        let g = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
        assert_eq!(g.graph.edge_count(), st.transactions);
        assert!(p.dataset.is_some());
    }

    #[test]
    fn from_transactions_roundtrip() {
        let source = Pipeline::synthetic(0.01, 1);
        let p = Pipeline::from_transactions(source.transactions().to_vec());
        assert!(p.dataset.is_none());
        assert_eq!(
            p.dataset_stats().distinct_od_pairs,
            source.dataset_stats().distinct_od_pairs
        );
    }
}
