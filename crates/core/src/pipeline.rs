//! The high-level knowledge-discovery pipeline: dataset → graphs →
//! partitioning → miners → report.

use crate::error::PipelineError;
use crate::experiments::{conventional, structural, temporal};
use crate::supervisor::{self, Effort, SectionCtx, SectionStatus, SupervisorConfig};
use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, OdGraph, VertexLabeling};
use tnet_data::stats::{dataset_stats, DatasetStats};
use tnet_data::synth::{generate, Dataset, SynthConfig};
use tnet_exec::Exec;
use tnet_fsg::Support;
use tnet_partition::split::Strategy;

/// One pipeline over a transaction dataset. Construction is cheap; each
/// accessor builds what it needs.
pub struct Pipeline {
    transactions: Vec<Transaction>,
    scheme: BinScheme,
    /// Ground truth when the data came from the synthetic generator.
    pub dataset: Option<Dataset>,
}

/// A supervised report: the rendered text plus how each section fared.
/// The text always ends with a `sections: N ok, M degraded, K failed`
/// summary line.
pub struct ReportOutcome {
    pub text: String,
    pub ok: usize,
    pub degraded: usize,
    pub failed: usize,
}

impl ReportOutcome {
    pub fn sections(&self) -> usize {
        self.ok + self.degraded + self.failed
    }
}

impl Pipeline {
    /// Builds the pipeline over a synthetic dataset at `scale` of the
    /// paper's published size (1.0 = 98,292 transactions).
    pub fn synthetic(scale: f64, seed: u64) -> Pipeline {
        let cfg = SynthConfig::scaled(scale).with_seed(seed);
        let dataset = generate(&cfg);
        let scheme = BinScheme::fit_width_transactions(&dataset.transactions)
            .expect("synthetic data is non-empty with finite, varying attributes");
        Pipeline {
            transactions: dataset.transactions.clone(),
            scheme,
            dataset: Some(dataset),
        }
    }

    /// Builds the pipeline over externally supplied transactions (e.g.
    /// parsed from CSV).
    ///
    /// # Errors
    /// Returns [`PipelineError::BinFit`] when the set is empty, carries
    /// non-finite attribute values, or an attribute is constant — all
    /// states where the downstream equal-width binning is meaningless.
    pub fn from_transactions(transactions: Vec<Transaction>) -> Result<Pipeline, PipelineError> {
        let scheme = BinScheme::fit_width_transactions(&transactions)?;
        Ok(Pipeline {
            transactions,
            scheme,
            dataset: None,
        })
    }

    /// Overrides the binning scheme.
    pub fn with_scheme(mut self, scheme: BinScheme) -> Pipeline {
        self.scheme = scheme;
        self
    }

    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    pub fn scheme(&self) -> &BinScheme {
        &self.scheme
    }

    /// E1: the §3 dataset description statistics.
    pub fn dataset_stats(&self) -> DatasetStats {
        dataset_stats(&self.transactions)
    }

    /// A labeled OD graph (`OD_GW` / `OD_TH` / `OD_TD`).
    pub fn od_graph(&self, labeling: EdgeLabeling, vertices: VertexLabeling) -> OdGraph {
        build_od_graph(&self.transactions, &self.scheme, labeling, vertices)
    }

    /// Runs every experiment at sizes proportionate to the dataset and
    /// renders one combined text report. `scale` should match the value
    /// given to [`Pipeline::synthetic`] so thresholds stay calibrated.
    /// Equivalent to [`Pipeline::full_report_with`] on the default
    /// (`--threads` / `TNET_THREADS` / hardware) pool.
    pub fn full_report(&self, scale: f64, seed: u64) -> String {
        self.full_report_with(scale, seed, &Exec::default())
    }

    /// As [`Pipeline::full_report`], running the experiment sections
    /// across `exec`'s workers. Shorthand for
    /// [`Pipeline::full_report_supervised`] with the default (no
    /// deadline, no budget) policy, keeping only the text.
    pub fn full_report_with(&self, scale: f64, seed: u64, exec: &Exec) -> String {
        self.full_report_supervised(scale, seed, exec, &SupervisorConfig::default())
            .text
    }

    /// Runs the full report under supervision: every section executes
    /// under [`supervisor::run_section`] — panic-isolated, bounded by
    /// the config's per-section deadline and memory budget, and retried
    /// once at reduced effort (raised support, smaller inputs, fewer
    /// iterations) after a retryable failure. The report always
    /// completes: sections that fail render a notice block, and the
    /// text ends with a `sections: N ok, M degraded, K failed` line.
    ///
    /// Each section is an independent experiment block and receives a
    /// child handle with a proportional slice of the thread budget for
    /// its own inner parallelism; blocks are assembled in section
    /// order, so the report text is identical at any thread count.
    pub fn full_report_supervised(
        &self,
        scale: f64,
        seed: u64,
        exec: &Exec,
        cfg: &SupervisorConfig,
    ) -> ReportOutcome {
        let txns = &self.transactions;
        let s = |full: usize, min: usize| ((full as f64 * scale).round() as usize).max(min);

        type Body<'a> = Box<dyn Fn(&SectionCtx) -> Result<String, PipelineError> + Sync + 'a>;
        let scaling_sizes = [s(25, 10), s(50, 20), s(100, 40)];
        let sections: Vec<(&'static str, Body)> = vec![
            (
                "E1: dataset description",
                Box::new(|_: &SectionCtx| {
                    Ok(format!(
                        "=== E1: dataset description (Sec 3) ===\n{}\n",
                        self.dataset_stats()
                    ))
                }),
            ),
            (
                "E2: SUBDUE/MDL on OD_GW (Figure 1)",
                Box::new(move |c: &SectionCtx| {
                    // Degraded: halve the truncated graph, as one would
                    // after a budget abort on the full one.
                    let vertices = match c.effort {
                        Effort::Normal => s(100, 40),
                        Effort::Degraded => s(50, 20),
                    };
                    Ok(format!(
                        "{}\n",
                        structural::run_fig1(txns, vertices, c.budget, c.exec)?
                    ))
                }),
            ),
            (
                "E3: SUBDUE runtime scaling",
                Box::new(move |c: &SectionCtx| {
                    // Degraded: drop the largest graph from the sweep.
                    let sizes: &[usize] = match c.effort {
                        Effort::Normal => &scaling_sizes,
                        Effort::Degraded => &scaling_sizes[..2],
                    };
                    let rows = structural::run_subdue_scaling(txns, sizes, c.budget, c.exec)?;
                    Ok(format!("{}\n", structural::render_scaling(&rows)))
                }),
            ),
            (
                "E4: Size principle on planted structure",
                Box::new(move |c: &SectionCtx| {
                    let (vertices, noise) = match c.effort {
                        Effort::Normal => (14, 60),
                        Effort::Degraded => (10, 30),
                    };
                    Ok(format!(
                        "{}\n",
                        structural::run_size_principle(vertices, 3, noise, seed, c.budget, c.exec)?
                    ))
                }),
            ),
            (
                "E5: BF/DF partition sweep",
                Box::new(move |c: &SectionCtx| {
                    // Degraded: double both support thresholds — the
                    // paper's own response to FSG blowing memory on
                    // low-support breadth-first partitions.
                    let m = match c.effort {
                        Effort::Normal => 1,
                        Effort::Degraded => 2,
                    };
                    let rows = structural::run_partition_sweep(
                        txns,
                        EdgeLabeling::GrossWeight,
                        &[s(400, 6), s(800, 12), s(1200, 18), s(1600, 24)],
                        s(240, 4) * m,
                        s(120, 3) * m,
                        2,
                        5,
                        seed,
                        c.budget,
                        c.exec,
                    )?;
                    Ok(format!("{}\n", structural::render_sweep(&rows)))
                }),
            ),
            (
                "Figure 2: BF shape mining on OD_TH",
                Box::new(move |c: &SectionCtx| {
                    let m = match c.effort {
                        Effort::Normal => 1,
                        Effort::Degraded => 2,
                    };
                    Ok(format!(
                        "{}\n",
                        structural::run_shape_mining(
                            txns,
                            EdgeLabeling::TransitHours,
                            Strategy::BreadthFirst,
                            s(800, 10),
                            s(240, 4) * m,
                            2,
                            5,
                            seed,
                            c.budget,
                            c.exec,
                        )?
                    ))
                }),
            ),
            (
                "Figure 3: DF shape mining on OD_TD",
                Box::new(move |c: &SectionCtx| {
                    let m = match c.effort {
                        Effort::Normal => 1,
                        Effort::Degraded => 2,
                    };
                    Ok(format!(
                        "{}\n",
                        structural::run_shape_mining(
                            txns,
                            EdgeLabeling::TotalDistance,
                            Strategy::DepthFirst,
                            s(800, 10),
                            s(120, 3) * m,
                            2,
                            5,
                            seed,
                            c.budget,
                            c.exec,
                        )?
                    ))
                }),
            ),
            (
                "E8: recall of planted patterns",
                Box::new(move |c: &SectionCtx| {
                    let copies = match c.effort {
                        Effort::Normal => 24,
                        Effort::Degraded => 12,
                    };
                    let mut out = String::new();
                    for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
                        out.push_str(
                            &structural::run_recall(copies, 60, 6, strategy, seed, c.exec)
                                .to_string(),
                        );
                    }
                    out.push('\n');
                    Ok(out)
                }),
            ),
            // The §6 temporal chain shares data (Table 2's transactions
            // feed E11), so it stays one section.
            (
                "E9-E11: temporal partitioning and filtered mining",
                Box::new(move |c: &SectionCtx| {
                    let t2 = temporal::run_table2(txns)?;
                    let label_limit = temporal::quiet_day_label_limit(txns, 0.1)?;
                    // Degraded: §6.1's own recovery — raise support,
                    // shrink the pattern-size cap.
                    let (support, max_edges) = match c.effort {
                        Effort::Normal => (Support::Fraction(0.05), 5),
                        Effort::Degraded => (Support::Fraction(0.25), 3),
                    };
                    let fig4 = temporal::run_fig4(
                        txns,
                        label_limit,
                        support,
                        max_edges,
                        c.budget,
                        c.exec,
                    )?;
                    let oom = temporal::run_fsg_oom(
                        &t2.transactions,
                        Support::Count(8),
                        256 * 1024,
                        c.exec,
                    );
                    Ok(format!("{t2}\n{fig4}\n{oom}\n"))
                }),
            ),
            (
                "E12: association rules",
                Box::new(|_: &SectionCtx| Ok(format!("{}\n", conventional::run_assoc(txns, 12)))),
            ),
            (
                "E13: classification",
                Box::new(|_: &SectionCtx| Ok(format!("{}\n", conventional::run_classify(txns)))),
            ),
            (
                "E14/15: EM clustering",
                Box::new(move |c: &SectionCtx| {
                    let iterations = match c.effort {
                        Effort::Normal => 60,
                        Effort::Degraded => 30,
                    };
                    Ok(conventional::run_cluster(txns, 9, iterations, seed, c.exec)?.to_string())
                }),
            ),
            (
                "E16: temporal windows and flow patterns",
                Box::new(move |c: &SectionCtx| {
                    // Degraded: §6.1's recovery again — raise support,
                    // shrink the pattern cap.
                    let (support, max_edges) = match c.effort {
                        Effort::Normal => (Support::Count(5), 3),
                        Effort::Degraded => (Support::Count(10), 2),
                    };
                    Ok(format!(
                        "{}\n",
                        temporal::run_windowed_flows(
                            txns,
                            self.dataset.as_ref(),
                            support,
                            max_edges,
                            c.budget,
                            c.exec,
                        )?
                    ))
                }),
            ),
        ];
        let outer = exec.threads().min(sections.len()).max(1);
        let inner = (exec.threads() / outer).max(1);
        // Pre-register section spans in report order: sections run
        // concurrently, and first-touch registration inside the pool
        // would make the rendered span tree order depend on scheduling.
        for (name, _) in &sections {
            exec.span().child(name);
        }
        let outcomes = exec.par_map(&sections, |(name, body)| {
            supervisor::run_section(name, cfg, exec, inner, body.as_ref())
        });
        let (mut ok, mut degraded, mut failed) = (0usize, 0usize, 0usize);
        let mut text = String::new();
        for outcome in &outcomes {
            match outcome.status {
                SectionStatus::Ok => ok += 1,
                SectionStatus::Degraded => degraded += 1,
                SectionStatus::Failed => failed += 1,
            }
            text.push_str(&outcome.text);
        }
        text.push_str(&format!(
            "sections: {ok} ok, {degraded} degraded, {failed} failed\n"
        ));
        ReportOutcome {
            text,
            ok,
            degraded,
            failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_pipeline_basics() {
        let p = Pipeline::synthetic(0.01, 42);
        let st = p.dataset_stats();
        assert_eq!(st.transactions, p.transactions().len());
        let g = p.od_graph(EdgeLabeling::GrossWeight, VertexLabeling::Uniform);
        assert_eq!(g.graph.edge_count(), st.transactions);
        assert!(p.dataset.is_some());
    }

    #[test]
    fn from_transactions_roundtrip() {
        let source = Pipeline::synthetic(0.01, 1);
        let p = Pipeline::from_transactions(source.transactions().to_vec()).unwrap();
        assert!(p.dataset.is_none());
        assert_eq!(
            p.dataset_stats().distinct_od_pairs,
            source.dataset_stats().distinct_od_pairs
        );
    }

    #[test]
    fn from_transactions_rejects_empty() {
        let Err(e) = Pipeline::from_transactions(Vec::new()) else {
            panic!("empty transaction set must be rejected");
        };
        assert!(matches!(e, PipelineError::BinFit(_)), "{e}");
    }
}
