//! §7 experiments: association rules (E12), classification (E13), and EM
//! clustering (E14/E15) on the flattened transactional table.

use crate::error::PipelineError;
use crate::to_table::transactions_to_table;
use std::fmt;
use tnet_data::model::Transaction;
use tnet_exec::Exec;
use tnet_tabular::apriori::{mine_rules, render_rule, AprioriConfig, Rule};
use tnet_tabular::correlate::column_correlation;
use tnet_tabular::discretize::{discretize_table, Discretization};
use tnet_tabular::em::{fit_with as em_fit_with, EmConfig};
use tnet_tabular::table::Table;
use tnet_tabular::tree::{DecisionTree, TreeConfig};

// ---------------------------------------------------------------------------
// E12 — §7.1 association rules
// ---------------------------------------------------------------------------

/// Association-rule experiment output.
pub struct AssocResult {
    /// Discretized table (for rendering rules).
    pub table: Table,
    pub rules: Vec<Rule>,
    /// Confidence of the best weight→mode rule, if found.
    pub weight_mode_confidence: Option<f64>,
    /// Confidence of the best origin-longitude→origin-latitude rule.
    pub lon_lat_confidence: Option<f64>,
    /// Best longitude→latitude confidence on either endpoint (the same
    /// geographic-banding insight, robust to which side's binning lines
    /// up with the corridor at a given scale).
    pub geo_band_confidence: Option<f64>,
}

/// Runs §7.1: discretize, mine rules, and look for the paper's two
/// reported rule families.
pub fn run_assoc(txns: &[Transaction], bins: usize) -> AssocResult {
    let raw = transactions_to_table(txns);
    let table = discretize_table(&raw, Discretization::EqualFrequency(bins));
    let cfg = AprioriConfig {
        min_support: 0.05,
        min_confidence: 0.7,
        max_items: 2,
    };
    let rules = mine_rules(&table, &cfg);
    let col = |name: &str| table.index_of(name).unwrap() as u16;
    let weight_col = col("GROSS_WEIGHT");
    let mode_col = col("TRANS_MODE");
    let olon_col = col("ORIGIN_LONGITUDE");
    let olat_col = col("ORIGIN_LATITUDE");
    let best_conf = |ant: u16, cons: u16| {
        rules
            .iter()
            .filter(|r| {
                r.antecedent.len() == 1 && r.antecedent[0].0 == ant && r.consequent.0 == cons
            })
            .map(|r| r.confidence)
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.max(c)))
            })
    };
    let dlon_col = col("DEST_LONGITUDE");
    let dlat_col = col("DEST_LATITUDE");
    let origin_rule = best_conf(olon_col, olat_col);
    let dest_rule = best_conf(dlon_col, dlat_col);
    AssocResult {
        weight_mode_confidence: best_conf(weight_col, mode_col),
        lon_lat_confidence: origin_rule,
        geo_band_confidence: match (origin_rule, dest_rule) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        },
        rules,
        table,
    }
}

impl fmt::Display for AssocResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E12: association rules (Sec 7.1) ===")?;
        writeln!(f, "rules found: {}", self.rules.len())?;
        if let Some(c) = self.weight_mode_confidence {
            writeln!(f, "GROSS_WEIGHT -> TRANS_MODE best confidence: {c:.2}")?;
        }
        if let Some(c) = self.lon_lat_confidence {
            writeln!(
                f,
                "ORIGIN_LONGITUDE -> ORIGIN_LATITUDE best confidence: {c:.2} (paper: 0.87)"
            )?;
        }
        if let Some(c) = self.geo_band_confidence {
            writeln!(
                f,
                "best longitude -> latitude banding rule (either endpoint): {c:.2}"
            )?;
        }
        for r in self.rules.iter().take(8) {
            writeln!(f, "  {}", render_rule(&self.table, r))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// E13 — §7.2 classification
// ---------------------------------------------------------------------------

/// Classification experiment output.
pub struct ClassifyResult {
    /// Test accuracy predicting TRANS_MODE.
    pub mode_accuracy: f64,
    /// Name of the attribute at the tree root.
    pub root_attribute: Option<String>,
    /// Split counts in the TOTAL_DISTANCE-class tree: how many splits
    /// used the latitude attributes vs MOVE_TRANSIT_HOURS. The paper's
    /// second J4.8 run found distance associates with the latitudes more
    /// than with transit hours — in tree terms, latitude splits dominate.
    pub distance_tree_latitude_splits: usize,
    pub distance_tree_hours_splits: usize,
    /// Supplementary Pearson correlations on the raw columns.
    pub corr_distance_hours: f64,
    pub corr_distance_dest_lat: f64,
    pub corr_distance_origin_lat: f64,
}

/// Runs §7.2 — both J4.8 experiments:
///
/// 1. predict TRANS_MODE on the raw table (accuracy + root split);
/// 2. discretize everything, drop TRANS_MODE, set TOTAL_DISTANCE as the
///    class, and inspect which attributes the tree leans on.
pub fn run_classify(txns: &[Transaction]) -> ClassifyResult {
    let table = transactions_to_table(txns);
    let (train, test) = table.split(0.3);
    let tree = DecisionTree::train(&train, "TRANS_MODE", &TreeConfig::default());
    let root_attribute = tree.root_attribute().map(|c| train.names()[c].clone());

    // Second experiment: the discretized distance-class tree.
    let discretized = discretize_table(&table, Discretization::EqualFrequency(8));
    let no_mode: Vec<&str> = discretized
        .names()
        .iter()
        .map(String::as_str)
        .filter(|n| *n != "TRANS_MODE")
        .collect();
    let dist_table = discretized.select(&no_mode);
    let dist_tree = DecisionTree::train(
        &dist_table,
        "TOTAL_DISTANCE",
        &TreeConfig {
            max_depth: 6,
            ..Default::default()
        },
    );
    let usage = dist_tree.split_counts();
    let count_of = |name: &str| {
        dist_table
            .index_of(name)
            .and_then(|c| usage.get(&c).copied())
            .unwrap_or(0)
    };
    ClassifyResult {
        mode_accuracy: tree.accuracy(&test),
        root_attribute,
        distance_tree_latitude_splits: count_of("DEST_LATITUDE") + count_of("ORIGIN_LATITUDE"),
        distance_tree_hours_splits: count_of("MOVE_TRANSIT_HOURS"),
        corr_distance_hours: column_correlation(&table, "TOTAL_DISTANCE", "MOVE_TRANSIT_HOURS"),
        corr_distance_dest_lat: column_correlation(&table, "TOTAL_DISTANCE", "DEST_LATITUDE"),
        corr_distance_origin_lat: column_correlation(&table, "TOTAL_DISTANCE", "ORIGIN_LATITUDE"),
    }
}

impl fmt::Display for ClassifyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E13: classification (Sec 7.2) ===")?;
        writeln!(
            f,
            "TRANS_MODE test accuracy: {:.1}% (paper: 96%)",
            self.mode_accuracy * 100.0
        )?;
        writeln!(
            f,
            "root split attribute: {} (paper: GROSS_WEIGHT)",
            self.root_attribute.as_deref().unwrap_or("<none>")
        )?;
        writeln!(
            f,
            "distance-class tree splits: latitudes {} vs transit-hours {} (paper: latitudes dominate)",
            self.distance_tree_latitude_splits, self.distance_tree_hours_splits
        )?;
        writeln!(
            f,
            "corr(TOTAL_DISTANCE, MOVE_TRANSIT_HOURS)  = {:+.3}",
            self.corr_distance_hours
        )?;
        writeln!(
            f,
            "corr(TOTAL_DISTANCE, DEST_LATITUDE)       = {:+.3}",
            self.corr_distance_dest_lat
        )?;
        writeln!(
            f,
            "corr(TOTAL_DISTANCE, ORIGIN_LATITUDE)     = {:+.3}",
            self.corr_distance_origin_lat
        )
    }
}

// ---------------------------------------------------------------------------
// E14/E15 — §7.3 clustering (Figures 5, 6a, 6b)
// ---------------------------------------------------------------------------

/// Haul class assigned to a cluster from its mean distance/hours profile
/// (the paper's reading of Figure 6: air-freight outliers, "short-haul",
/// "long-haul").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaulClass {
    AirFreight,
    ShortHaul,
    LongHaul,
}

impl HaulClass {
    pub fn name(self) -> &'static str {
        match self {
            HaulClass::AirFreight => "air-freight",
            HaulClass::ShortHaul => "short-haul",
            HaulClass::LongHaul => "long-haul",
        }
    }
}

/// One row of the Figure 5 / Figure 6 readout.
pub struct ClusterRow {
    pub cluster: usize,
    pub size: usize,
    pub mean_distance: f64,
    pub mean_hours: f64,
    pub class: HaulClass,
}

/// Clustering experiment output.
pub struct ClusterResult {
    pub rows: Vec<ClusterRow>,
    pub log_likelihood: f64,
    /// Index (in `rows`) of the air-freight outlier cluster, if one
    /// emerged.
    pub air_cluster: Option<usize>,
}

/// Runs §7.3: EM with `k` clusters on the undiscretized numeric columns
/// for up to `max_iterations` rounds, then labels clusters by their
/// Figure 6 profile. Distance > 2,500 miles with < 24 mean hours marks
/// the air cluster; otherwise 600 miles separates short from long haul.
pub fn run_cluster(
    txns: &[Transaction],
    k: usize,
    max_iterations: usize,
    seed: u64,
    exec: &Exec,
) -> Result<ClusterResult, PipelineError> {
    let table = transactions_to_table(txns);
    let model = em_fit_with(
        &table,
        &EmConfig {
            clusters: k,
            max_iterations,
            tolerance: 1e-4,
            seed,
        },
        exec,
    )?;
    let mut rows: Vec<ClusterRow> = (0..k)
        .filter(|&c| model.sizes[c] > 0)
        .map(|c| {
            let mean_distance = model.cluster_mean(c, "TOTAL_DISTANCE");
            let mean_hours = model.cluster_mean(c, "MOVE_TRANSIT_HOURS");
            let class = if mean_distance > 2_500.0 && mean_hours < 24.0 {
                HaulClass::AirFreight
            } else if mean_distance < 600.0 {
                HaulClass::ShortHaul
            } else {
                HaulClass::LongHaul
            };
            ClusterRow {
                cluster: c,
                size: model.sizes[c],
                mean_distance,
                mean_hours,
                class,
            }
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.size));
    let air_cluster = rows.iter().position(|r| r.class == HaulClass::AirFreight);
    Ok(ClusterResult {
        rows,
        log_likelihood: model.log_likelihood,
        air_cluster,
    })
}

impl fmt::Display for ClusterResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E14/E15: EM clustering (Sec 7.3, Figs 5-6) ===")?;
        writeln!(f, "log-likelihood: {:.1}", self.log_likelihood)?;
        writeln!(
            f,
            "{:<9} {:>8} {:>14} {:>12}  class",
            "cluster", "size", "mean_distance", "mean_hours"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>8} {:>14.0} {:>12.1}  {}",
                r.cluster,
                r.size,
                r.mean_distance,
                r.mean_hours,
                r.class.name()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::synth::{generate, SynthConfig};

    fn data() -> Vec<Transaction> {
        generate(&SynthConfig::scaled(0.03)).transactions
    }

    #[test]
    fn assoc_reproduces_paper_rules() {
        let res = run_assoc(&data(), 12);
        assert!(!res.rules.is_empty());
        let wm = res
            .weight_mode_confidence
            .expect("weight->mode rule family should be frequent");
        assert!(wm > 0.85, "lightweight => LTL should be strong, got {wm}");
        let ll = res
            .geo_band_confidence
            .expect("a longitude->latitude banding rule should appear");
        assert!(
            (0.7..=1.0).contains(&ll),
            "banding confidence near the paper's 0.87, got {ll}"
        );
    }

    #[test]
    fn classify_matches_paper_shape() {
        let res = run_classify(&data());
        assert!(
            (0.92..=0.99).contains(&res.mode_accuracy),
            "accuracy should be ~96%, got {}",
            res.mode_accuracy
        );
        assert_eq!(res.root_attribute.as_deref(), Some("GROSS_WEIGHT"));
        // The paper's second J4.8 run: predicting TOTAL_DISTANCE, the
        // latitude attributes matter more than MOVE_TRANSIT_HOURS (the
        // coordinates *determine* the distance; hours only proxy it).
        assert!(
            res.distance_tree_latitude_splits > res.distance_tree_hours_splits,
            "latitude splits should dominate: lat={} hours={}",
            res.distance_tree_latitude_splits,
            res.distance_tree_hours_splits
        );
        // Supplementary: hours correlation stays below 1 (dwell noise).
        assert!(res.corr_distance_hours < 0.9);
    }

    #[test]
    fn cluster_finds_air_outliers_and_haul_split() {
        let res = run_cluster(&data(), 9, 60, 7, &Exec::new(2)).unwrap();
        assert!(res.air_cluster.is_some(), "air-freight cluster expected");
        let air = &res.rows[res.air_cluster.unwrap()];
        assert!(
            air.size <= 20,
            "air cluster should be tiny, got {}",
            air.size
        );
        assert!(air.mean_distance > 2_500.0);
        assert!(air.mean_hours < 24.0);
        // Both short- and long-haul groups present.
        assert!(res.rows.iter().any(|r| r.class == HaulClass::ShortHaul));
        assert!(res.rows.iter().any(|r| r.class == HaulClass::LongHaul));
        // Cluster sizes vary over orders of magnitude (Figure 5's 3 ..
        // 19,386 spread, scaled down).
        let max = res.rows.iter().map(|r| r.size).max().unwrap();
        let min = res.rows.iter().map(|r| r.size).min().unwrap();
        assert!(max > min * 20, "size spread expected: {min}..{max}");
    }

    #[test]
    fn displays_render() {
        let txt = run_classify(&data()).to_string();
        assert!(txt.contains("TRANS_MODE test accuracy"));
        let txt = run_cluster(&data(), 5, 60, 7, &Exec::new(2))
            .unwrap()
            .to_string();
        assert!(txt.contains("mean_distance"));
    }
}
