//! §6 experiments: temporal partitioning summaries (Table 2), filtered
//! mining (Table 3, Figure 4), and the FSG memory failure (E11).

use crate::error::PipelineError;
use crate::patterns::classify;
use std::fmt;
use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_exec::Exec;
use tnet_fsg::{mine_with, FsgConfig, FsgError, Support};
use tnet_graph::graph::Graph;
use tnet_partition::summary::{summarize_set, TransactionSetSummary};
use tnet_partition::temporal::{filter_by_vertex_labels, temporal_partition, TemporalOptions};

/// E9 output: the Table 2 summary plus the partitioned transactions for
/// downstream steps.
pub struct Table2Result {
    pub summary: TransactionSetSummary,
    pub transactions: Vec<Graph>,
}

/// Runs E9: the full §6 pipeline (daily active-edge graphs → connected
/// components → edge dedup → drop single-edge transactions) and its
/// Table 2 summary.
pub fn run_table2(txns: &[Transaction]) -> Result<Table2Result, PipelineError> {
    let scheme = BinScheme::fit_width_transactions(txns)?;
    let transactions = temporal_partition(txns, &scheme, &TemporalOptions::default())?;
    Ok(Table2Result {
        summary: summarize_set(&transactions),
        transactions,
    })
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E9: temporally partitioned data (Table 2) ===")?;
        write!(f, "{}", self.summary)
    }
}

/// E10 output: Table 3 summary and the Figure 4 mining result.
pub struct Fig4Result {
    pub table3: TransactionSetSummary,
    /// Frequent patterns at 5% support over the filtered set.
    pub patterns: usize,
    /// Patterns with a single edge ("most were small patterns").
    pub single_edge_patterns: usize,
    /// Largest pattern: (edges, shape name, support).
    pub largest: Option<(usize, &'static str, usize)>,
    /// Support-counting internals from the mine (scratch iso tests,
    /// embedding-propagation work, spills).
    pub mining: tnet_fsg::MiningStats,
}

/// Runs E10 the way §6.1 describes: keep only *dates* whose daily graph
/// has fewer than `label_limit` distinct vertex labels (the paper used
/// 200 — the quiet days), then run the component/dedup/size pipeline on
/// those days, summarize (Table 3), and mine at `support` (the paper's
/// Figure 4 used 5%) up to `max_edges`-edge patterns. `budget` caps the
/// miner's candidate sets; a degraded retry raises `support` and lowers
/// `max_edges`, which is the paper's own §6.1 recovery move.
pub fn run_fig4(
    txns: &[Transaction],
    label_limit: usize,
    support: Support,
    max_edges: usize,
    budget: Option<usize>,
    exec: &Exec,
) -> Result<Fig4Result, PipelineError> {
    let scheme = BinScheme::fit_width_transactions(txns)?;
    let quiet_days = filter_by_vertex_labels(
        tnet_partition::temporal::daily_graphs(txns, &scheme)?,
        label_limit,
    );
    let mut filtered: Vec<Graph> = quiet_days
        .iter()
        .flat_map(tnet_graph::traverse::split_components)
        .collect();
    for g in &mut filtered {
        g.dedup_edges();
    }
    filtered.retain(|g| g.edge_count() >= 2);
    let table3 = summarize_set(&filtered);
    let mut cfg = FsgConfig::default()
        .with_support(support)
        .with_max_edges(max_edges);
    if let Some(b) = budget {
        cfg = cfg.with_memory_budget(b);
    }
    let out = mine_with(&filtered, &cfg, exec)?;
    let single_edge_patterns = out
        .patterns
        .iter()
        .filter(|p| p.graph.edge_count() == 1)
        .count();
    let largest = out
        .patterns
        .iter()
        .max_by_key(|p| p.graph.edge_count())
        .map(|p| (p.graph.edge_count(), classify(&p.graph).name(), p.support));
    Ok(Fig4Result {
        table3,
        patterns: out.patterns.len(),
        single_edge_patterns,
        largest,
        mining: out.stats,
    })
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== E10: filtered temporal mining (Table 3, Figure 4) ==="
        )?;
        write!(f, "{}", self.table3)?;
        writeln!(
            f,
            "frequent patterns at 5% support: {} (paper: 22)",
            self.patterns
        )?;
        writeln!(f, "single-edge patterns: {}", self.single_edge_patterns)?;
        if let Some((edges, shape, support)) = self.largest {
            writeln!(
                f,
                "largest pattern: {edges} edges, shape {shape}, support {support} (paper: 3-edge hub-and-spoke)"
            )?;
        }
        writeln!(
            f,
            "support counting: {} iso tests, {} embeddings extended, {} spilled, {} TID-intersection skips",
            self.mining.iso_tests,
            self.mining.embeddings_extended,
            self.mining.embeddings_spilled,
            self.mining.tid_intersection_skips
        )?;
        writeln!(
            f,
            "data layout: {} fingerprint rejects, {} bitset intersections, {} peak SoA bytes",
            self.mining.fingerprint_rejects,
            self.mining.bitset_intersections,
            self.mining.soa_bytes
        )?;
        Ok(())
    }
}

/// Picks a `label_limit` for [`run_fig4`] as a quantile of the per-day
/// distinct-vertex-label counts. The paper's 200 kept the quietest dates
/// of its dataset; `fraction` ≈ 0.3 reproduces that selectivity at any
/// scale.
pub fn quiet_day_label_limit(txns: &[Transaction], fraction: f64) -> Result<usize, PipelineError> {
    assert!((0.0..=1.0).contains(&fraction));
    let scheme = BinScheme::fit_width_transactions(txns)?;
    let mut counts: Vec<usize> = tnet_partition::temporal::daily_graphs(txns, &scheme)?
        .iter()
        .map(|g| g.vertex_label_histogram().len())
        .collect();
    if counts.is_empty() {
        return Ok(1);
    }
    counts.sort_unstable();
    let idx = ((counts.len() as f64 * fraction) as usize).min(counts.len() - 1);
    Ok((counts[idx] + 1).max(2))
}

/// E11 output.
pub struct OomResult {
    /// The error FSG aborted with (None means it unexpectedly succeeded).
    pub error: Option<FsgError>,
    pub budget: usize,
}

/// Runs E11: FSG over the *unfiltered* temporal transactions with a
/// memory budget standing in for the paper's 1 GB Sparc. On paper-shaped
/// data the candidate set explodes (thousands of distinct vertex labels)
/// and mining aborts — "we were unable to run FSG on the entire data set
/// due to insufficient memory / swap space".
///
/// `support`: the paper's effective threshold was 5% of 146 transactions
/// ≈ 8 occurrences; at reduced scales pass an absolute count of similar
/// magnitude so the level-1 vocabulary stays paper-shaped.
pub fn run_fsg_oom(
    transactions: &[Graph],
    support: Support,
    budget: usize,
    exec: &Exec,
) -> OomResult {
    let cfg = FsgConfig::default()
        .with_support(support)
        .with_max_edges(6)
        .with_memory_budget(budget);
    // The abort cancels `exec`'s token — hand the miner a child handle so
    // a budget trip doesn't wedge the caller's whole pool.
    let error = mine_with(transactions, &cfg, &exec.child()).err();
    OomResult { error, budget }
}

impl fmt::Display for OomResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E11: FSG on unfiltered temporal data (Sec 6.1) ===")?;
        match &self.error {
            Some(e) => writeln!(f, "mining aborted as in the paper: {e}"),
            None => writeln!(
                f,
                "mining unexpectedly completed within {} bytes",
                self.budget
            ),
        }
    }
}

/// One granularity's row in the E16 report: session counters, pattern
/// union size, and planted-structure attribution (zeros when the data
/// has no ground truth).
pub struct E16Row {
    pub granularity: &'static str,
    pub windows: usize,
    pub incremental_windows: usize,
    pub full_recounts: usize,
    pub patterns_recounted: usize,
    pub recount_skips: usize,
    /// Distinct pattern iso classes across all windows.
    pub distinct_patterns: usize,
    pub attribution: Option<tnet_temporal::FlowAttribution>,
}

/// E16 output: incremental windowed mining plus flow detection at each
/// granularity.
pub struct E16Result {
    pub rows: Vec<E16Row>,
}

/// Runs E16: drives an incremental [`tnet_fsg::MineSession`] across
/// hour/day/week windows (tumbling days of hours, sliding weeks of
/// days, tumbling weeks), unions each run's patterns, and runs the
/// flow-pattern detector — reporting which planted structures (hub
/// surges, deadhead cycles, air-freight outliers) each granularity
/// surfaces when ground truth is available.
pub fn run_windowed_flows(
    txns: &[Transaction],
    dataset: Option<&tnet_data::Dataset>,
    support: Support,
    max_edges: usize,
    budget: Option<usize>,
    exec: &Exec,
) -> Result<E16Result, PipelineError> {
    use tnet_partition::{Granularity, WindowSpec};
    let specs = [
        // A day of hours, tumbling: hour-level structure per day.
        WindowSpec::tumbling(Granularity::Hour, 24)?,
        // A sliding week of days: the incremental session's home turf.
        WindowSpec::new(Granularity::Day, 7, 1)?,
        // Tumbling weeks: the periodic planted lanes align here.
        WindowSpec::tumbling(Granularity::Week, 1)?,
    ];
    let mut fsg = FsgConfig::default()
        .with_support(support)
        .with_max_edges(max_edges);
    if let Some(b) = budget {
        fsg = fsg.with_memory_budget(b);
    }
    let fcfg = tnet_temporal::FlowConfig::default();
    let mut rows = Vec::new();
    for spec in specs {
        let cfg = tnet_temporal::TemporalConfig::new(spec).with_fsg(fsg.clone());
        let run = tnet_temporal::run_windows(
            txns,
            &BinScheme::fit_width_transactions(txns)?,
            &TemporalOptions::default(),
            &cfg,
            exec,
        )
        .map_err(|e| match e {
            tnet_temporal::TemporalRunError::Partition(p) => PipelineError::from(p),
            tnet_temporal::TemporalRunError::Mine(m) => PipelineError::from(m),
        })?;
        let mut union = tnet_graph::canon::IsoClassMap::new();
        for w in &run.windows {
            for p in &w.output.patterns {
                union.entry_or_insert_with(&p.graph, || ());
            }
        }
        let report = tnet_temporal::detect_flows(txns, &spec, &fcfg);
        let attribution = dataset.map(|ds| tnet_temporal::attribute(&report, ds, &fcfg));
        rows.push(E16Row {
            granularity: spec.granularity.name(),
            windows: run.session.windows,
            incremental_windows: run.session.incremental_windows,
            full_recounts: run.session.full_recounts,
            patterns_recounted: run.session.patterns_recounted,
            recount_skips: run.session.recount_skips,
            distinct_patterns: union.len(),
            attribution,
        });
    }
    Ok(E16Result { rows })
}

impl fmt::Display for E16Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E16: temporal windows and flow patterns ===")?;
        writeln!(
            f,
            "{:<6} {:>8} {:>6} {:>6} {:>10} {:>7} {:>9}",
            "gran", "windows", "incr", "full", "recounted", "skips", "patterns"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>8} {:>6} {:>6} {:>10} {:>7} {:>9}",
                r.granularity,
                r.windows,
                r.incremental_windows,
                r.full_recounts,
                r.patterns_recounted,
                r.recount_skips,
                r.distinct_patterns
            )?;
        }
        if self.rows.iter().any(|r| r.attribution.is_some()) {
            writeln!(f, "planted structure surfaced per granularity:")?;
            for r in &self.rows {
                if let Some(a) = &r.attribution {
                    writeln!(
                        f,
                        "  {:<6} hub surges {}/{}  deadhead cycles {}/{}  air outliers {}/{}",
                        r.granularity,
                        a.hubs_surfaced,
                        a.hubs_planted,
                        a.cycles_surfaced,
                        a.cycles_planted,
                        a.outliers_found,
                        a.outliers_planted
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::synth::{generate, SynthConfig};

    fn transactions(scale: f64) -> Vec<Transaction> {
        generate(&SynthConfig::scaled(scale)).transactions
    }

    #[test]
    fn table2_shape() {
        let res = run_table2(&transactions(0.05)).unwrap();
        let s = &res.summary;
        assert!(s.transactions > 50, "expect many daily transactions");
        assert!(s.distinct_vertex_labels > 50);
        assert!(s.max_edges > 30, "big daily components expected");
        // Bimodal sizes: plenty of small transactions and some big ones
        // (Table 2's histogram had mass at both ends).
        assert!(s.size_histogram[0] > 0, "small transactions expected");
        let big: usize = s.size_histogram[2..].iter().sum();
        assert!(big > 0, "large transactions expected");
    }

    #[test]
    fn fig4_filtered_mining() {
        let txns = transactions(0.05);
        let limit = quiet_day_label_limit(&txns, 0.1).unwrap();
        let res = run_fig4(
            &txns,
            limit,
            Support::Fraction(0.05),
            5,
            None,
            &Exec::new(2),
        )
        .unwrap();
        assert!(res.table3.transactions > 0, "filter kept nothing");
        assert!(
            res.table3.max_edges <= 150,
            "filtered transactions should be small, got max {}",
            res.table3.max_edges
        );
        assert!(res.patterns > 0, "expected some frequent patterns");
        assert!(
            res.single_edge_patterns * 2 >= res.patterns,
            "most patterns should be small"
        );
        if let Some((edges, _, _)) = res.largest {
            assert!(edges <= 5, "largest should stay small, got {edges}");
        }
    }

    #[test]
    fn e16_windowed_flows_surface_planted_structure() {
        let ds = generate(&SynthConfig::scaled(0.05));
        let res = run_windowed_flows(
            &ds.transactions,
            Some(&ds),
            Support::Count(5),
            3,
            None,
            &Exec::new(2),
        )
        .unwrap();
        assert_eq!(res.rows.len(), 3);
        let day = res.rows.iter().find(|r| r.granularity == "day").unwrap();
        assert!(
            day.incremental_windows > 0,
            "sliding day windows must use the incremental path"
        );
        assert!(day.recount_skips + day.patterns_recounted > 0);
        let day_attr = day.attribution.unwrap();
        assert!(
            day_attr.hubs_surfaced > 0,
            "day granularity surfaces hub surges"
        );
        assert_eq!(day_attr.outliers_found, day_attr.outliers_planted);
        let week = res.rows.iter().find(|r| r.granularity == "week").unwrap();
        let week_attr = week.attribution.unwrap();
        assert!(
            week_attr.cycles_surfaced > 0,
            "week granularity closes planted deadhead cycles"
        );
        let text = res.to_string();
        assert!(text.contains("=== E16"));
        assert!(text.contains("planted structure surfaced"));
    }

    #[test]
    fn fsg_exhausts_memory_on_unfiltered_data() {
        let res0 = run_table2(&transactions(0.05)).unwrap();
        // The paper's effective support was ~8 occurrences; keep that
        // magnitude rather than a percentage of the inflated post-split
        // transaction count.
        let res = run_fsg_oom(
            &res0.transactions,
            Support::Count(8),
            256 * 1024,
            &Exec::new(2),
        );
        match res.error {
            Some(FsgError::MemoryBudgetExceeded { level, .. }) => {
                assert!(level >= 2);
            }
            other => panic!("expected the paper's out-of-memory failure, got {other:?}"),
        }
    }
}
