//! §5 experiments: SUBDUE on structural OD graphs (E2–E4) and FSG over
//! BF/DF partitions (E5–E8).

use crate::error::PipelineError;
use crate::patterns::{classify, PatternShape};
use std::fmt;
use std::time::Duration;
use tnet_data::binning::BinScheme;
use tnet_data::model::Transaction;
use tnet_data::od_graph::{build_od_graph, EdgeLabeling, VertexLabeling};
use tnet_exec::Exec;
use tnet_fsg::{mine_for_algorithm1_with, FsgConfig, Support};
use tnet_graph::generate::{plant_patterns, shapes};
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::iso::are_isomorphic;
use tnet_graph::rng::StdRng;
use tnet_partition::single_graph::{mine_single_graph, SingleGraphPattern};
use tnet_partition::split::Strategy;
use tnet_subdue::{discover_with, EvalMethod, SubdueConfig};

/// Builds the paper's truncated experiment graph: the `n` highest-degree
/// vertices of the OD graph with all edges among them ("selecting the
/// required number of vertices and then including all of the edges
/// incident on vertices present in the graph"), vertex labels uniform.
pub fn truncated_structural_graph(
    txns: &[Transaction],
    scheme: &BinScheme,
    labeling: EdgeLabeling,
    n: usize,
) -> Graph {
    let od = build_od_graph(txns, scheme, labeling, VertexLabeling::Uniform);
    let mut by_degree: Vec<VertexId> = od.graph.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(od.graph.degree(v)));
    by_degree.truncate(n);
    let (mut sub, _) = od.graph.induced_subgraph(&by_degree);
    // SUBDUE and FSG operate on simple graphs here; collapse repeat
    // deliveries to one edge per (pair, label).
    sub.dedup_edges();
    sub
}

// ---------------------------------------------------------------------------
// E2 — Figure 1: SUBDUE/MDL on OD_GW
// ---------------------------------------------------------------------------

/// Figure 1 experiment output.
pub struct Fig1Result {
    pub graph_vertices: usize,
    pub graph_edges: usize,
    /// Best patterns: (pattern, disjoint instances, value).
    pub best: Vec<(Graph, usize, f64)>,
    pub runtime: Duration,
    /// One-way (deadhead-candidate) vertex pairs in the best pattern.
    pub deadhead_pairs: usize,
}

/// Runs E2: SUBDUE with the MDL principle, beam 4, best 3, on a
/// truncated uniform-label `OD_GW` graph of `vertices` vertices.
/// `budget` caps the beam search's working set in bytes.
pub fn run_fig1(
    txns: &[Transaction],
    vertices: usize,
    budget: Option<usize>,
    exec: &Exec,
) -> Result<Fig1Result, PipelineError> {
    let scheme = BinScheme::fit_width_transactions(txns)?;
    let g = truncated_structural_graph(txns, &scheme, EdgeLabeling::GrossWeight, vertices);
    let cfg = SubdueConfig {
        beam_width: 4,
        max_best: 3,
        max_size: 16,
        eval: EvalMethod::Mdl,
        memory_budget: budget,
        ..Default::default()
    };
    let out = discover_with(&g, &cfg, exec)?;
    let best: Vec<(Graph, usize, f64)> = out
        .best
        .iter()
        .map(|s| (s.pattern.clone(), s.disjoint_count(), s.value))
        .collect();
    let deadhead_pairs = best
        .first()
        .map(|(p, _, _)| crate::patterns::one_way_pairs(p))
        .unwrap_or(0);
    Ok(Fig1Result {
        graph_vertices: g.vertex_count(),
        graph_edges: g.edge_count(),
        best,
        runtime: out.runtime,
        deadhead_pairs,
    })
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E2: SUBDUE/MDL on OD_GW (Figure 1) ===")?;
        writeln!(
            f,
            "graph: {} vertices, {} edges; runtime {:?}",
            self.graph_vertices, self.graph_edges, self.runtime
        )?;
        for (i, (p, inst, v)) in self.best.iter().enumerate() {
            writeln!(
                f,
                "#{}: {} edges, {} instances, value {:.3}, shape {}",
                i + 1,
                p.edge_count(),
                inst,
                v,
                classify(p).name()
            )?;
            write!(f, "{}", tnet_graph::dot::to_ascii(p))?;
        }
        writeln!(
            f,
            "one-way (deadhead candidate) pairs in top pattern: {}",
            self.deadhead_pairs
        )
    }
}

// ---------------------------------------------------------------------------
// E3 — SUBDUE runtime scaling
// ---------------------------------------------------------------------------

/// One row of the runtime-scaling table.
pub struct ScalingRow {
    pub vertices: usize,
    pub edges: usize,
    pub mdl_runtime: Duration,
    pub size_runtime: Duration,
    pub mdl_expanded: usize,
    pub size_expanded: usize,
}

/// Runs E3: SUBDUE (MDL and Size) on truncated graphs of increasing
/// vertex counts; the paper's observation is superlinear runtime growth
/// and Size costing more than MDL at the same settings.
pub fn run_subdue_scaling(
    txns: &[Transaction],
    sizes: &[usize],
    budget: Option<usize>,
    exec: &Exec,
) -> Result<Vec<ScalingRow>, PipelineError> {
    let scheme = BinScheme::fit_width_transactions(txns)?;
    sizes
        .iter()
        .map(|&n| {
            let g = truncated_structural_graph(txns, &scheme, EdgeLabeling::TotalDistance, n);
            let mk = |eval: EvalMethod, max_size: usize| SubdueConfig {
                beam_width: 4,
                max_best: 3,
                max_size,
                eval,
                memory_budget: budget,
                ..Default::default()
            };
            // Size principle hunts bigger substructures (the paper ran it
            // with larger limits, which is exactly why it took days).
            let mdl = discover_with(&g, &mk(EvalMethod::Mdl, 10), exec)?;
            let size = discover_with(&g, &mk(EvalMethod::Size, 14), exec)?;
            Ok(ScalingRow {
                vertices: g.vertex_count(),
                edges: g.edge_count(),
                mdl_runtime: mdl.runtime,
                size_runtime: size.runtime,
                mdl_expanded: mdl.expanded,
                size_expanded: size.expanded,
            })
        })
        .collect()
}

/// Renders the scaling table.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "=== E3: SUBDUE runtime scaling (Sec 5.1) ===");
    let _ = writeln!(
        s,
        "{:>9} {:>7} {:>12} {:>12} {:>10} {:>10}",
        "vertices", "edges", "MDL_time", "Size_time", "MDL_exp", "Size_exp"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>9} {:>7} {:>12?} {:>12?} {:>10} {:>10}",
            r.vertices, r.edges, r.mdl_runtime, r.size_runtime, r.mdl_expanded, r.size_expanded
        );
    }
    s
}

// ---------------------------------------------------------------------------
// E4 — Size principle finds a large repeated substructure
// ---------------------------------------------------------------------------

/// E4 output.
pub struct SizePrincipleResult {
    /// Largest pattern among the best substructures.
    pub largest_edges: usize,
    pub largest_vertices: usize,
    pub largest_instances: usize,
    /// True if a best pattern of at least `min_edges` with >= 2 disjoint
    /// instances was found.
    pub found: bool,
    pub runtime: Duration,
}

/// Builds a random connected pattern with `vertices` vertices and
/// `extra_edges` beyond its spanning path, using `edge_labels` labels.
pub fn random_connected_pattern(
    vertices: usize,
    extra_edges: usize,
    edge_labels: u32,
    seed: u64,
) -> Graph {
    use tnet_graph::rng::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let vs: Vec<VertexId> = (0..vertices).map(|_| g.add_vertex(VLabel(0))).collect();
    for i in 1..vertices {
        g.add_edge(vs[i - 1], vs[i], ELabel(rng.gen_range(0..edge_labels)));
    }
    let mut added = 0;
    while added < extra_edges {
        let a = vs[rng.gen_range(0..vertices)];
        let b = vs[rng.gen_range(0..vertices)];
        if a == b {
            continue;
        }
        g.add_edge(a, b, ELabel(rng.gen_range(0..edge_labels)));
        added += 1;
    }
    g
}

/// Runs E4: plants a large random substructure (default mirroring the
/// paper's 31-vertex/37-edge find) twice in a label-diverse background
/// and checks the Size principle surfaces it.
pub fn run_size_principle(
    pattern_vertices: usize,
    pattern_extra_edges: usize,
    noise_edges: usize,
    seed: u64,
    budget: Option<usize>,
    exec: &Exec,
) -> Result<SizePrincipleResult, PipelineError> {
    let edge_labels = 14;
    let pattern =
        random_connected_pattern(pattern_vertices, pattern_extra_edges, edge_labels, seed);
    let planted = plant_patterns(
        std::slice::from_ref(&pattern),
        2,
        noise_edges,
        edge_labels,
        seed + 1,
    );
    let cfg = SubdueConfig {
        beam_width: 8,
        max_best: 5,
        max_size: pattern.size() + 2,
        eval: EvalMethod::Size,
        memory_budget: budget,
        ..Default::default()
    };
    let out = discover_with(&planted.graph, &cfg, exec)?;
    let largest = out.best.iter().max_by_key(|s| s.pattern.edge_count());
    let (le, lv, li) = largest
        .map(|s| {
            (
                s.pattern.edge_count(),
                s.pattern.vertex_count(),
                s.disjoint_count(),
            )
        })
        .unwrap_or((0, 0, 0));
    let min_edges = pattern.edge_count() / 2;
    Ok(SizePrincipleResult {
        largest_edges: le,
        largest_vertices: lv,
        largest_instances: li,
        found: le >= min_edges && li >= 2,
        runtime: out.runtime,
    })
}

impl fmt::Display for SizePrincipleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== E4: Size principle on planted structure (Sec 5.1) ==="
        )?;
        writeln!(
            f,
            "largest best pattern: {} vertices / {} edges, {} disjoint instances (runtime {:?})",
            self.largest_vertices, self.largest_edges, self.largest_instances, self.runtime
        )?;
        writeln!(f, "large repeated substructure recovered: {}", self.found)
    }
}

// ---------------------------------------------------------------------------
// E5 — BF/DF partition sweep (Sec 5.2.2)
// ---------------------------------------------------------------------------

/// One sweep row.
pub struct SweepRow {
    pub strategy: Strategy,
    pub partitions: usize,
    pub support: usize,
    pub patterns: usize,
    pub max_pattern_edges: usize,
    pub runtime: Duration,
}

/// Runs E5: Algorithm 1 over the structural OD graph for each partition
/// count and both strategies. `supports` gives (BF, DF) thresholds (the
/// paper used 240 and 120).
#[allow(clippy::too_many_arguments)]
pub fn run_partition_sweep(
    txns: &[Transaction],
    labeling: EdgeLabeling,
    partition_counts: &[usize],
    support_bf: usize,
    support_df: usize,
    repetitions: usize,
    max_edges: usize,
    seed: u64,
    budget: Option<usize>,
    exec: &Exec,
) -> Result<Vec<SweepRow>, PipelineError> {
    let scheme = BinScheme::fit_width_transactions(txns)?;
    let od = build_od_graph(txns, &scheme, labeling, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let mut rows = Vec::new();
    for &k in partition_counts {
        for (strategy, support) in [
            (Strategy::BreadthFirst, support_bf),
            (Strategy::DepthFirst, support_df),
        ] {
            let started = std::time::Instant::now();
            // The paper hit "runtime and memory problems with lower
            // supports on the breadth-first partitions"; the budget makes
            // that failure mode an abort instead of an OOM kill.
            let cfg = FsgConfig::default()
                .with_support(Support::Count(support))
                .with_max_edges(max_edges)
                .with_memory_budget(budget.unwrap_or(512 << 20));
            let found = mine_single_graph(&g, k, repetitions, strategy, seed, exec, |t, e| {
                mine_for_algorithm1_with(t, &cfg, e)
            });
            rows.push(SweepRow {
                strategy,
                partitions: k,
                support,
                patterns: found.len(),
                max_pattern_edges: found
                    .iter()
                    .map(|p| p.pattern.edge_count())
                    .max()
                    .unwrap_or(0),
                runtime: started.elapsed(),
            });
        }
    }
    Ok(rows)
}

/// Renders the sweep table.
pub fn render_sweep(rows: &[SweepRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "=== E5: BF/DF partition sweep (Sec 5.2.2) ===");
    let _ = writeln!(
        s,
        "{:<14} {:>10} {:>8} {:>9} {:>10} {:>10}",
        "strategy", "partitions", "support", "patterns", "max_edges", "runtime"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>8} {:>9} {:>10} {:>10?}",
            r.strategy.name(),
            r.partitions,
            r.support,
            r.patterns,
            r.max_pattern_edges,
            r.runtime
        );
    }
    s
}

// ---------------------------------------------------------------------------
// E6/E7 — Figures 2 and 3: shapes recovered per strategy
// ---------------------------------------------------------------------------

/// Output for the Figure 2 / Figure 3 shape experiments.
pub struct ShapeMiningResult {
    pub strategy: Strategy,
    pub labeling: EdgeLabeling,
    /// All mined patterns with supports.
    pub patterns: Vec<SingleGraphPattern>,
    /// Best hub-and-spoke: (spokes, support).
    pub best_hub: Option<(usize, usize)>,
    /// Best chain: (edges, support).
    pub best_chain: Option<(usize, usize)>,
}

/// Runs the Figure 2 (BF on `OD_TH`) or Figure 3 (DF on `OD_TD`) mining
/// and classifies the results.
#[allow(clippy::too_many_arguments)]
pub fn run_shape_mining(
    txns: &[Transaction],
    labeling: EdgeLabeling,
    strategy: Strategy,
    partitions: usize,
    support: usize,
    repetitions: usize,
    max_edges: usize,
    seed: u64,
    budget: Option<usize>,
    exec: &Exec,
) -> Result<ShapeMiningResult, PipelineError> {
    let scheme = BinScheme::fit_width_transactions(txns)?;
    let od = build_od_graph(txns, &scheme, labeling, VertexLabeling::Uniform);
    let mut g = od.graph;
    g.dedup_edges();
    let cfg = FsgConfig::default()
        .with_support(Support::Count(support))
        .with_max_edges(max_edges)
        .with_memory_budget(budget.unwrap_or(512 << 20));
    let patterns = mine_single_graph(&g, partitions, repetitions, strategy, seed, exec, |t, e| {
        mine_for_algorithm1_with(t, &cfg, e)
    });
    let mut best_hub = None;
    let mut best_chain = None;
    for p in &patterns {
        match classify(&p.pattern) {
            PatternShape::HubAndSpoke { spokes } if best_hub.is_none_or(|(s, _)| spokes > s) => {
                best_hub = Some((spokes, p.support));
            }
            PatternShape::Chain { edges } if best_chain.is_none_or(|(e, _)| edges > e) => {
                best_chain = Some((edges, p.support));
            }
            _ => {}
        }
    }
    Ok(ShapeMiningResult {
        strategy,
        labeling,
        patterns,
        best_hub,
        best_chain,
    })
}

impl fmt::Display for ShapeMiningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== Figures 2/3: {} partitioning on {} ===",
            self.strategy.name(),
            self.labeling.name()
        )?;
        writeln!(f, "frequent patterns: {}", self.patterns.len())?;
        if let Some((spokes, support)) = self.best_hub {
            writeln!(
                f,
                "largest hub-and-spoke: {spokes} spokes (support {support})"
            )?;
        }
        if let Some((edges, support)) = self.best_chain {
            writeln!(f, "longest chain: {edges} edges (support {support})")?;
        }
        for p in self.patterns.iter().take(5) {
            writeln!(
                f,
                "  support {:>5}  {} edges  {}",
                p.support,
                p.pattern.edge_count(),
                classify(&p.pattern).name()
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// E8 — footnote 2 recall experiment
// ---------------------------------------------------------------------------

/// Recall of planted patterns under one partitioning strategy.
pub struct RecallResult {
    pub strategy: Strategy,
    pub planted: usize,
    pub recovered: usize,
}

impl RecallResult {
    pub fn recall(&self) -> f64 {
        if self.planted == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.planted as f64
    }
}

/// Runs E8: joins `copies` disjoint copies of known patterns plus noise
/// into one graph, partitions, mines, and measures how many planted
/// patterns are recovered up to isomorphism.
pub fn run_recall(
    copies: usize,
    noise_edges: usize,
    partitions: usize,
    strategy: Strategy,
    seed: u64,
    exec: &Exec,
) -> RecallResult {
    let planted_patterns = vec![
        shapes::hub_and_spoke(3, 0, 1),
        shapes::hub_and_spoke(4, 0, 2),
        shapes::chain(3, 0, 3),
        shapes::chain(4, 0, 1),
        shapes::cycle(3, 0, 2),
        shapes::bow_tie(2, 0, 3, 4),
    ];
    let planted = plant_patterns(&planted_patterns, copies, noise_edges, 5, seed);
    let support = (copies / 2).max(2);
    let cfg = FsgConfig::default()
        .with_support(Support::Count(support))
        .with_max_edges(7);
    let mined = mine_single_graph(
        &planted.graph,
        partitions,
        3,
        strategy,
        seed + 1,
        exec,
        |t, e| mine_for_algorithm1_with(t, &cfg, e),
    );
    let recovered = planted_patterns
        .iter()
        .filter(|pat| mined.iter().any(|m| are_isomorphic(&m.pattern, pat)))
        .count();
    RecallResult {
        strategy,
        planted: planted_patterns.len(),
        recovered,
    }
}

impl fmt::Display for RecallResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== E8: recall of planted patterns ({}) ===",
            self.strategy.name()
        )?;
        writeln!(
            f,
            "recovered {}/{} planted patterns (recall {:.0}%)",
            self.recovered,
            self.planted,
            self.recall() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::synth::{generate, SynthConfig};

    fn data(scale: f64) -> Vec<Transaction> {
        generate(&SynthConfig::scaled(scale)).transactions
    }

    #[test]
    fn fig1_mdl_compresses_with_frequent_patterns() {
        let txns = data(0.03);
        let res = run_fig1(&txns, 40, None, &Exec::new(2)).unwrap();
        assert!(!res.best.is_empty());
        // SUBDUE/MDL returns repeated (no-overlap) substructures; the
        // top one is "very frequent" like the paper's Figure 1 finds.
        for (_, instances, value) in &res.best {
            assert!(*instances >= 2, "patterns must repeat without overlap");
            assert!(value.is_finite());
        }
        assert!(res.best[0].1 >= 3, "top MDL pattern should be frequent");
        // Directed freight patterns show one-way (deadhead-candidate)
        // pairs, the paper's headline reading of Figure 1.
        assert!(res.deadhead_pairs > 0);
    }

    #[test]
    fn scaling_rows_grow() {
        let rows = run_subdue_scaling(&data(0.02), &[15, 30, 60], None, &Exec::new(2)).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].vertices < rows[2].vertices);
        // More vertices => strictly more (or equal) expansion work for
        // the Size run, which dominates runtime.
        assert!(rows[2].size_expanded >= rows[0].size_expanded);
    }

    #[test]
    fn size_principle_recovers_planted() {
        // Scaled-down version of the 31v/37e find: 12 vertices, 3 extra
        // edges (14 edges total), planted twice among 40 noise edges.
        let res = run_size_principle(12, 3, 40, 5, None, &Exec::new(2)).unwrap();
        assert!(
            res.found,
            "size principle should recover the planted structure: {} edges, {} instances",
            res.largest_edges, res.largest_instances
        );
    }

    #[test]
    fn partition_sweep_shapes() {
        let rows = run_partition_sweep(
            &data(0.02),
            EdgeLabeling::GrossWeight,
            &[8, 16],
            5,
            3,
            1,
            4,
            11,
            None,
            &Exec::new(2),
        )
        .unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.patterns > 0,
                "{:?} k={} found nothing",
                r.strategy,
                r.partitions
            );
        }
        // The paper: fewer partitions (larger transactions) => more
        // frequent patterns, per strategy.
        let by = |st: Strategy, k: usize| {
            rows.iter()
                .find(|r| r.strategy == st && r.partitions == k)
                .unwrap()
                .patterns
        };
        assert!(
            by(Strategy::BreadthFirst, 8) >= by(Strategy::BreadthFirst, 16),
            "smaller k should give at least as many patterns (BF)"
        );
    }

    #[test]
    fn fig2_bf_finds_hub() {
        // Paper-proportional at 3% scale: k = 800*0.03 = 24,
        // support = 240*0.03 ~ 7.
        let res = run_shape_mining(
            &data(0.03),
            EdgeLabeling::TransitHours,
            Strategy::BreadthFirst,
            24,
            7,
            2,
            5,
            3,
            None,
            &Exec::new(2),
        )
        .unwrap();
        let (spokes, support) = res.best_hub.expect("BF should find hub-and-spoke");
        assert!(spokes >= 3, "expect >=3 spokes, got {spokes}");
        assert!(support >= 7);
    }

    #[test]
    fn fig3_df_finds_chain() {
        // k = 800*0.03 = 24, support = 120*0.03 ~ 4.
        let res = run_shape_mining(
            &data(0.03),
            EdgeLabeling::TotalDistance,
            Strategy::DepthFirst,
            24,
            4,
            2,
            5,
            3,
            None,
            &Exec::new(2),
        )
        .unwrap();
        let (edges, _) = res.best_chain.expect("DF should find chains");
        assert!(edges >= 2, "expect chain of >=2 edges, got {edges}");
    }

    #[test]
    fn recall_meets_footnote_two() {
        for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
            let res = run_recall(24, 60, 6, strategy, 17, &Exec::new(2));
            assert!(
                res.recall() >= 0.5,
                "{} recall below 50%: {}/{}",
                strategy.name(),
                res.recovered,
                res.planted
            );
        }
    }
}
