//! Experiment runners — one per table/figure of the paper.
//!
//! | id  | paper artifact | runner |
//! |-----|----------------|--------|
//! | E1  | §3 dataset description | [`crate::pipeline::Pipeline::dataset_stats`] |
//! | E2  | Figure 1 (SUBDUE/MDL)  | [`structural::run_fig1`] |
//! | E3  | §5.1 runtime scaling   | [`structural::run_subdue_scaling`] |
//! | E4  | §5.1 Size-principle find | [`structural::run_size_principle`] |
//! | E5  | §5.2.2 partition sweep | [`structural::run_partition_sweep`] |
//! | E6  | Figure 2 (BF hub)      | [`structural::run_shape_mining`] |
//! | E7  | Figure 3 (DF chain)    | [`structural::run_shape_mining`] |
//! | E8  | footnote 2 recall      | [`structural::run_recall`] |
//! | E9  | Table 2                | [`temporal::run_table2`] |
//! | E10 | Table 3 + Figure 4     | [`temporal::run_fig4`] |
//! | E11 | §6.1 memory failure    | [`temporal::run_fsg_oom`] |
//! | E12 | §7.1 association rules | [`conventional::run_assoc`] |
//! | E13 | §7.2 classification    | [`conventional::run_classify`] |
//! | E14 | Figure 5 (cluster sizes) | [`conventional::run_cluster`] |
//! | E15 | Figure 6 (cluster means) | [`conventional::run_cluster`] |
//!
//! Extensions past the paper's evaluation (its §9 challenge list) live in
//! [`extensions`] (E17–E21).

pub mod conventional;
pub mod extensions;
pub mod structural;
pub mod temporal;
