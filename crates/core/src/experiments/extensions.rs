//! Extension experiments (E17–E21): the paper's §9 research-challenge
//! list, built and measured.
//!
//! | id  | §9 challenge | runner |
//! |-----|--------------|--------|
//! | E17 | "periodicity in routes" | [`run_periodic`] |
//! | E18 | "frequently repeated connection paths ... separated by a minimum or maximum time" | [`run_paths`] |
//! | E19 | "events ... analysis of the fallout" | [`run_events`] |
//! | E20 | "maximal graph patterns ... may address this challenge" | [`run_maximal`] |
//! | E21 | §8's memory analysis: levelwise candidate sets vs depth-first growth | [`run_miner_comparison`] |

use crate::error::PipelineError;
use std::fmt;
use tnet_data::binning::BinScheme;
use tnet_data::model::{Date, LatLon, Transaction};
use tnet_dynamic::events::{inject_event, pattern_fallout, Event, EventKind, FalloutReport};
use tnet_dynamic::paths::{frequent_paths, PathConfig, PathPattern};
use tnet_dynamic::periodic::{periodic_lanes, PeriodicConfig, PeriodicLane};
use tnet_exec::Exec;
use tnet_fsg::maximal::{filter_with_report, Keep, Reduction};
use tnet_fsg::{mine, mine_with, FsgConfig, Support};
use tnet_graph::graph::Graph;
use tnet_gspan::{mine_dfs_with, GspanConfig};

// ---------------------------------------------------------------------------
// E17 — periodic lanes
// ---------------------------------------------------------------------------

/// E17 output.
pub struct PeriodicResult {
    pub lanes: Vec<PeriodicLane>,
    /// Lanes with a ~weekly period (the generator plants weekly
    /// schedules on hub/chain lanes).
    pub weekly_lanes: usize,
}

/// Runs E17: periodic-lane detection over the full transaction set.
pub fn run_periodic(txns: &[Transaction]) -> PeriodicResult {
    let lanes = periodic_lanes(txns, &PeriodicConfig::default());
    let weekly_lanes = lanes
        .iter()
        .filter(|l| (6..=8).contains(&l.period_days))
        .count();
    PeriodicResult {
        lanes,
        weekly_lanes,
    }
}

impl fmt::Display for PeriodicResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E17: periodic lanes (Sec 9 challenge) ===")?;
        writeln!(
            f,
            "periodic lanes: {} total, {} weekly",
            self.lanes.len(),
            self.weekly_lanes
        )?;
        for l in self.lanes.iter().take(5) {
            writeln!(
                f,
                "  {} -> {}  every {} days  ({} shipments, regularity {:.0}%)",
                tnet_data::geo::describe(l.origin),
                tnet_data::geo::describe(l.dest),
                l.period_days,
                l.occurrences,
                l.regularity * 100.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// E18 — time-respecting repeated routes
// ---------------------------------------------------------------------------

/// E18 output.
pub struct PathsResult {
    pub patterns: Vec<PathPattern>,
    pub multi_leg: usize,
    pub cycles: usize,
    pub truncated: bool,
}

/// Runs E18: frequent time-respecting connection paths over the dataset.
pub fn run_paths(txns: &[Transaction], cfg: &PathConfig) -> PathsResult {
    let out = frequent_paths(txns, cfg);
    let multi_leg = out.patterns.iter().filter(|p| p.legs() >= 2).count();
    let cycles = out.patterns.iter().filter(|p| p.is_cycle).count();
    PathsResult {
        patterns: out.patterns,
        multi_leg,
        cycles,
        truncated: out.truncated,
    }
}

impl fmt::Display for PathsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E18: time-respecting repeated routes (Sec 9) ===")?;
        writeln!(
            f,
            "frequent route patterns: {} ({} multi-leg, {} cycles{})",
            self.patterns.len(),
            self.multi_leg,
            self.cycles,
            if self.truncated { ", truncated" } else { "" }
        )?;
        for p in self.patterns.iter().filter(|p| p.legs() >= 2).take(5) {
            let stops: Vec<String> = p
                .locations
                .iter()
                .map(|l| tnet_data::geo::describe(*l))
                .collect();
            writeln!(
                f,
                "  {}  x{} starts{}",
                stops.join(" -> "),
                p.support(),
                if p.is_cycle { " (cycle)" } else { "" }
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// E19 — event fallout
// ---------------------------------------------------------------------------

/// E19 output.
pub struct EventsResult {
    pub event: Event,
    pub affected: usize,
    pub fallout: FalloutReport,
}

/// Runs E19: a Great Lakes blizzard mid-window, then before/after
/// pattern-shift analysis.
pub fn run_events(txns: &[Transaction]) -> EventsResult {
    let event = Event {
        kind: EventKind::WeatherDelay { slow_factor: 1.9 },
        center: LatLon::new(43.5, -87.5),
        radius_miles: 320.0,
        from: Date(80),
        to: Date(95),
    };
    let (after, affected) = inject_event(txns, &event);
    let fallout = pattern_fallout(txns, &after, &BinScheme::paper_defaults());
    EventsResult {
        event,
        affected,
        fallout,
    }
}

impl fmt::Display for EventsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E19: event fallout (Sec 9) ===")?;
        writeln!(
            f,
            "blizzard at {} (radius {:.0} mi, days {}..{}): {} shipments slowed, +{:.1}h mean",
            self.event.center,
            self.event.radius_miles,
            self.event.from.day(),
            self.event.to.day(),
            self.affected,
            self.fallout.mean_added_hours
        )?;
        writeln!(
            f,
            "transit-hour bins shifted: {} emergent, {} suppressed",
            self.fallout.emergent().count(),
            self.fallout.suppressed().count()
        )
    }
}

// ---------------------------------------------------------------------------
// E20 — maximal/closed pattern filtering
// ---------------------------------------------------------------------------

/// E20 output.
pub struct MaximalResult {
    pub maximal: Reduction,
    pub closed: Reduction,
}

/// Runs E20: mines a transaction set and reports how much the maximal
/// and closed filters shrink the result — the paper's suggested answer
/// to "many of these patterns turn out to be trivial or uninteresting".
pub fn run_maximal(
    transactions: &[Graph],
    support: Support,
) -> Result<MaximalResult, PipelineError> {
    let cfg = FsgConfig::default().with_support(support).with_max_edges(5);
    let out = mine(transactions, &cfg)?;
    let (_, maximal) = filter_with_report(&out.patterns, Keep::Maximal);
    let (_, closed) = filter_with_report(&out.patterns, Keep::Closed);
    Ok(MaximalResult { maximal, closed })
}

impl fmt::Display for MaximalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== E20: maximal/closed pattern filtering (Sec 9) ===")?;
        writeln!(
            f,
            "all frequent: {}  ->  closed: {} ({:.0}%)  ->  maximal: {} ({:.0}%)",
            self.maximal.before,
            self.closed.after,
            self.closed.ratio() * 100.0,
            self.maximal.after,
            self.maximal.ratio() * 100.0
        )
    }
}

// ---------------------------------------------------------------------------
// E21 — levelwise vs depth-first mining
// ---------------------------------------------------------------------------

/// E21 output.
pub struct MinerComparison {
    pub patterns_fsg: usize,
    pub patterns_gspan: usize,
    /// FSG's peak per-level candidate count — the §8 memory bottleneck.
    pub fsg_peak_candidates: usize,
    /// The DFS miner's peak growth-stack depth — its memory analogue.
    pub gspan_max_depth: usize,
}

/// Runs E21: both miners on the same transactions; outputs must agree,
/// memory profiles must contrast.
pub fn run_miner_comparison(
    transactions: &[Graph],
    support: Support,
    exec: &Exec,
) -> Result<MinerComparison, PipelineError> {
    let fsg_out = mine_with(
        transactions,
        &FsgConfig::default().with_support(support).with_max_edges(4),
        exec,
    )?;
    let gspan_out = mine_dfs_with(
        transactions,
        &GspanConfig {
            min_support: support,
            max_edges: 4,
            ..Default::default()
        },
        exec,
    )?;
    Ok(MinerComparison {
        patterns_fsg: fsg_out.patterns.len(),
        patterns_gspan: gspan_out.patterns.len(),
        fsg_peak_candidates: fsg_out
            .stats
            .candidates_per_level
            .iter()
            .copied()
            .max()
            .unwrap_or(0),
        gspan_max_depth: gspan_out.stats.max_depth,
    })
}

impl fmt::Display for MinerComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== E21: Apriori (FSG) vs pattern growth (gSpan-style) ==="
        )?;
        writeln!(
            f,
            "patterns: FSG {} vs DFS {}; peak memory: {} candidates (FSG level) vs {} stack depth (DFS)",
            self.patterns_fsg, self.patterns_gspan, self.fsg_peak_candidates, self.gspan_max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::synth::{generate, SynthConfig};
    use tnet_partition::split::{split_graph, Strategy};

    fn data(scale: f64) -> Vec<Transaction> {
        generate(&SynthConfig::scaled(scale)).transactions
    }

    fn graph_transactions(scale: f64) -> Vec<Graph> {
        let txns = data(scale);
        let scheme = BinScheme::paper_defaults();
        let od = tnet_data::od_graph::build_od_graph(
            &txns,
            &scheme,
            tnet_data::od_graph::EdgeLabeling::GrossWeight,
            tnet_data::od_graph::VertexLabeling::Uniform,
        );
        let mut g = od.graph;
        g.dedup_edges();
        let mut rng = tnet_graph::rng::StdRng::seed_from_u64(4);
        split_graph(&g, 10, Strategy::BreadthFirst, &mut rng)
    }

    #[test]
    fn periodic_lanes_recovered() {
        let res = run_periodic(&data(0.04));
        assert!(
            res.weekly_lanes >= 3,
            "planted weekly lanes should surface, got {}",
            res.weekly_lanes
        );
        // Detected lanes are sorted by regularity.
        for w in res.lanes.windows(2) {
            assert!(w[0].regularity >= w[1].regularity);
        }
    }

    #[test]
    fn repeated_routes_found() {
        let res = run_paths(
            &data(0.04),
            &PathConfig {
                min_sep: 0,
                max_sep: 4,
                max_len: 2,
                min_occurrences: 3,
                max_instances: 500_000,
            },
        );
        assert!(
            res.multi_leg > 0,
            "expected repeated 2-leg routes in a network with planted chains"
        );
    }

    #[test]
    fn event_fallout_measured() {
        let res = run_events(&data(0.04));
        assert!(
            res.affected > 0,
            "blizzard over the corridor must hit lanes"
        );
        assert!(res.fallout.mean_added_hours > 0.0);
        assert!(
            res.fallout.emergent().count() > 0,
            "slowdowns shift bins up"
        );
    }

    #[test]
    fn maximal_filter_reduces() {
        let txns = graph_transactions(0.02);
        let res = run_maximal(&txns, Support::Count(4)).unwrap();
        assert!(res.maximal.before > 0);
        assert!(res.maximal.after <= res.closed.after);
        assert!(res.closed.after <= res.maximal.before);
        assert!(
            res.maximal.ratio() < 1.0,
            "filtering should remove dominated sub-patterns"
        );
    }

    #[test]
    fn miners_agree_with_contrasting_memory() {
        let txns = graph_transactions(0.015);
        let res = run_miner_comparison(&txns, Support::Count(4), &Exec::new(2)).unwrap();
        assert_eq!(
            res.patterns_fsg, res.patterns_gspan,
            "output sets must match"
        );
        assert!(
            res.gspan_max_depth <= 4,
            "DFS keeps only the growth path in memory"
        );
    }
}
