//! Pattern taxonomy and interestingness for transportation graphs.
//!
//! §1 of the paper names the "known good shapes": circular routes,
//! hub-and-spoke; §5 adds the hypothetical bow-tie; Figure 1 discusses
//! deadheading; Figures 2–3 show a hub fan and a pickup/delivery chain.
//! These detectors classify mined patterns into that vocabulary so
//! experiment output reads like the paper's.

use tnet_graph::graph::{Graph, VertexId};
use tnet_graph::traverse::is_connected;

/// A structural class of a mined pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternShape {
    /// One vertex with `spokes` outgoing edges to leaves (Figure 2).
    HubAndSpoke { spokes: usize },
    /// One vertex receiving `spokes` edges from leaves (the converging
    /// fan of loads).
    ReverseHub { spokes: usize },
    /// A directed path of `edges` edges (Figure 3's repeated route).
    Chain { edges: usize },
    /// A directed cycle of `edges` edges (the circular route of §1).
    Cycle { edges: usize },
    /// Fans converging on a long-haul edge then diverging (§5's
    /// motivating example).
    BowTie { fan_in: usize, fan_out: usize },
    /// Anything else.
    Other,
}

impl PatternShape {
    pub fn name(&self) -> &'static str {
        match self {
            PatternShape::HubAndSpoke { .. } => "hub-and-spoke",
            PatternShape::ReverseHub { .. } => "reverse-hub",
            PatternShape::Chain { .. } => "chain",
            PatternShape::Cycle { .. } => "cycle",
            PatternShape::BowTie { .. } => "bow-tie",
            PatternShape::Other => "other",
        }
    }
}

/// Classifies a pattern graph.
pub fn classify(g: &Graph) -> PatternShape {
    let nv = g.vertex_count();
    let ne = g.edge_count();
    if nv == 0 || ne == 0 || !is_connected(g) {
        return PatternShape::Other;
    }
    let vs: Vec<VertexId> = g.vertices().collect();
    let out: Vec<usize> = vs.iter().map(|&v| g.out_degree(v)).collect();
    let inn: Vec<usize> = vs.iter().map(|&v| g.in_degree(v)).collect();

    // Cycle: every vertex has in = out = 1 and the graph is connected.
    if ne == nv && out.iter().all(|&d| d == 1) && inn.iter().all(|&d| d == 1) {
        return PatternShape::Cycle { edges: ne };
    }
    // Chain: a path v0 -> v1 -> ... -> vk.
    if ne == nv - 1 {
        let starts = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| o == 1 && i == 0)
            .count();
        let ends = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| o == 0 && i == 1)
            .count();
        let middles = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| o == 1 && i == 1)
            .count();
        if starts == 1 && ends == 1 && middles == nv - 2 {
            return PatternShape::Chain { edges: ne };
        }
        // Hub: one sender to ne leaves.
        let hub_out = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| o == ne && i == 0)
            .count();
        let leaves_in = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| o == 0 && i == 1)
            .count();
        if hub_out == 1 && leaves_in == nv - 1 {
            return PatternShape::HubAndSpoke { spokes: ne };
        }
        let hub_in = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| i == ne && o == 0)
            .count();
        let leaves_out = vs
            .iter()
            .zip(&out)
            .zip(&inn)
            .filter(|((_, &o), &i)| o == 1 && i == 0)
            .count();
        if hub_in == 1 && leaves_out == nv - 1 {
            return PatternShape::ReverseHub { spokes: ne };
        }
    }
    // Bow-tie: exactly one edge (L -> R) where L has fan-in >= 2 from
    // leaves and R has fan-out >= 2 to leaves, and nothing else.
    if let Some(bt) = detect_bow_tie(g, &vs) {
        return bt;
    }
    PatternShape::Other
}

fn detect_bow_tie(g: &Graph, vs: &[VertexId]) -> Option<PatternShape> {
    // Find the unique "waist" edge between two internal vertices.
    let internal: Vec<VertexId> = vs.iter().copied().filter(|&v| g.degree(v) >= 3).collect();
    if internal.len() != 2 {
        return None;
    }
    let (l, r) = (internal[0], internal[1]);
    let (l, r) = if g.out_edges(l).any(|e| g.edge_dst(e) == r) {
        (l, r)
    } else if g.out_edges(r).any(|e| g.edge_dst(e) == l) {
        (r, l)
    } else {
        return None;
    };
    let fan_in = g.in_degree(l);
    let fan_out = g.out_degree(r);
    // Leaves must account for all other vertices, each degree 1.
    let leaves_ok = vs
        .iter()
        .filter(|&&v| v != l && v != r)
        .all(|&v| g.degree(v) == 1);
    let structure_ok = g.out_degree(l) == 1 && g.in_degree(r) == 1;
    (fan_in >= 2 && fan_out >= 2 && leaves_ok && structure_ok)
        .then_some(PatternShape::BowTie { fan_in, fan_out })
}

/// Detects deadheading evidence in a pattern: ordered vertex pairs with
/// traffic in one direction and none back ("significant traffic from node
/// 2 to node 4 via node 3, but not much return traffic"). Returns the
/// number of one-way pairs.
pub fn one_way_pairs(g: &Graph) -> usize {
    let mut count = 0;
    let vs: Vec<VertexId> = g.vertices().collect();
    for &a in &vs {
        for &b in &vs {
            if a >= b {
                continue;
            }
            let fwd = g.out_edges(a).any(|e| g.edge_dst(e) == b);
            let back = g.out_edges(b).any(|e| g.edge_dst(e) == a);
            if fwd != back {
                count += 1;
            }
        }
    }
    count
}

/// Interestingness of a mined pattern, per the §9 challenge ("a variety
/// of metrics have been developed ... similar metrics are needed for
/// graph mining"). Combines:
///
/// * **coverage** — support × pattern edges (how much of the network the
///   pattern explains);
/// * **structural surprise** — patterns beyond a single edge are rarer a
///   priori; scored by edges − 1;
/// * **shape bonus** — recognized transportation shapes (hubs, chains,
///   cycles, bow-ties) are actionable, `Other` is not.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interestingness {
    pub coverage: f64,
    pub surprise: f64,
    pub shape_bonus: f64,
}

impl Interestingness {
    pub fn total(&self) -> f64 {
        self.coverage * (1.0 + self.surprise) * self.shape_bonus
    }
}

/// Scores a pattern with its observed support.
pub fn interestingness(g: &Graph, support: usize) -> Interestingness {
    let shape = classify(g);
    let shape_bonus = match shape {
        PatternShape::Other => 1.0,
        PatternShape::HubAndSpoke { .. } | PatternShape::ReverseHub { .. } => 1.5,
        PatternShape::Chain { .. } => 1.5,
        PatternShape::Cycle { .. } | PatternShape::BowTie { .. } => 2.0,
    };
    Interestingness {
        coverage: support as f64 * g.edge_count() as f64,
        surprise: (g.edge_count().saturating_sub(1)) as f64,
        shape_bonus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::{ELabel, VLabel};

    #[test]
    fn classifies_canonical_shapes() {
        assert_eq!(
            classify(&shapes::hub_and_spoke(4, 0, 1)),
            PatternShape::HubAndSpoke { spokes: 4 }
        );
        assert_eq!(
            classify(&shapes::chain(3, 0, 1)),
            PatternShape::Chain { edges: 3 }
        );
        assert_eq!(
            classify(&shapes::cycle(5, 0, 1)),
            PatternShape::Cycle { edges: 5 }
        );
        assert_eq!(
            classify(&shapes::bow_tie(3, 0, 1, 2)),
            PatternShape::BowTie {
                fan_in: 3,
                fan_out: 3
            }
        );
    }

    #[test]
    fn reverse_hub() {
        let mut g = Graph::new();
        let hub = g.add_vertex(VLabel(0));
        for _ in 0..3 {
            let s = g.add_vertex(VLabel(0));
            g.add_edge(s, hub, ELabel(1));
        }
        assert_eq!(classify(&g), PatternShape::ReverseHub { spokes: 3 });
    }

    #[test]
    fn single_edge_is_chain() {
        assert_eq!(
            classify(&shapes::chain(1, 0, 1)),
            PatternShape::Chain { edges: 1 }
        );
    }

    #[test]
    fn two_cycle() {
        assert_eq!(
            classify(&shapes::cycle(2, 0, 1)),
            PatternShape::Cycle { edges: 2 }
        );
    }

    #[test]
    fn irregular_is_other() {
        let mut g = shapes::hub_and_spoke(3, 0, 1);
        let vs: Vec<_> = g.vertices().collect();
        g.add_edge(vs[1], vs[2], ELabel(1));
        assert_eq!(classify(&g), PatternShape::Other);
        assert_eq!(classify(&Graph::new()), PatternShape::Other);
    }

    #[test]
    fn one_way_detection() {
        // a -> b (one way), c <-> d (balanced).
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        let c = g.add_vertex(VLabel(0));
        let d = g.add_vertex(VLabel(0));
        g.add_edge(a, b, ELabel(0));
        g.add_edge(c, d, ELabel(0));
        g.add_edge(d, c, ELabel(0));
        assert_eq!(one_way_pairs(&g), 1);
    }

    #[test]
    fn interestingness_prefers_big_shaped_patterns() {
        let hub = shapes::hub_and_spoke(5, 0, 1);
        let edge = shapes::chain(1, 0, 1);
        // Same support: the 5-spoke hub must score far above one edge.
        let big = interestingness(&hub, 100).total();
        let small = interestingness(&edge, 100).total();
        assert!(big > small * 5.0);
        // But an extremely frequent edge can still beat a rare hub.
        let rare_hub = interestingness(&hub, 2).total();
        let common_edge = interestingness(&edge, 10_000).total();
        assert!(common_edge > rare_hub);
    }

    #[test]
    fn shape_names() {
        assert_eq!(classify(&shapes::cycle(3, 0, 1)).name(), "cycle");
        assert_eq!(PatternShape::Other.name(), "other");
    }
}
