//! The unified pipeline error taxonomy.
//!
//! Every failure a report section or CLI path can hit — CSV parse
//! errors, degenerate binning input, miner memory-budget aborts,
//! injected faults, deadlines, and panics — converges on
//! [`PipelineError`], so callers map outcomes to stable exit codes and
//! one-line messages instead of pattern-matching five per-crate enums.

use std::fmt;
use std::time::Duration;
use tnet_data::binning::BinFitError;
use tnet_data::csv::CsvError;
use tnet_fsg::FsgError;
use tnet_gspan::GspanError;
use tnet_partition::TemporalError;
use tnet_subdue::SubdueError;
use tnet_tabular::EmError;

/// Any failure surfaced by the knowledge-discovery pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// CSV ingest rejected a line.
    Csv(CsvError),
    /// Bin fitting rejected the transaction set.
    BinFit(BinFitError),
    /// The levelwise (FSG) miner aborted.
    Fsg(FsgError),
    /// The SUBDUE beam search aborted.
    Subdue(SubdueError),
    /// The depth-first (gSpan-style) miner aborted.
    Gspan(GspanError),
    /// The EM clustering fit aborted.
    Em(EmError),
    /// A supervised section overran its wall-clock deadline.
    DeadlineExceeded { section: String, limit: Duration },
    /// A supervised section panicked; `message` is the panic payload.
    Panic { section: String, message: String },
    /// Work was cancelled without a deadline being the cause (an
    /// explicit caller cancel or a sibling abort on a shared token).
    Cancelled,
    /// An I/O failure outside CSV parsing (opening files, writing
    /// output).
    Io(String),
    /// A malformed request on the serving wire protocol (bad JSON, an
    /// unknown op, an oversized line). Always a client error: the
    /// daemon replies with it and keeps the connection alive.
    Protocol { message: String },
    /// Durable state (a WAL record away from the tail, a snapshot
    /// checkpoint) failed its checksum or structural validation.
    /// Recovery refuses to proceed on this — silently dropping
    /// mid-log records would serve wrong answers as if they were right.
    Corruption {
        path: String,
        offset: u64,
        message: String,
    },
    /// The daemon is at a capacity limit (all reader slots pinned, too
    /// many concurrent connections). Transient by construction: the
    /// client should back off and retry, so this is the one serving
    /// error marked retryable.
    Overloaded { message: String },
    /// Temporal partitioning rejected the transaction set at ingest
    /// (inverted pickup/delivery dates, a date span over the bucketing
    /// cap, or a degenerate window spec).
    Temporal(TemporalError),
}

impl PipelineError {
    /// True for failures the supervisor retries once at reduced effort:
    /// resource exhaustion (a miner's memory-budget abort) and
    /// deadline overrun — the paper's §6.1 move of raising support and
    /// shrinking the input after FSG ran out of memory. Panics and
    /// malformed input are not retryable: the same input fails the same
    /// way at any effort.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PipelineError::Fsg(FsgError::MemoryBudgetExceeded { .. })
                | PipelineError::Subdue(SubdueError::MemoryBudgetExceeded { .. })
                | PipelineError::Gspan(GspanError::MemoryBudgetExceeded { .. })
                | PipelineError::DeadlineExceeded { .. }
                | PipelineError::Overloaded { .. }
        )
    }

    /// A stable machine-readable tag for the error's taxonomy branch,
    /// used as the `kind` field of wire-protocol error replies so
    /// clients can dispatch without parsing the human message.
    pub fn kind(&self) -> &'static str {
        match self {
            PipelineError::Csv(_) => "csv",
            PipelineError::BinFit(_) => "bin_fit",
            PipelineError::Fsg(_) => "fsg",
            PipelineError::Subdue(_) => "subdue",
            PipelineError::Gspan(_) => "gspan",
            PipelineError::Em(_) => "em",
            PipelineError::DeadlineExceeded { .. } => "deadline",
            PipelineError::Panic { .. } => "panic",
            PipelineError::Cancelled => "cancelled",
            PipelineError::Io(_) => "io",
            PipelineError::Protocol { .. } => "protocol",
            PipelineError::Corruption { .. } => "corruption",
            PipelineError::Overloaded { .. } => "overloaded",
            PipelineError::Temporal(_) => "temporal",
        }
    }

    /// True when the underlying failure is a bare cancellation (any
    /// layer's `Cancelled` variant). The supervisor reclassifies these
    /// as [`PipelineError::DeadlineExceeded`] when the section's
    /// deadline token has expired.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            PipelineError::Cancelled
                | PipelineError::Fsg(FsgError::Cancelled)
                | PipelineError::Subdue(SubdueError::Cancelled)
                | PipelineError::Gspan(GspanError::Cancelled)
                | PipelineError::Em(EmError::Cancelled)
        )
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Csv(e) => write!(f, "{e}"),
            PipelineError::BinFit(e) => write!(f, "{e}"),
            PipelineError::Fsg(e) => write!(f, "fsg: {e}"),
            PipelineError::Subdue(e) => write!(f, "subdue: {e}"),
            PipelineError::Gspan(e) => write!(f, "gspan: {e}"),
            PipelineError::Em(e) => write!(f, "em: {e}"),
            PipelineError::DeadlineExceeded { section, limit } => {
                write!(f, "section `{section}` exceeded its {limit:?} deadline")
            }
            PipelineError::Panic { section, message } => {
                write!(f, "section `{section}` panicked: {message}")
            }
            PipelineError::Cancelled => write!(f, "cancelled"),
            PipelineError::Io(msg) => write!(f, "io error: {msg}"),
            PipelineError::Protocol { message } => write!(f, "protocol error: {message}"),
            PipelineError::Corruption {
                path,
                offset,
                message,
            } => write!(
                f,
                "corrupt durable state in {path} at byte {offset}: {message}"
            ),
            PipelineError::Overloaded { message } => write!(f, "overloaded: {message}"),
            PipelineError::Temporal(e) => write!(f, "temporal partition: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CsvError> for PipelineError {
    fn from(e: CsvError) -> Self {
        PipelineError::Csv(e)
    }
}

impl From<BinFitError> for PipelineError {
    fn from(e: BinFitError) -> Self {
        PipelineError::BinFit(e)
    }
}

impl From<TemporalError> for PipelineError {
    fn from(e: TemporalError) -> Self {
        PipelineError::Temporal(e)
    }
}

impl From<FsgError> for PipelineError {
    fn from(e: FsgError) -> Self {
        PipelineError::Fsg(e)
    }
}

impl From<SubdueError> for PipelineError {
    fn from(e: SubdueError) -> Self {
        PipelineError::Subdue(e)
    }
}

impl From<GspanError> for PipelineError {
    fn from(e: GspanError) -> Self {
        PipelineError::Gspan(e)
    }
}

impl From<EmError> for PipelineError {
    fn from(e: EmError) -> Self {
        PipelineError::Em(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        let budget = PipelineError::Subdue(SubdueError::MemoryBudgetExceeded {
            estimated_bytes: 10,
            budget: 1,
            expanded: 0,
        });
        assert!(budget.is_retryable());
        let deadline = PipelineError::DeadlineExceeded {
            section: "E2".into(),
            limit: Duration::from_secs(1),
        };
        assert!(deadline.is_retryable());
        let panic = PipelineError::Panic {
            section: "E2".into(),
            message: "boom".into(),
        };
        assert!(!panic.is_retryable());
        assert!(!PipelineError::Cancelled.is_retryable());
    }

    #[test]
    fn cancellation_classification() {
        assert!(PipelineError::Cancelled.is_cancellation());
        assert!(PipelineError::Fsg(FsgError::Cancelled).is_cancellation());
        assert!(PipelineError::Em(EmError::Cancelled).is_cancellation());
        assert!(!PipelineError::Io("x".into()).is_cancellation());
    }

    #[test]
    fn corruption_and_overload_kinds() {
        let c = PipelineError::Corruption {
            path: "wal.log".into(),
            offset: 4096,
            message: "crc mismatch".into(),
        };
        assert_eq!(c.kind(), "corruption");
        assert!(!c.is_retryable(), "corruption never heals on retry");
        assert!(c.to_string().contains("wal.log"));
        assert!(c.to_string().contains("4096"));
        let o = PipelineError::Overloaded {
            message: "all 128 reader slots pinned".into(),
        };
        assert_eq!(o.kind(), "overloaded");
        assert!(o.is_retryable(), "overload is transient by construction");
        assert!(!o.is_cancellation());
    }

    #[test]
    fn kinds_are_stable_tags() {
        assert_eq!(PipelineError::Cancelled.kind(), "cancelled");
        assert_eq!(PipelineError::Io("x".into()).kind(), "io");
        let p = PipelineError::Protocol {
            message: "unknown op `frobnicate`".into(),
        };
        assert_eq!(p.kind(), "protocol");
        assert!(p.to_string().contains("unknown op"));
        assert!(!p.is_retryable());
        assert!(!p.is_cancellation());
        let d = PipelineError::DeadlineExceeded {
            section: "s".into(),
            limit: Duration::from_secs(1),
        };
        assert_eq!(d.kind(), "deadline");
    }

    #[test]
    fn display_includes_layer() {
        let e = PipelineError::Gspan(GspanError::Cancelled);
        assert!(e.to_string().starts_with("gspan: "));
        let e = PipelineError::DeadlineExceeded {
            section: "E5: sweep".into(),
            limit: Duration::from_millis(250),
        };
        assert!(e.to_string().contains("E5: sweep"));
        assert!(e.to_string().contains("deadline"));
    }
}
