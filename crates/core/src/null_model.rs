//! Null-model significance for graph patterns.
//!
//! §9: "Even at high support levels ... many of these patterns turn out
//! to be trivial or uninteresting. A variety of metrics have been
//! developed to evaluate the interestingness of association rules;
//! similar metrics are needed for graph mining."
//!
//! This module supplies the graph analogue of an association rule's
//! *lift*: compare a pattern's observed support against its expected
//! support in **label-shuffled** copies of the transactions. Shuffling
//! edge labels preserves every structural property (degree sequence,
//! connectivity, transaction sizes) and destroys exactly the
//! label-to-structure coupling, so patterns that stay frequent under the
//! null are structural artifacts, while patterns whose support collapses
//! carry real label information.

use tnet_graph::graph::{ELabel, Graph};
use tnet_graph::iso::Matcher;
use tnet_graph::rng::{SliceRandom, StdRng};

/// A pattern's observed-vs-null comparison.
#[derive(Clone, Debug)]
pub struct NullModelScore {
    pub observed_support: usize,
    /// Mean support across the shuffled replicas.
    pub expected_support: f64,
    /// Sample standard deviation across replicas.
    pub std_dev: f64,
    pub replicas: usize,
}

impl NullModelScore {
    /// Lift: observed / expected (∞-safe: expected floors at one
    /// transaction's worth).
    pub fn lift(&self) -> f64 {
        self.observed_support as f64 / self.expected_support.max(0.5)
    }

    /// z-score of the observed support under the null.
    pub fn z_score(&self) -> f64 {
        if self.std_dev <= 1e-12 {
            if (self.observed_support as f64 - self.expected_support).abs() < 1e-9 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.observed_support as f64 - self.expected_support) / self.std_dev
        }
    }

    /// A pattern is label-informative when it is clearly more frequent
    /// than its shuffled expectation.
    pub fn is_significant(&self, min_lift: f64) -> bool {
        self.lift() >= min_lift
    }
}

/// Returns a copy of `g` with its edge labels randomly permuted (the
/// label multiset is preserved exactly).
pub fn shuffle_edge_labels(g: &Graph, rng: &mut StdRng) -> Graph {
    let edges: Vec<_> = g.edges().collect();
    let mut labels: Vec<ELabel> = edges.iter().map(|&e| g.edge_label(e)).collect();
    labels.shuffle(rng);
    let mut out = Graph::with_capacity(g.vertex_count(), g.edge_count());
    let mut vmap = tnet_graph::hash::FxHashMap::default();
    for v in g.vertices() {
        vmap.insert(v, out.add_vertex(g.vertex_label(v)));
    }
    for (&e, &l) in edges.iter().zip(&labels) {
        let (s, d, _) = g.edge(e);
        out.add_edge(vmap[&s], vmap[&d], l);
    }
    out
}

/// Scores `pattern` against `transactions` using `replicas` label-shuffled
/// null datasets. Deterministic for a given seed.
pub fn null_model_score(
    pattern: &Graph,
    transactions: &[Graph],
    replicas: usize,
    seed: u64,
) -> NullModelScore {
    assert!(replicas > 0, "need at least one replica");
    let matcher = Matcher::new(pattern);
    let observed_support = transactions.iter().filter(|t| matcher.matches(t)).count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut supports = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let support = transactions
            .iter()
            .filter(|t| {
                let shuffled = shuffle_edge_labels(t, &mut rng);
                matcher.matches(&shuffled)
            })
            .count();
        supports.push(support as f64);
    }
    let mean = supports.iter().sum::<f64>() / replicas as f64;
    let var =
        supports.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (replicas.max(2) - 1) as f64;
    NullModelScore {
        observed_support,
        expected_support: mean,
        std_dev: var.sqrt(),
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::VLabel;

    /// Transactions where label 1 always sits on hub spokes and label 2
    /// on a separate edge: the "3 same-label spokes" pattern is
    /// label-informative.
    fn informative_transactions(n: usize) -> Vec<Graph> {
        (0..n)
            .map(|_| {
                let mut g = shapes::hub_and_spoke(3, 0, 1);
                let a = g.add_vertex(VLabel(0));
                let b = g.add_vertex(VLabel(0));
                g.add_edge(a, b, tnet_graph::graph::ELabel(2));
                g.add_edge(b, a, tnet_graph::graph::ELabel(2));
                g
            })
            .collect()
    }

    #[test]
    fn shuffle_preserves_structure_and_label_multiset() {
        let g = informative_transactions(1).pop().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = shuffle_edge_labels(&g, &mut rng);
        assert_eq!(s.vertex_count(), g.vertex_count());
        assert_eq!(s.edge_count(), g.edge_count());
        let mut a: Vec<u32> = g.edges().map(|e| g.edge_label(e).0).collect();
        let mut b: Vec<u32> = s.edges().map(|e| s.edge_label(e).0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "label multiset preserved");
        // Structure preserved: same degree sequence.
        let mut da: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut db: Vec<usize> = s.vertices().map(|v| s.degree(v)).collect();
        da.sort_unstable();
        db.sort_unstable();
        assert_eq!(da, db);
    }

    #[test]
    fn label_coupled_pattern_scores_high() {
        let txns = informative_transactions(12);
        // 3-spoke hub all label 1: observed in every transaction, but a
        // shuffle usually breaks the all-same-label property.
        let pattern = shapes::hub_and_spoke(3, 0, 1);
        let score = null_model_score(&pattern, &txns, 20, 7);
        assert_eq!(score.observed_support, 12);
        assert!(
            score.expected_support < 12.0 * 0.7,
            "shuffling should depress support, got {}",
            score.expected_support
        );
        assert!(score.lift() > 1.3);
        assert!(score.is_significant(1.3));
    }

    #[test]
    fn structural_pattern_scores_neutral() {
        let txns = informative_transactions(12);
        // A single any-label edge with uniform vertex labels exists in
        // every shuffle too: lift ~ 1.
        let pattern = shapes::chain(1, 0, 1);
        let score = null_model_score(&pattern, &txns, 10, 7);
        assert_eq!(score.observed_support, 12);
        assert!((score.lift() - 1.0).abs() < 0.2, "lift {}", score.lift());
        assert!(!score.is_significant(1.3));
    }

    #[test]
    fn z_score_degenerate_cases() {
        let s = NullModelScore {
            observed_support: 5,
            expected_support: 5.0,
            std_dev: 0.0,
            replicas: 3,
        };
        assert_eq!(s.z_score(), 0.0);
        let s2 = NullModelScore {
            observed_support: 9,
            expected_support: 5.0,
            std_dev: 0.0,
            replicas: 3,
        };
        assert!(s2.z_score().is_infinite());
    }
}
