//! Periodic lane detection — §9: "Concepts such as periodicity in
//! routes, or expectation of changes over time, could be important
//! factors."
//!
//! A *lane* is one OD pair; its shipment history is the sorted multiset
//! of pickup days. A lane is periodic when one gap value dominates the
//! consecutive-gap distribution (e.g. weekly replenishment runs).

use std::collections::HashMap;
use tnet_data::model::{LatLon, Transaction};

/// A detected periodic lane.
#[derive(Clone, Debug, PartialEq)]
pub struct PeriodicLane {
    pub origin: LatLon,
    pub dest: LatLon,
    /// Dominant gap between consecutive shipments, in days.
    pub period_days: u32,
    /// Number of shipments on the lane.
    pub occurrences: usize,
    /// Fraction of consecutive gaps within `tolerance` of the period.
    pub regularity: f64,
}

/// Detection parameters.
#[derive(Clone, Copy, Debug)]
pub struct PeriodicConfig {
    /// Minimum shipments on a lane before periodicity is considered.
    pub min_occurrences: usize,
    /// A gap counts as matching the period when within this many days.
    pub tolerance: u32,
    /// Minimum regularity to report the lane.
    pub min_regularity: f64,
    /// Ignore candidate periods shorter than this (every lane is
    /// trivially "periodic" at gap 0 when same-day shipments repeat).
    pub min_period: u32,
}

impl Default for PeriodicConfig {
    fn default() -> Self {
        PeriodicConfig {
            min_occurrences: 4,
            tolerance: 1,
            min_regularity: 0.6,
            min_period: 2,
        }
    }
}

/// Finds periodic lanes, strongest regularity first.
pub fn periodic_lanes(txns: &[Transaction], cfg: &PeriodicConfig) -> Vec<PeriodicLane> {
    let mut by_lane: HashMap<(LatLon, LatLon), Vec<u32>> = HashMap::new();
    for t in txns {
        by_lane
            .entry(t.od_pair())
            .or_default()
            .push(t.req_pickup.day());
    }
    let mut out = Vec::new();
    for ((origin, dest), mut days) in by_lane {
        if days.len() < cfg.min_occurrences {
            continue;
        }
        days.sort_unstable();
        days.dedup();
        if days.len() < cfg.min_occurrences {
            continue;
        }
        let gaps: Vec<u32> = days.windows(2).map(|w| w[1] - w[0]).collect();
        // Dominant gap by histogram vote.
        let mut hist: HashMap<u32, usize> = HashMap::new();
        for &g in &gaps {
            if g >= cfg.min_period {
                *hist.entry(g).or_insert(0) += 1;
            }
        }
        // Tie-break on the smaller gap so the dominant period never
        // depends on hash-map iteration order.
        let Some((&period, _)) = hist
            .iter()
            .max_by_key(|&(&g, &c)| (c, std::cmp::Reverse(g)))
        else {
            continue;
        };
        let matching = gaps
            .iter()
            .filter(|&&g| g.abs_diff(period) <= cfg.tolerance)
            .count();
        let regularity = matching as f64 / gaps.len() as f64;
        if regularity >= cfg.min_regularity {
            out.push(PeriodicLane {
                origin,
                dest,
                period_days: period,
                occurrences: days.len(),
                regularity,
            });
        }
    }
    out.sort_by(|a, b| {
        b.regularity
            .partial_cmp(&a.regularity)
            .unwrap()
            .then(b.occurrences.cmp(&a.occurrences))
            .then((a.origin, a.dest).cmp(&(b.origin, b.dest)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::{Date, TransMode};

    fn txn(id: u64, day: u32, o: (f64, f64), d: (f64, f64)) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(day),
            req_delivery: Date(day + 1),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 100.0,
            gross_weight: 20_000.0,
            transit_hours: 10.0,
            mode: TransMode::Truckload,
        }
    }

    const A: (f64, f64) = (44.5, -88.0);
    const B: (f64, f64) = (41.9, -87.6);
    const C: (f64, f64) = (39.1, -84.5);

    #[test]
    fn weekly_lane_detected() {
        let mut txns: Vec<Transaction> = (0..8).map(|i| txn(i, 3 + 7 * i as u32, A, B)).collect();
        // A noisy lane that should not qualify.
        for (i, day) in [0u32, 3, 4, 11, 29, 30, 55].iter().enumerate() {
            txns.push(txn(100 + i as u64, *day, B, C));
        }
        let lanes = periodic_lanes(&txns, &PeriodicConfig::default());
        assert_eq!(lanes.len(), 1);
        let lane = &lanes[0];
        assert_eq!(lane.period_days, 7);
        assert_eq!(lane.occurrences, 8);
        assert!((lane.regularity - 1.0).abs() < 1e-12);
        assert_eq!(lane.origin, LatLon::new(A.0, A.1));
    }

    #[test]
    fn tolerance_absorbs_jitter() {
        // Gaps of 6/7/8 days still read as weekly with tolerance 1.
        let days = [0u32, 6, 13, 21, 28, 34];
        let txns: Vec<Transaction> = days
            .iter()
            .enumerate()
            .map(|(i, &d)| txn(i as u64, d, A, B))
            .collect();
        let lanes = periodic_lanes(&txns, &PeriodicConfig::default());
        assert_eq!(lanes.len(), 1);
        assert!(lanes[0].regularity >= 0.8);
    }

    #[test]
    fn sparse_lanes_skipped() {
        let txns = vec![txn(1, 0, A, B), txn(2, 7, A, B)];
        assert!(periodic_lanes(&txns, &PeriodicConfig::default()).is_empty());
    }

    #[test]
    fn same_day_repeats_do_not_fake_period() {
        // Many same-day shipments then nothing: dedup removes the gap-0
        // noise; remaining occurrences below threshold.
        let txns: Vec<Transaction> = (0..6).map(|i| txn(i, 10, A, B)).collect();
        assert!(periodic_lanes(&txns, &PeriodicConfig::default()).is_empty());
    }
}
