//! # tnet-dynamic
//!
//! Dynamic-graph mining — the paper's §9 research challenge, built out:
//! "one of the biggest challenge problems is how to do mining of dynamic
//! graphs, where a dynamic graph is defined as a graph for which an edge
//! / vertex exists only for certain periods of times."
//!
//! * [`periodic`] — periodic lane detection (weekly replenishment runs
//!   and similar; "periodicity in routes ... could be important
//!   factors");
//! * [`paths`] — frequently repeated time-respecting connection paths,
//!   with minimum/maximum separation between the legs and cycle
//!   detection ("knowing that the cycle exists over a space of a week");
//! * [`events`] — event injection and before/after emergent-pattern
//!   analysis ("analysis of the fallout of temporal/spatial events").
//!
//! ```
//! use tnet_dynamic::periodic::{periodic_lanes, PeriodicConfig};
//! use tnet_data::synth::{generate, SynthConfig};
//!
//! let ds = generate(&SynthConfig::scaled(0.02));
//! let lanes = periodic_lanes(&ds.transactions, &PeriodicConfig::default());
//! // The generator plants weekly lanes; the detector recovers them.
//! assert!(lanes.iter().any(|l| l.period_days == 7));
//! ```

pub mod events;
pub mod paths;
pub mod periodic;

pub use events::{inject_event, pattern_fallout, Event, EventKind, FalloutReport};
pub use paths::{frequent_paths, PathConfig, PathMiningResult, PathPattern};
pub use periodic::{periodic_lanes, PeriodicConfig, PeriodicLane};
