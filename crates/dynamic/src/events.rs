//! Events and their fallout — §9: "Incorporating the notion of events
//! into a graph is another interesting problem ... weather incidents that
//! cause longer delays or even closure of some roads ... As a first cut,
//! it is quite natural to represent events as a change in the value of a
//! set of nodes and links. ... Analysis of the fallout of
//! temporal/spatial events could lead to figuring out the nature of
//! causality between emergent patterns and a triggering event."
//!
//! [`inject_event`] applies an event to a transaction set (the "change in
//! the value of a set of nodes and links"); [`pattern_fallout`] compares
//! the frequent edge-pattern distribution before and after, surfacing the
//! emergent and suppressed patterns.

use std::collections::HashMap;
use tnet_data::binning::BinScheme;
use tnet_data::model::{Date, LatLon, Transaction};

/// What an event does to the shipments it touches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Weather: transit hours multiplied by `slow_factor` (>= 1.0) and
    /// delivery dates pushed accordingly.
    WeatherDelay { slow_factor: f64 },
    /// Road closure: shipments rerouted, multiplying distance by
    /// `detour_factor` (>= 1.0) with the matching time increase.
    RoadClosure { detour_factor: f64 },
}

/// A spatially and temporally scoped event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Center of the affected region.
    pub center: LatLon,
    /// Shipments whose origin or destination lies within this many miles
    /// of the center are affected.
    pub radius_miles: f64,
    /// Active window (inclusive): shipments picked up inside it are
    /// affected.
    pub from: Date,
    pub to: Date,
}

impl Event {
    /// True if the event touches this transaction.
    pub fn affects(&self, t: &Transaction) -> bool {
        if t.req_pickup < self.from || t.req_pickup > self.to {
            return false;
        }
        t.origin.haversine_miles(self.center) <= self.radius_miles
            || t.dest.haversine_miles(self.center) <= self.radius_miles
    }
}

/// Applies the event, returning the perturbed transaction set and the
/// number of shipments affected.
pub fn inject_event(txns: &[Transaction], event: &Event) -> (Vec<Transaction>, usize) {
    let mut affected = 0usize;
    let out = txns
        .iter()
        .map(|t| {
            if !event.affects(t) {
                return t.clone();
            }
            affected += 1;
            let mut t = t.clone();
            match event.kind {
                EventKind::WeatherDelay { slow_factor } => {
                    assert!(slow_factor >= 1.0, "events only slow shipments down");
                    t.transit_hours *= slow_factor;
                }
                EventKind::RoadClosure { detour_factor } => {
                    assert!(detour_factor >= 1.0);
                    t.total_distance *= detour_factor;
                    t.transit_hours *= detour_factor;
                }
            }
            // Delivery date follows the slower transit.
            let days = (t.transit_hours / 24.0).ceil() as u32;
            let min_delivery = t.req_pickup.plus_days(days);
            if t.req_delivery < min_delivery {
                t.req_delivery = min_delivery;
            }
            t
        })
        .collect();
    (out, affected)
}

/// A frequent-pattern shift caused by an event: a transit-hours bin whose
/// shipment count changed.
#[derive(Clone, Debug, PartialEq)]
pub struct BinShift {
    pub bin: u32,
    pub before: usize,
    pub after: usize,
}

/// The before/after comparison.
#[derive(Clone, Debug)]
pub struct FalloutReport {
    pub affected_transactions: usize,
    /// Mean added transit hours over affected shipments.
    pub mean_added_hours: f64,
    /// Hour-bin populations that changed (emergent where `after >
    /// before`, suppressed where `after < before`).
    pub shifted_bins: Vec<BinShift>,
}

impl FalloutReport {
    /// Bins that gained shipments — the "emergent patterns".
    pub fn emergent(&self) -> impl Iterator<Item = &BinShift> {
        self.shifted_bins.iter().filter(|s| s.after > s.before)
    }

    /// Bins that lost shipments.
    pub fn suppressed(&self) -> impl Iterator<Item = &BinShift> {
        self.shifted_bins.iter().filter(|s| s.after < s.before)
    }
}

/// Quantifies an event's fallout on the edge-label (transit-hours bin)
/// distribution — the §9 "bounce effect" probe.
pub fn pattern_fallout(
    before: &[Transaction],
    after: &[Transaction],
    scheme: &BinScheme,
) -> FalloutReport {
    assert_eq!(before.len(), after.len(), "compare like with like");
    let hist = |txns: &[Transaction]| -> HashMap<u32, usize> {
        let mut h = HashMap::new();
        for t in txns {
            *h.entry(scheme.hours.bin(t.transit_hours)).or_insert(0) += 1;
        }
        h
    };
    let hb = hist(before);
    let ha = hist(after);
    let mut affected = 0usize;
    let mut added_hours = 0.0;
    for (b, a) in before.iter().zip(after) {
        if (a.transit_hours - b.transit_hours).abs() > 1e-9 {
            affected += 1;
            added_hours += a.transit_hours - b.transit_hours;
        }
    }
    let mut bins: Vec<u32> = hb.keys().chain(ha.keys()).copied().collect();
    bins.sort_unstable();
    bins.dedup();
    let shifted_bins = bins
        .into_iter()
        .filter_map(|bin| {
            let before = hb.get(&bin).copied().unwrap_or(0);
            let after = ha.get(&bin).copied().unwrap_or(0);
            (before != after).then_some(BinShift { bin, before, after })
        })
        .collect();
    FalloutReport {
        affected_transactions: affected,
        mean_added_hours: if affected > 0 {
            added_hours / affected as f64
        } else {
            0.0
        },
        shifted_bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::TransMode;

    fn txn(id: u64, day: u32, o: (f64, f64), d: (f64, f64), hours: f64) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(day),
            req_delivery: Date(day + 2),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 300.0,
            gross_weight: 20_000.0,
            transit_hours: hours,
            mode: TransMode::Truckload,
        }
    }

    const GREEN_BAY: (f64, f64) = (44.5, -88.0);
    const CHICAGO: (f64, f64) = (41.9, -87.6);
    const HOUSTON: (f64, f64) = (29.8, -95.4);
    const ATLANTA: (f64, f64) = (33.7, -84.4);

    fn blizzard() -> Event {
        Event {
            kind: EventKind::WeatherDelay { slow_factor: 2.0 },
            center: LatLon::new(43.0, -88.0),
            radius_miles: 250.0,
            from: Date(10),
            to: Date(12),
        }
    }

    #[test]
    fn event_scoping_space_and_time() {
        let e = blizzard();
        let in_both = txn(1, 11, GREEN_BAY, CHICAGO, 8.0);
        let wrong_time = txn(2, 20, GREEN_BAY, CHICAGO, 8.0);
        let wrong_place = txn(3, 11, HOUSTON, ATLANTA, 18.0);
        assert!(e.affects(&in_both));
        assert!(!e.affects(&wrong_time));
        assert!(!e.affects(&wrong_place));
    }

    #[test]
    fn weather_slows_affected_shipments() {
        let txns = vec![
            txn(1, 11, GREEN_BAY, CHICAGO, 8.0),
            txn(2, 11, HOUSTON, ATLANTA, 18.0),
        ];
        let (after, n) = inject_event(&txns, &blizzard());
        assert_eq!(n, 1);
        assert_eq!(after[0].transit_hours, 16.0);
        assert_eq!(after[1].transit_hours, 18.0);
        assert!(after[0].req_delivery >= after[0].req_pickup.plus_days(1));
    }

    #[test]
    fn road_closure_adds_distance() {
        let e = Event {
            kind: EventKind::RoadClosure { detour_factor: 1.5 },
            ..blizzard()
        };
        let txns = vec![txn(1, 11, GREEN_BAY, CHICAGO, 8.0)];
        let (after, n) = inject_event(&txns, &e);
        assert_eq!(n, 1);
        assert_eq!(after[0].total_distance, 450.0);
        assert_eq!(after[0].transit_hours, 12.0);
    }

    #[test]
    fn fallout_reports_bin_shifts() {
        let scheme = BinScheme::paper_defaults(); // 10 hour-bins over 0..200
        let txns: Vec<Transaction> = (0..10)
            .map(|i| txn(i, 11, GREEN_BAY, CHICAGO, 15.0))
            .collect();
        let (after, _) = inject_event(&txns, &blizzard());
        let report = pattern_fallout(&txns, &after, &scheme);
        assert_eq!(report.affected_transactions, 10);
        assert!((report.mean_added_hours - 15.0).abs() < 1e-9);
        // 15h -> 30h crosses the 20h bin boundary: one bin suppressed,
        // one emergent.
        assert_eq!(report.emergent().count(), 1);
        assert_eq!(report.suppressed().count(), 1);
        let emergent = report.emergent().next().unwrap();
        assert_eq!(emergent.after, 10);
        assert_eq!(emergent.before, 0);
    }

    #[test]
    fn no_event_no_fallout() {
        let txns = vec![txn(1, 1, HOUSTON, ATLANTA, 18.0)];
        let (after, n) = inject_event(&txns, &blizzard());
        assert_eq!(n, 0);
        let report = pattern_fallout(&txns, &after, &BinScheme::paper_defaults());
        assert_eq!(report.affected_transactions, 0);
        assert_eq!(report.mean_added_hours, 0.0);
        assert!(report.shifted_bins.is_empty());
    }
}
