//! Time-respecting path patterns — §9: "One example is to find
//! frequently repeated connection paths, where the entire path is not
//! connected at any given time instant but adjacent edges and vertices
//! always co-exist ... not only must the pattern occur within a time
//! window, but the transactions composing the pattern must be separated
//! by a minimum or maximum time."
//!
//! A *time-respecting path* is a sequence of shipments t1..tk with
//! `dest(ti) == origin(ti+1)` and
//! `min_sep <= pickup(ti+1) − delivery(ti) <= max_sep` (in days). The
//! location sequence of such a path is a candidate repeated route; a
//! pattern is frequent when instances *starting at distinct dates* reach
//! the support threshold.

use std::collections::HashMap;
use tnet_data::model::{Date, LatLon, Transaction};

/// Search parameters.
#[derive(Clone, Copy, Debug)]
pub struct PathConfig {
    /// Minimum days between a leg's delivery and the next pickup.
    pub min_sep: i64,
    /// Maximum days between a leg's delivery and the next pickup.
    pub max_sep: i64,
    /// Path length in legs (edges); patterns of 2..=max_len are mined.
    pub max_len: usize,
    /// Minimum number of distinct start dates.
    pub min_occurrences: usize,
    /// Cap on enumerated path instances (guards combinatorial blow-up on
    /// pathological inputs; hitting the cap truncates, reported via
    /// [`PathMiningResult::truncated`]).
    pub max_instances: usize,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            min_sep: 0,
            max_sep: 3,
            max_len: 3,
            min_occurrences: 3,
            max_instances: 2_000_000,
        }
    }
}

/// A frequent time-respecting route.
#[derive(Clone, Debug)]
pub struct PathPattern {
    /// The location sequence (len = legs + 1).
    pub locations: Vec<LatLon>,
    /// Distinct start dates on which an instance begins.
    pub start_dates: Vec<Date>,
    /// Total instances found (may exceed start-date count).
    pub instances: usize,
    /// True if the route returns to its first location (a §1 "circular
    /// route").
    pub is_cycle: bool,
}

impl PathPattern {
    pub fn legs(&self) -> usize {
        self.locations.len() - 1
    }

    pub fn support(&self) -> usize {
        self.start_dates.len()
    }
}

/// Mining output.
#[derive(Clone, Debug)]
pub struct PathMiningResult {
    /// Frequent patterns, highest support first.
    pub patterns: Vec<PathPattern>,
    /// True if enumeration hit [`PathConfig::max_instances`].
    pub truncated: bool,
}

/// Mines frequent time-respecting routes.
pub fn frequent_paths(txns: &[Transaction], cfg: &PathConfig) -> PathMiningResult {
    assert!(cfg.max_len >= 2, "paths need at least two legs");
    assert!(cfg.min_sep <= cfg.max_sep, "separation window inverted");
    // Index shipments by origin, sorted by pickup date for windowed scans.
    let mut by_origin: HashMap<LatLon, Vec<&Transaction>> = HashMap::new();
    for t in txns {
        by_origin.entry(t.origin).or_default().push(t);
    }
    for list in by_origin.values_mut() {
        list.sort_by_key(|t| t.req_pickup);
    }

    // Accumulator: location sequence -> (distinct start dates, count).
    let mut acc: HashMap<Vec<LatLon>, (Vec<Date>, usize)> = HashMap::new();
    let mut budget = cfg.max_instances;
    let mut truncated = false;

    // DFS over time-respecting continuations.
    fn extend<'a>(
        current: &mut Vec<&'a Transaction>,
        by_origin: &HashMap<LatLon, Vec<&'a Transaction>>,
        cfg: &PathConfig,
        acc: &mut HashMap<Vec<LatLon>, (Vec<Date>, usize)>,
        budget: &mut usize,
        truncated: &mut bool,
    ) {
        if *budget == 0 {
            *truncated = true;
            return;
        }
        let last = current.last().unwrap();
        if current.len() >= 2 {
            *budget -= 1;
            let mut locs: Vec<LatLon> = current.iter().map(|t| t.origin).collect();
            locs.push(last.dest);
            let entry = acc.entry(locs).or_default();
            let start = current[0].req_pickup;
            if !entry.0.contains(&start) {
                entry.0.push(start);
            }
            entry.1 += 1;
        }
        if current.len() >= cfg.max_len {
            return;
        }
        let Some(nexts) = by_origin.get(&last.dest) else {
            return;
        };
        let lo = last.req_delivery.day() as i64 + cfg.min_sep;
        let hi = last.req_delivery.day() as i64 + cfg.max_sep;
        // Binary search to the window start, then scan.
        let start_idx = nexts.partition_point(|t| (t.req_pickup.day() as i64) < lo);
        for &t in &nexts[start_idx..] {
            if t.req_pickup.day() as i64 > hi {
                break;
            }
            if current.iter().any(|c| c.id == t.id) {
                continue; // a truck cannot reuse the same shipment
            }
            current.push(t);
            extend(current, by_origin, cfg, acc, budget, truncated);
            current.pop();
        }
    }

    for t in txns {
        let mut current = vec![t];
        extend(
            &mut current,
            &by_origin,
            cfg,
            &mut acc,
            &mut budget,
            &mut truncated,
        );
    }

    let mut patterns: Vec<PathPattern> = acc
        .into_iter()
        .filter(|(_, (starts, _))| starts.len() >= cfg.min_occurrences)
        .map(|(locations, (mut start_dates, instances))| {
            start_dates.sort_unstable();
            let is_cycle = locations.first() == locations.last();
            PathPattern {
                locations,
                start_dates,
                instances,
                is_cycle,
            }
        })
        .collect();
    // Route tie-break keeps the ordering independent of hash-map
    // iteration order.
    patterns.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then(b.legs().cmp(&a.legs()))
            .then_with(|| a.locations.cmp(&b.locations))
    });
    PathMiningResult {
        patterns,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::TransMode;

    fn txn(id: u64, day: u32, o: (f64, f64), d: (f64, f64)) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(day),
            req_delivery: Date(day + 1),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 100.0,
            gross_weight: 20_000.0,
            transit_hours: 10.0,
            mode: TransMode::Truckload,
        }
    }

    const A: (f64, f64) = (44.5, -88.0);
    const B: (f64, f64) = (41.9, -87.6);
    const C: (f64, f64) = (39.1, -84.5);

    /// A->B then B->C within the lag window, repeated weekly.
    fn weekly_route(weeks: u32) -> Vec<Transaction> {
        let mut txns = Vec::new();
        let mut id = 0;
        for w in 0..weeks {
            let d0 = w * 7;
            txns.push(txn(id, d0, A, B));
            id += 1;
            txns.push(txn(id, d0 + 2, B, C)); // pickup 1 day after delivery
            id += 1;
        }
        txns
    }

    #[test]
    fn repeated_route_found() {
        let txns = weekly_route(4);
        let out = frequent_paths(&txns, &PathConfig::default());
        assert!(!out.truncated);
        let route = out
            .patterns
            .iter()
            .find(|p| p.legs() == 2)
            .expect("A->B->C route");
        assert_eq!(route.support(), 4);
        assert_eq!(route.instances, 4);
        assert_eq!(route.locations[0], LatLon::new(A.0, A.1));
        assert_eq!(route.locations[2], LatLon::new(C.0, C.1));
        assert!(!route.is_cycle);
    }

    #[test]
    fn separation_window_enforced() {
        // Second leg picks up 10 days after delivery: outside max_sep 3.
        let mut txns = Vec::new();
        for w in 0..4u32 {
            txns.push(txn(w as u64 * 2, w * 20, A, B));
            txns.push(txn(w as u64 * 2 + 1, w * 20 + 11, B, C));
        }
        let out = frequent_paths(&txns, &PathConfig::default());
        assert!(out.patterns.iter().all(|p| p.legs() < 2));
        // Widening the window finds it.
        let wide = frequent_paths(
            &txns,
            &PathConfig {
                max_sep: 12,
                ..Default::default()
            },
        );
        assert!(wide.patterns.iter().any(|p| p.legs() == 2));
    }

    #[test]
    fn min_sep_excludes_close_chains() {
        let txns = weekly_route(4);
        // Window [delivery+3, delivery+4]: this week's B->C departs 1 day
        // after delivery (too soon) and next week's departs 8 days after
        // (too late) — no 2-leg pattern survives.
        let out = frequent_paths(
            &txns,
            &PathConfig {
                min_sep: 3,
                max_sep: 4,
                ..Default::default()
            },
        );
        assert!(out.patterns.iter().all(|p| p.legs() < 2));
    }

    #[test]
    fn cycles_flagged() {
        // A->B->A weekly: "a cycle ... exists over a space of a week".
        let mut txns = Vec::new();
        let mut id = 0;
        for w in 0..4u32 {
            txns.push(txn(id, w * 7, A, B));
            id += 1;
            txns.push(txn(id, w * 7 + 2, B, A));
            id += 1;
        }
        let out = frequent_paths(&txns, &PathConfig::default());
        let cycle = out
            .patterns
            .iter()
            .find(|p| p.is_cycle)
            .expect("weekly A->B->A cycle");
        assert_eq!(cycle.legs(), 2);
        assert_eq!(cycle.support(), 4);
    }

    #[test]
    fn instance_budget_reports_truncation() {
        let txns = weekly_route(6);
        let out = frequent_paths(
            &txns,
            &PathConfig {
                max_instances: 2,
                min_occurrences: 1,
                ..Default::default()
            },
        );
        assert!(out.truncated);
    }

    #[test]
    fn empty_input() {
        let out = frequent_paths(&[], &PathConfig::default());
        assert!(out.patterns.is_empty());
        assert!(!out.truncated);
    }
}
