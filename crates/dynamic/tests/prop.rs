//! Property tests for dynamic-graph mining: every reported route pattern
//! must be realizable by an actual time-respecting instance, periodic
//! lanes must honour their thresholds, and event injection must be
//! conservative (only slows, never loses shipments).

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_data::binning::BinScheme;
use tnet_data::model::{Date, LatLon, TransMode, Transaction};
use tnet_dynamic::events::{inject_event, pattern_fallout, Event, EventKind};
use tnet_dynamic::paths::{frequent_paths, PathConfig};
use tnet_dynamic::periodic::{periodic_lanes, PeriodicConfig};

/// Strategy: a small random transaction set over a handful of locations.
fn raw_txns() -> impl Strategy<Value = Vec<(usize, usize, u32, u32)>> {
    // (origin idx, dest idx, pickup day, duration days)
    proptest::collection::vec((0usize..6, 0usize..6, 0u32..60, 0u32..4), 1..60)
}

fn locations() -> Vec<LatLon> {
    vec![
        LatLon::new(44.5, -88.0),
        LatLon::new(41.9, -87.6),
        LatLon::new(39.1, -84.5),
        LatLon::new(33.7, -84.4),
        LatLon::new(29.8, -95.4),
        LatLon::new(40.7, -74.0),
    ]
}

fn build(raw: &[(usize, usize, u32, u32)]) -> Vec<Transaction> {
    let locs = locations();
    raw.iter()
        .enumerate()
        .filter(|(_, &(o, d, _, _))| o != d)
        .map(|(i, &(o, d, day, dur))| Transaction {
            id: i as u64 + 1,
            req_pickup: Date(day),
            req_delivery: Date(day + dur),
            origin: locs[o],
            dest: locs[d],
            total_distance: 100.0 + (o * 7 + d) as f64 * 50.0,
            gross_weight: 20_000.0,
            transit_hours: 10.0 + dur as f64 * 24.0,
            mode: TransMode::Truckload,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every frequent route's location sequence is chainable: consecutive
    /// stops are linked by some transaction pair satisfying the lag
    /// window (existence re-verified from raw data).
    #[test]
    fn route_patterns_are_realizable(raw in raw_txns()) {
        let txns = build(&raw);
        prop_assume!(!txns.is_empty());
        let cfg = PathConfig {
            min_sep: 0,
            max_sep: 5,
            max_len: 2,
            min_occurrences: 1,
            max_instances: 100_000,
        };
        let out = frequent_paths(&txns, &cfg);
        for p in &out.patterns {
            prop_assert!(p.legs() >= 2);
            prop_assert!(p.support() >= 1);
            prop_assert!(p.instances >= p.support());
            // Re-verify one chainable instance exists.
            let mut found = false;
            for a in &txns {
                if a.origin != p.locations[0] || a.dest != p.locations[1] {
                    continue;
                }
                for b in &txns {
                    if b.id == a.id || b.origin != p.locations[1] || b.dest != p.locations[2] {
                        continue;
                    }
                    let lag = b.req_pickup.days_since(a.req_delivery);
                    if (cfg.min_sep..=cfg.max_sep).contains(&lag) {
                        found = true;
                        break;
                    }
                }
                if found {
                    break;
                }
            }
            prop_assert!(found, "unrealizable pattern {:?}", p.locations);
            prop_assert_eq!(p.is_cycle, p.locations.first() == p.locations.last());
        }
    }

    /// Periodic lanes meet their occurrence and regularity thresholds
    /// when re-checked against the raw shipment dates.
    #[test]
    fn periodic_lanes_verified(raw in raw_txns()) {
        let txns = build(&raw);
        prop_assume!(!txns.is_empty());
        let cfg = PeriodicConfig {
            min_occurrences: 3,
            tolerance: 1,
            min_regularity: 0.5,
            min_period: 2,
        };
        for lane in periodic_lanes(&txns, &cfg) {
            let mut days: Vec<u32> = txns
                .iter()
                .filter(|t| t.origin == lane.origin && t.dest == lane.dest)
                .map(|t| t.req_pickup.day())
                .collect();
            days.sort_unstable();
            days.dedup();
            prop_assert_eq!(days.len(), lane.occurrences);
            prop_assert!(lane.occurrences >= cfg.min_occurrences);
            let gaps: Vec<u32> = days.windows(2).map(|w| w[1] - w[0]).collect();
            let matching = gaps
                .iter()
                .filter(|&&g| g.abs_diff(lane.period_days) <= cfg.tolerance)
                .count();
            let reg = matching as f64 / gaps.len() as f64;
            prop_assert!((reg - lane.regularity).abs() < 1e-9);
            prop_assert!(lane.regularity >= cfg.min_regularity);
            prop_assert!(lane.period_days >= cfg.min_period);
        }
    }

    /// Event injection: same shipment count, transit never decreases,
    /// delivery never precedes pickup, and fallout accounting matches.
    #[test]
    fn events_are_conservative(raw in raw_txns(), radius in 100.0f64..2000.0) {
        let txns = build(&raw);
        prop_assume!(!txns.is_empty());
        let event = Event {
            kind: EventKind::WeatherDelay { slow_factor: 1.7 },
            center: LatLon::new(41.0, -88.0),
            radius_miles: radius,
            from: Date(10),
            to: Date(40),
        };
        let (after, affected) = inject_event(&txns, &event);
        prop_assert_eq!(after.len(), txns.len());
        let mut changed = 0;
        for (b, a) in txns.iter().zip(&after) {
            prop_assert!(a.transit_hours >= b.transit_hours - 1e-9);
            prop_assert!(a.req_delivery >= a.req_pickup);
            prop_assert_eq!(a.id, b.id);
            if (a.transit_hours - b.transit_hours).abs() > 1e-9 {
                changed += 1;
            }
        }
        prop_assert_eq!(changed, affected);
        let report = pattern_fallout(&txns, &after, &BinScheme::paper_defaults());
        prop_assert_eq!(report.affected_transactions, affected);
        // Bin-shift bookkeeping conserves mass.
        let gained: isize = report
            .shifted_bins
            .iter()
            .map(|s| s.after as isize - s.before as isize)
            .sum();
        prop_assert_eq!(gained, 0, "bin shifts must conserve shipments");
    }
}
