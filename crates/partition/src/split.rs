//! Algorithm 2: breadth-first / depth-first single-graph partitioning.
//!
//! "The key idea ... we obtain a sub-graph by randomly choosing a starting
//! vertex in the graph G. All edges from that node are added to the
//! sub-graph, along with the endpoint vertices. One of the endpoint
//! vertices is chosen as the next starting vertex, and the process is
//! repeated" — with a queue (breadth-first) or a stack (depth-first) as
//! the ordering structure. Selected edges are marked removed in a
//! deleted-edge overlay over a frozen snapshot so the produced
//! transactions are edge-disjoint ("we should get almost mutually
//! exclusive sub-graphs") without cloning the graph per split.
//!
//! The per-transaction edge budget follows the pseudocode
//! (`edges = |E| / (k − transactions)` with `|E|` the *remaining* edge
//! count), implemented as `remaining / (k − t + 1)` for 1-based `t` so the
//! divisor runs k, k−1, …, 1 and the final transaction absorbs the
//! remainder. Because disconnected regions can exhaust a walk early, the
//! loop keeps producing transactions past `k` until no edges remain, so
//! partition counts can slightly exceed `k` — exactly the "some smaller
//! and larger partitions" caveat in the paper.

use std::collections::VecDeque;
use tnet_graph::frozen::FrozenGraph;
use tnet_graph::graph::{EdgeId, Graph, VertexId};
use tnet_graph::rng::{Rng, SliceRandom};
use tnet_graph::view::{self, GraphView};

/// The ordering structure `q` of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Queue ordering — grows bushy transactions, preserving
    /// high-out-degree (hub-like) patterns.
    BreadthFirst,
    /// Stack ordering — grows deep transactions, preserving long chains.
    DepthFirst,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::BreadthFirst => "breadth-first",
            Strategy::DepthFirst => "depth-first",
        }
    }
}

/// Queue-or-stack frontier.
struct Frontier {
    strategy: Strategy,
    items: VecDeque<VertexId>,
}

impl Frontier {
    fn new(strategy: Strategy) -> Self {
        Frontier {
            strategy,
            items: VecDeque::new(),
        }
    }

    fn push(&mut self, v: VertexId) {
        self.items.push_back(v);
    }

    fn pop(&mut self) -> Option<VertexId> {
        match self.strategy {
            Strategy::BreadthFirst => self.items.pop_front(),
            Strategy::DepthFirst => self.items.pop_back(),
        }
    }

    fn clear(&mut self) {
        self.items.clear();
    }
}

/// Deleted-edge overlay over an immutable [`FrozenGraph`] snapshot: the
/// walk "removes" edges by flipping bits here instead of tombstoning a
/// full working clone of the graph — one bitset and one degree vector per
/// `split_frozen` call, shared-nothing against the snapshot itself.
struct Peel<'a> {
    fg: &'a FrozenGraph,
    /// Edges already pulled into a transaction.
    removed: Vec<bool>,
    /// Live incident adjacency entries per vertex (out row + in row, so a
    /// self-loop counts twice). Zero means the vertex is exhausted —
    /// exactly the vertices the arena walk dropped via `remove_orphans`.
    live: Vec<u32>,
    /// Live edges left in the overlay.
    remaining: usize,
}

impl<'a> Peel<'a> {
    fn new(fg: &'a FrozenGraph) -> Peel<'a> {
        let live = fg
            .vertices()
            .map(|v| (fg.out_degree(v) + fg.in_degree(v)) as u32)
            .collect();
        Peel {
            fg,
            removed: vec![false; fg.edge_count()],
            live,
            remaining: fg.edge_count(),
        }
    }

    /// First live incident edge of `v` in out-then-in ascending-id order —
    /// the same order the arena's `incident_edges` yields, which keeps the
    /// walk (and therefore every produced transaction) identical.
    fn first_incident(&self, v: VertexId) -> Option<EdgeId> {
        self.fg
            .out_edges(v)
            .chain(self.fg.in_edges(v))
            .find(|&e| !self.removed[e.index()])
    }

    fn remove_edge(&mut self, e: EdgeId) {
        debug_assert!(!self.removed[e.index()]);
        self.removed[e.index()] = true;
        let (s, d, _) = self.fg.edge(e);
        self.live[s.index()] -= 1;
        self.live[d.index()] -= 1;
        self.remaining -= 1;
    }
}

/// Splits `g` into approximately `k` edge-disjoint graph transactions
/// using Algorithm 2. Freezes `g` once and delegates to [`split_frozen`];
/// callers that split the same graph repeatedly (Algorithm 1's
/// repetitions) should freeze once themselves and call [`split_frozen`]
/// per repetition.
///
/// # Panics
/// Panics if `k == 0`.
pub fn split_graph(g: &Graph, k: usize, strategy: Strategy, rng: &mut impl Rng) -> Vec<Graph> {
    split_frozen(&g.freeze(), k, strategy, rng)
}

/// Splits a frozen snapshot into approximately `k` edge-disjoint graph
/// transactions using Algorithm 2. The walk tracks deleted edges in a
/// [`Peel`] overlay (bitset + live-degree vector) instead of mutating a
/// working clone, so repeated splits of the same snapshot allocate only
/// the overlay. Transactions preserve vertex and edge labels; a vertex
/// incident to edges in several transactions appears in each (vertex
/// overlap is allowed, edge overlap is not).
///
/// For the same underlying graph, seed, and `k`, the produced transaction
/// graphs are identical to what the historical clone-and-tombstone walk
/// built: the overlay visits vertices and edges in the same order and
/// consumes the RNG identically.
///
/// # Panics
/// Panics if `k == 0`.
pub fn split_frozen(
    fg: &FrozenGraph,
    k: usize,
    strategy: Strategy,
    rng: &mut impl Rng,
) -> Vec<Graph> {
    assert!(k > 0, "need at least one partition");
    let mut work = Peel::new(fg);
    let mut out: Vec<Graph> = Vec::with_capacity(k);
    let mut t = 0usize;
    while work.remaining > 0 {
        t += 1;
        let divisor = k.saturating_sub(t) + 1;
        let budget = (work.remaining / divisor).max(1);
        let picked = grow_transaction(&mut work, budget, strategy, rng);
        if picked.is_empty() {
            break; // defensive: cannot happen while edges remain
        }
        let (sub, _) = view::edge_subgraph(fg, &picked);
        out.push(sub);
    }
    out
}

/// Grows one transaction: returns the edge ids pulled out of the overlay
/// (marked removed as a side effect).
fn grow_transaction(
    work: &mut Peel<'_>,
    budget: usize,
    strategy: Strategy,
    rng: &mut impl Rng,
) -> Vec<EdgeId> {
    let mut picked: Vec<EdgeId> = Vec::with_capacity(budget);
    let mut frontier = Frontier::new(strategy);
    // Random starting vertex among those with edges.
    let candidates: Vec<VertexId> = work
        .fg
        .vertices()
        .filter(|&v| work.live[v.index()] > 0)
        .collect();
    let Some(&start) = candidates.choose(rng) else {
        return picked;
    };
    frontier.push(start);
    while picked.len() < budget {
        let Some(v) = frontier.pop() else { break };
        // "while edges > 0 and v has edges remaining": drain v's incident
        // edges into the transaction, queueing the far endpoints.
        loop {
            if picked.len() >= budget {
                break;
            }
            let Some(e) = work.first_incident(v) else {
                break;
            };
            let (s, d, _) = work.fg.edge(e);
            picked.push(e);
            work.remove_edge(e);
            let other = if s == v { d } else { s };
            if other != v {
                frontier.push(other);
            }
        }
    }
    frontier.clear();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::{random_graph, shapes, RandomGraphConfig};
    use tnet_graph::graph::{ELabel, VLabel};
    use tnet_graph::iso::has_embedding;
    use tnet_graph::rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn partitions_cover_all_edges_exactly_once() {
        let cfg = RandomGraphConfig {
            vertices: 40,
            edges: 120,
            vertex_labels: 1,
            edge_labels: 4,
            self_loops: false,
        };
        let g = random_graph(&cfg, 3);
        for strategy in [Strategy::BreadthFirst, Strategy::DepthFirst] {
            let parts = split_graph(&g, 6, strategy, &mut rng());
            let total: usize = parts.iter().map(|p| p.edge_count()).sum();
            assert_eq!(total, g.edge_count(), "{strategy:?} lost or duped edges");
            assert!(
                parts.len() >= 6 || total < 6,
                "{strategy:?} under-partitioned"
            );
        }
    }

    #[test]
    fn partition_edge_multiset_matches() {
        // Label multiset across partitions equals the original.
        let cfg = RandomGraphConfig {
            vertices: 25,
            edges: 60,
            vertex_labels: 2,
            edge_labels: 3,
            ..Default::default()
        };
        let g = random_graph(&cfg, 9);
        let mut orig: Vec<(u32, u32, u32)> = g
            .edges()
            .map(|e| {
                let (s, d, l) = g.edge(e);
                (g.vertex_label(s).0, l.0, g.vertex_label(d).0)
            })
            .collect();
        orig.sort_unstable();
        let parts = split_graph(&g, 5, Strategy::DepthFirst, &mut rng());
        let mut got: Vec<(u32, u32, u32)> = parts
            .iter()
            .flat_map(|p| {
                p.edges().map(move |e| {
                    let (s, d, l) = p.edge(e);
                    (p.vertex_label(s).0, l.0, p.vertex_label(d).0)
                })
            })
            .collect();
        got.sort_unstable();
        assert_eq!(orig, got);
    }

    #[test]
    fn no_orphan_vertices_in_partitions() {
        let g = random_graph(
            &RandomGraphConfig {
                vertices: 30,
                edges: 50,
                ..Default::default()
            },
            4,
        );
        for p in split_graph(&g, 4, Strategy::BreadthFirst, &mut rng()) {
            for v in p.vertices() {
                assert!(p.incident_edges(v).next().is_some(), "orphan vertex");
            }
        }
    }

    #[test]
    fn k_one_returns_whole_graph() {
        let g = shapes::cycle(6, 0, 1);
        let parts = split_graph(&g, 1, Strategy::DepthFirst, &mut rng());
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].edge_count(), 6);
        assert_eq!(parts[0].vertex_count(), 6);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = Graph::new();
        assert!(split_graph(&g, 3, Strategy::BreadthFirst, &mut rng()).is_empty());
    }

    #[test]
    fn bf_keeps_hub_intact_when_budget_allows() {
        // A single hub with 8 spokes, k=1: BF from any start reaches the
        // hub and drains all spokes into one transaction.
        let g = shapes::hub_and_spoke(8, 0, 1);
        let parts = split_graph(&g, 1, Strategy::BreadthFirst, &mut rng());
        assert_eq!(parts.len(), 1);
        let hub = shapes::hub_and_spoke(8, 0, 1);
        assert!(has_embedding(&hub, &parts[0]));
    }

    #[test]
    fn df_keeps_chain_intact_when_budget_allows() {
        let g = shapes::chain(10, 0, 1);
        let parts = split_graph(&g, 1, Strategy::DepthFirst, &mut rng());
        assert_eq!(parts.len(), 1);
        assert!(has_embedding(&shapes::chain(10, 0, 1), &parts[0]));
    }

    #[test]
    fn deterministic_given_rng() {
        let g = random_graph(
            &RandomGraphConfig {
                vertices: 20,
                edges: 45,
                ..Default::default()
            },
            8,
        );
        let a = split_graph(&g, 4, Strategy::BreadthFirst, &mut StdRng::seed_from_u64(5));
        let b = split_graph(&g, 4, Strategy::BreadthFirst, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.edge_count(), y.edge_count());
        }
    }

    #[test]
    fn self_loops_are_partitioned() {
        let mut g = Graph::new();
        let a = g.add_vertex(VLabel(0));
        let b = g.add_vertex(VLabel(0));
        g.add_edge(a, a, ELabel(0));
        g.add_edge(a, b, ELabel(1));
        let parts = split_graph(&g, 1, Strategy::DepthFirst, &mut rng());
        let total: usize = parts.iter().map(|p| p.edge_count()).sum();
        assert_eq!(total, 2);
    }
}
