//! Transaction-set summaries — the exact row layout of Tables 2 and 3.

use tnet_graph::graph::Graph;
use tnet_graph::hash::FxHashSet;

/// Summary of a set of graph transactions, with every field Table 2 /
/// Table 3 reports plus the paper's size histogram buckets.
#[derive(Clone, Debug, PartialEq)]
pub struct TransactionSetSummary {
    pub transactions: usize,
    pub distinct_edge_labels: usize,
    pub distinct_vertex_labels: usize,
    pub avg_edges: f64,
    pub avg_vertices: f64,
    pub max_edges: usize,
    pub max_vertices: usize,
    /// Counts of transactions whose edge count falls in the paper's
    /// buckets: [1,10), [10,100), [100,1000), [1000,2000), [2000,5000),
    /// and >= 5000 (the paper's data never reaches the last bucket).
    pub size_histogram: [usize; 6],
}

/// Bucket boundaries used by [`summarize_set`] (upper-exclusive).
pub const SIZE_BUCKETS: [(usize, usize); 6] = [
    (1, 10),
    (10, 100),
    (100, 1000),
    (1000, 2000),
    (2000, 5000),
    (5000, usize::MAX),
];

/// Computes a [`TransactionSetSummary`].
pub fn summarize_set(graphs: &[Graph]) -> TransactionSetSummary {
    let mut elabels: FxHashSet<u32> = FxHashSet::default();
    let mut vlabels: FxHashSet<u32> = FxHashSet::default();
    let mut esum = 0usize;
    let mut vsum = 0usize;
    let mut emax = 0usize;
    let mut vmax = 0usize;
    let mut hist = [0usize; 6];
    for g in graphs {
        for e in g.edges() {
            elabels.insert(g.edge_label(e).0);
        }
        for v in g.vertices() {
            vlabels.insert(g.vertex_label(v).0);
        }
        let ec = g.edge_count();
        esum += ec;
        vsum += g.vertex_count();
        emax = emax.max(ec);
        vmax = vmax.max(g.vertex_count());
        for (i, &(lo, hi)) in SIZE_BUCKETS.iter().enumerate() {
            if ec >= lo && ec < hi {
                hist[i] += 1;
                break;
            }
        }
    }
    let n = graphs.len().max(1) as f64;
    TransactionSetSummary {
        transactions: graphs.len(),
        distinct_edge_labels: elabels.len(),
        distinct_vertex_labels: vlabels.len(),
        avg_edges: esum as f64 / n,
        avg_vertices: vsum as f64 / n,
        max_edges: emax,
        max_vertices: vmax,
        size_histogram: hist,
    }
}

impl std::fmt::Display for TransactionSetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Number of Input Transactions: {}", self.transactions)?;
        writeln!(
            f,
            "Number of Distinct Edge Labels: {}",
            self.distinct_edge_labels
        )?;
        writeln!(
            f,
            "Number of Distinct Vertex Labels: {}",
            self.distinct_vertex_labels
        )?;
        writeln!(
            f,
            "Average Number of Edges In a Transaction: {:.0}",
            self.avg_edges
        )?;
        writeln!(
            f,
            "Average Number of Vertices In a Transaction: {:.0}",
            self.avg_vertices
        )?;
        writeln!(
            f,
            "Max Number of Edges In a Transaction: {}",
            self.max_edges
        )?;
        writeln!(
            f,
            "Max Number of Vertices In a Transaction: {}",
            self.max_vertices
        )?;
        for (i, &(lo, hi)) in SIZE_BUCKETS.iter().enumerate() {
            if hi == usize::MAX {
                if self.size_histogram[i] > 0 {
                    writeln!(
                        f,
                        "The Number of Graph Transactions with Size {lo}+: {}",
                        self.size_histogram[i]
                    )?;
                }
            } else {
                writeln!(
                    f,
                    "The Number of Graph Transactions with Size between {lo} to {hi}: {}",
                    self.size_histogram[i]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;

    #[test]
    fn summary_fields() {
        let graphs = vec![
            shapes::chain(2, 0, 1),          // 2 edges, 3 vertices
            shapes::hub_and_spoke(12, 1, 2), // 12 edges, 13 vertices
        ];
        let s = summarize_set(&graphs);
        assert_eq!(s.transactions, 2);
        assert_eq!(s.distinct_edge_labels, 2);
        assert_eq!(s.distinct_vertex_labels, 2);
        assert_eq!(s.avg_edges, 7.0);
        assert_eq!(s.avg_vertices, 8.0);
        assert_eq!(s.max_edges, 12);
        assert_eq!(s.max_vertices, 13);
        assert_eq!(s.size_histogram, [1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn histogram_buckets() {
        let graphs = vec![
            shapes::chain(1, 0, 0),
            shapes::chain(9, 0, 0),
            shapes::chain(10, 0, 0),
            shapes::chain(150, 0, 0),
        ];
        let s = summarize_set(&graphs);
        assert_eq!(s.size_histogram, [2, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn empty_set() {
        let s = summarize_set(&[]);
        assert_eq!(s.transactions, 0);
        assert_eq!(s.avg_edges, 0.0);
        assert_eq!(s.size_histogram, [0; 6]);
    }

    #[test]
    fn display_matches_paper_layout() {
        let graphs = vec![shapes::chain(2, 0, 1)];
        let txt = summarize_set(&graphs).to_string();
        assert!(txt.contains("Number of Input Transactions: 1"));
        assert!(txt.contains("Size between 1 to 10: 1"));
    }
}
