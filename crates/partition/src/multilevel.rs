//! Multilevel edge-cut partitioning (METIS-style).
//!
//! §5.2 of the paper: "Efficient graph partitioning algorithms are
//! available, e.g., METIS. However, in the experiment with FSG, we adopt
//! breadth / depth first partitioning strategies because they allow us
//! to control the type of patterns preserved after partitioning."
//!
//! This module implements the alternative the authors set aside, so the
//! trade-off can be measured (see the `partitioner_ablation` bench):
//! classic three-phase multilevel partitioning —
//!
//! 1. **Coarsening** by heavy-edge matching until the graph is small;
//! 2. **Initial partitioning** by balanced BFS region growing;
//! 3. **Uncoarsening with refinement**: greedy boundary moves that
//!    reduce the edge cut under a balance constraint.
//!
//! Unlike Algorithm 2, the result is a *vertex* partition; transactions
//! are the part-induced subgraphs and cut edges are attached to their
//! source's part so the edge multiset is conserved for mining.

use crate::split::Strategy;
use std::collections::VecDeque;
use tnet_graph::graph::{Graph, VertexId};
use tnet_graph::hash::FxHashMap;
use tnet_graph::rng::{Rng, SliceRandom};

/// A vertex partition of a graph.
#[derive(Clone, Debug)]
pub struct VertexPartition {
    /// Part id per vertex (indexed by `VertexId` arena order; dead slots
    /// hold `u32::MAX`).
    assignment: Vec<u32>,
    pub parts: usize,
}

impl VertexPartition {
    /// Part of a vertex.
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.assignment[v.index()]
    }

    /// Number of edges whose endpoints live in different parts.
    pub fn edge_cut(&self, g: &Graph) -> usize {
        g.edges()
            .filter(|&e| {
                let (s, d, _) = g.edge(e);
                self.part_of(s) != self.part_of(d)
            })
            .count()
    }

    /// Vertex counts per part.
    pub fn part_sizes(&self, g: &Graph) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for v in g.vertices() {
            sizes[self.part_of(v) as usize] += 1;
        }
        sizes
    }
}

/// Coarse-graph bookkeeping: which original vertices each coarse vertex
/// represents is implicit via the `fine_to_coarse` maps chained by the
/// recursion. Only *coarse* graphs are stored; the finest level is the
/// caller's graph, borrowed.
struct Level {
    /// The coarse graph produced at this step.
    graph: Graph,
    /// Vertex of the next-finer graph -> vertex of `graph`.
    to_coarser: FxHashMap<VertexId, VertexId>,
}

/// Multilevel partitioner configuration.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening at this many vertices.
    pub coarsen_until: usize,
    /// Allowed imbalance: max part size <= avg * (1 + epsilon).
    pub epsilon: f64,
    /// Boundary-refinement sweeps per uncoarsening step.
    pub refine_sweeps: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_until: 64,
            epsilon: 0.3,
            refine_sweeps: 4,
        }
    }
}

/// Partitions the vertices of `g` into `k` balanced parts minimizing the
/// edge cut (heuristically).
///
/// # Panics
/// Panics if `k == 0`.
pub fn multilevel_partition(
    g: &Graph,
    k: usize,
    cfg: &MultilevelConfig,
    rng: &mut impl Rng,
) -> VertexPartition {
    assert!(k > 0, "need at least one part");
    let n = g.vertices().count();
    if n == 0 {
        return VertexPartition {
            assignment: vec![u32::MAX; g_arena_len(g)],
            parts: k,
        };
    }
    // --- Phase 1: coarsen -------------------------------------------------
    // `levels[i]` holds the coarse graph of step i plus the map from the
    // next-finer graph (`levels[i-1].graph`, or `g` for i == 0) into it;
    // the finest level stays borrowed from the caller instead of cloned.
    let mut levels: Vec<Level> = Vec::new();
    loop {
        let current: &Graph = levels.last().map(|l| &l.graph).unwrap_or(g);
        if current.vertex_count() <= cfg.coarsen_until.max(k * 2) {
            break;
        }
        let (coarse, mapping) = coarsen_once(current, rng);
        if coarse.vertex_count() as f64 > current.vertex_count() as f64 * 0.95 {
            break; // matching stalled (e.g. star graphs)
        }
        levels.push(Level {
            graph: coarse,
            to_coarser: mapping,
        });
    }

    // --- Phase 2: initial partition on the coarsest graph ------------------
    let coarsest: &Graph = levels.last().map(|l| &l.graph).unwrap_or(g);
    let mut assignment = region_grow(coarsest, k, rng);
    refine(coarsest, &mut assignment, k, cfg);

    // --- Phase 3: uncoarsen + refine ---------------------------------------
    for i in (0..levels.len()).rev() {
        let fine: &Graph = if i == 0 { g } else { &levels[i - 1].graph };
        let to_coarser = &levels[i].to_coarser;
        let mut fine_assignment = vec![u32::MAX; g_arena_len(fine)];
        for v in fine.vertices() {
            let coarse = to_coarser[&v];
            fine_assignment[v.index()] = assignment[coarse.index()];
        }
        assignment = fine_assignment;
        refine(fine, &mut assignment, k, cfg);
    }

    VertexPartition {
        assignment,
        parts: k,
    }
}

fn g_arena_len(g: &Graph) -> usize {
    g.vertices().map(|v| v.index() + 1).max().unwrap_or(0)
}

/// One round of heavy-edge matching + contraction. Returns the coarse
/// graph and the fine→coarse vertex map. Edge weights are parallel-edge
/// counts (all labels pooled — partitioning only cares about topology).
fn coarsen_once(g: &Graph, rng: &mut impl Rng) -> (Graph, FxHashMap<VertexId, VertexId>) {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.shuffle(rng);
    let mut matched: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    for &v in &order {
        if matched.contains_key(&v) {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut weights: FxHashMap<VertexId, usize> = FxHashMap::default();
        for e in g.incident_edges(v) {
            let (s, d, _) = g.edge(e);
            let other = if s == v { d } else { s };
            if other != v && !matched.contains_key(&other) {
                *weights.entry(other).or_insert(0) += 1;
            }
        }
        match weights.into_iter().max_by_key(|&(u, w)| (w, u.0)) {
            Some((u, _)) => {
                matched.insert(v, u);
                matched.insert(u, v);
            }
            None => {
                matched.insert(v, v); // stays single
            }
        }
    }
    // Contract.
    let mut coarse = Graph::new();
    let mut mapping: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    for v in g.vertices() {
        if mapping.contains_key(&v) {
            continue;
        }
        let mate = matched[&v];
        let cv = coarse.add_vertex(g.vertex_label(v));
        mapping.insert(v, cv);
        if mate != v {
            mapping.insert(mate, cv);
        }
    }
    for e in g.edges() {
        let (s, d, l) = g.edge(e);
        let (cs, cd) = (mapping[&s], mapping[&d]);
        if cs != cd {
            coarse.add_edge(cs, cd, l);
        }
    }
    (coarse, mapping)
}

/// Balanced BFS region growing: k seeds, round-robin frontier expansion.
fn region_grow(g: &Graph, k: usize, rng: &mut impl Rng) -> Vec<u32> {
    let mut assignment = vec![u32::MAX; g_arena_len(g)];
    let vertices: Vec<VertexId> = g.vertices().collect();
    let mut seeds = vertices.clone();
    seeds.shuffle(rng);
    let mut queues: Vec<VecDeque<VertexId>> = (0..k).map(|_| VecDeque::new()).collect();
    for (part, &seed) in seeds.iter().take(k).enumerate() {
        queues[part].push_back(seed);
    }
    let mut remaining: usize = vertices.len();
    let mut seed_iter = seeds.into_iter();
    while remaining > 0 {
        let mut progressed = false;
        for (part, queue) in queues.iter_mut().enumerate() {
            let Some(v) = pop_unassigned(queue, &assignment) else {
                continue;
            };
            assignment[v.index()] = part as u32;
            remaining -= 1;
            progressed = true;
            for e in g.incident_edges(v) {
                let (s, d, _) = g.edge(e);
                let other = if s == v { d } else { s };
                if assignment[other.index()] == u32::MAX {
                    queue.push_back(other);
                }
            }
        }
        if !progressed {
            // Disconnected remainder: reseed the emptiest part.
            let Some(next) = seed_iter.find(|v| assignment[v.index()] == u32::MAX) else {
                // Fall back to scanning (seed list exhausted).
                if let Some(v) = g.vertices().find(|v| assignment[v.index()] == u32::MAX) {
                    queues[0].push_back(v);
                    continue;
                }
                break;
            };
            queues[0].push_back(next);
        }
    }
    assignment
}

fn pop_unassigned(q: &mut VecDeque<VertexId>, assignment: &[u32]) -> Option<VertexId> {
    while let Some(v) = q.pop_front() {
        if assignment[v.index()] == u32::MAX {
            return Some(v);
        }
    }
    None
}

/// Greedy boundary refinement: move a vertex to the neighbouring part
/// with the largest cut reduction, respecting the balance constraint.
fn refine(g: &Graph, assignment: &mut [u32], k: usize, cfg: &MultilevelConfig) {
    let n = g.vertex_count();
    if n == 0 {
        return;
    }
    let max_size = ((n as f64 / k as f64) * (1.0 + cfg.epsilon)).ceil() as usize;
    let mut sizes = vec![0usize; k];
    for v in g.vertices() {
        sizes[assignment[v.index()] as usize] += 1;
    }
    for _ in 0..cfg.refine_sweeps {
        let mut moved = 0usize;
        for v in g.vertices() {
            let home = assignment[v.index()] as usize;
            if sizes[home] <= 1 {
                continue;
            }
            // Connectivity to each part.
            let mut conn = vec![0isize; k];
            for e in g.incident_edges(v) {
                let (s, d, _) = g.edge(e);
                let other = if s == v { d } else { s };
                if other != v {
                    conn[assignment[other.index()] as usize] += 1;
                }
            }
            let (best_part, best_conn) = conn
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != home && sizes[p] < max_size)
                .max_by_key(|&(_, &c)| c)
                .map(|(p, &c)| (p, c))
                .unwrap_or((home, conn[home]));
            if best_part != home && best_conn > conn[home] {
                assignment[v.index()] = best_part as u32;
                sizes[home] -= 1;
                sizes[best_part] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    // Rebalance: oversized parts evacuate their least-connected vertices
    // into the smallest part until the balance constraint holds.
    while let Some(over) = (0..k).find(|&p| sizes[p] > max_size) {
        let under = (0..k).min_by_key(|&p| sizes[p]).unwrap();
        if under == over || sizes[under] >= max_size {
            break;
        }
        // Vertex in `over` with the fewest same-part neighbours.
        let victim = g
            .vertices()
            .filter(|&v| assignment[v.index()] as usize == over)
            .min_by_key(|&v| {
                g.incident_edges(v)
                    .filter(|&e| {
                        let (s, d, _) = g.edge(e);
                        let other = if s == v { d } else { s };
                        other != v && assignment[other.index()] as usize == over
                    })
                    .count()
            });
        let Some(victim) = victim else { break };
        assignment[victim.index()] = under as u32;
        sizes[over] -= 1;
        sizes[under] += 1;
    }
}

/// Converts a vertex partition into graph transactions for mining: each
/// part becomes one transaction; cut edges are attached to their source's
/// part (conserving the edge multiset, like Algorithm 2 does). Empty
/// parts are dropped.
pub fn split_by_partition(g: &Graph, partition: &VertexPartition) -> Vec<Graph> {
    let mut edge_buckets: Vec<Vec<tnet_graph::graph::EdgeId>> = vec![Vec::new(); partition.parts];
    for e in g.edges() {
        let (s, _, _) = g.edge(e);
        edge_buckets[partition.part_of(s) as usize].push(e);
    }
    edge_buckets
        .into_iter()
        .filter(|b| !b.is_empty())
        .map(|b| g.edge_subgraph(&b).0)
        .collect()
}

/// Drop-in alternative to [`crate::split::split_graph`] using multilevel
/// partitioning; provided so the ablation bench can swap strategies.
pub fn split_graph_multilevel(g: &Graph, k: usize, rng: &mut impl Rng) -> Vec<Graph> {
    let partition = multilevel_partition(g, k, &MultilevelConfig::default(), rng);
    split_by_partition(g, &partition)
}

/// Names the three partitioning strategies for reports.
pub fn strategy_label(bfdf: Option<Strategy>) -> &'static str {
    match bfdf {
        Some(s) => s.name(),
        None => "multilevel",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::{plant_patterns, random_graph, shapes, RandomGraphConfig};
    use tnet_graph::rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn partitions_every_vertex() {
        let g = random_graph(
            &RandomGraphConfig {
                vertices: 60,
                edges: 150,
                ..Default::default()
            },
            1,
        );
        let p = multilevel_partition(&g, 4, &MultilevelConfig::default(), &mut rng());
        for v in g.vertices() {
            assert!(p.part_of(v) < 4, "unassigned vertex");
        }
        let sizes = p.part_sizes(&g);
        assert_eq!(sizes.iter().sum::<usize>(), 60);
    }

    #[test]
    fn balance_respected_roughly() {
        let g = random_graph(
            &RandomGraphConfig {
                vertices: 80,
                edges: 200,
                ..Default::default()
            },
            2,
        );
        let cfg = MultilevelConfig::default();
        let p = multilevel_partition(&g, 4, &cfg, &mut rng());
        let sizes = p.part_sizes(&g);
        let max_allowed = ((80.0 / 4.0) * (1.0 + cfg.epsilon)).ceil() as usize + 1;
        for s in sizes {
            assert!(s <= max_allowed, "imbalanced part: {s} > {max_allowed}");
        }
    }

    #[test]
    fn cuts_cluster_structure_cleanly() {
        // Two dense clusters joined by one bridge: a 2-way partition
        // should cut few edges (ideally 1).
        let planted = plant_patterns(&[shapes::cycle(8, 0, 1)], 2, 0, 1, 3);
        let mut g = planted.graph;
        // Densify each cycle with chords.
        let vs: Vec<VertexId> = g.vertices().collect();
        for i in 0..8 {
            g.add_edge(vs[i], vs[(i + 2) % 8], tnet_graph::graph::ELabel(0));
            g.add_edge(vs[8 + i], vs[8 + (i + 2) % 8], tnet_graph::graph::ELabel(0));
        }
        // One bridge.
        g.add_edge(vs[0], vs[8], tnet_graph::graph::ELabel(0));
        let p = multilevel_partition(&g, 2, &MultilevelConfig::default(), &mut rng());
        // A greedy multilevel heuristic won't always find the single
        // bridge, but it must stay far below a random split's expected
        // cut (~half the 35 edges).
        assert!(
            p.edge_cut(&g) <= 8,
            "expected a small cut, got {}",
            p.edge_cut(&g)
        );
    }

    #[test]
    fn split_conserves_edges() {
        let g = random_graph(
            &RandomGraphConfig {
                vertices: 40,
                edges: 100,
                vertex_labels: 2,
                edge_labels: 3,
                ..Default::default()
            },
            7,
        );
        let parts = split_graph_multilevel(&g, 5, &mut rng());
        let total: usize = parts.iter().map(|p| p.edge_count()).sum();
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn single_part_is_whole_graph() {
        let g = shapes::cycle(6, 0, 1);
        let parts = split_graph_multilevel(&g, 1, &mut rng());
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].edge_count(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        let p = multilevel_partition(&g, 3, &MultilevelConfig::default(), &mut rng());
        assert_eq!(p.part_sizes(&g).iter().sum::<usize>(), 0);
        assert!(split_by_partition(&g, &p).is_empty());
    }

    #[test]
    fn disconnected_graph_fully_assigned() {
        let mut g = shapes::chain(3, 0, 1);
        // Add two isolated components.
        let a = g.add_vertex(tnet_graph::graph::VLabel(0));
        let b = g.add_vertex(tnet_graph::graph::VLabel(0));
        g.add_edge(a, b, tnet_graph::graph::ELabel(1));
        let p = multilevel_partition(&g, 2, &MultilevelConfig::default(), &mut rng());
        for v in g.vertices() {
            assert!(p.part_of(v) < 2);
        }
    }
}
