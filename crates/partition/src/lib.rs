//! # tnet-partition
//!
//! Partitioning strategies that turn a single transportation network
//! graph into graph-transaction sets mineable by FSG-style algorithms:
//!
//! * [`split`] — Algorithm 2: breadth-first / depth-first structural
//!   partitioning (§5.2.1);
//! * [`single_graph`] — Algorithm 1: repeated split-and-mine with
//!   iso-class union (§5.2);
//! * [`temporal`] — per-day active-edge partitioning with component
//!   splitting, edge dedup, and size filtering (§6);
//! * [`summary`] — transaction-set summaries in the exact shape of the
//!   paper's Tables 2 and 3;
//! * [`window`] — multi-granularity (hour/day/week) units and
//!   tumbling/sliding windows over them (ROADMAP item 3).

pub mod multilevel;
pub mod single_graph;
pub mod split;
pub mod summary;
pub mod temporal;
pub mod window;

pub use multilevel::{
    multilevel_partition, split_by_partition, split_graph_multilevel, MultilevelConfig,
    VertexPartition,
};
pub use single_graph::{mine_single_graph, SingleGraphPattern};
pub use split::{split_graph, Strategy};
pub use summary::{summarize_set, TransactionSetSummary};
pub use temporal::{
    daily_graphs, filter_by_vertex_labels, temporal_partition, TemporalError, TemporalOptions,
};
pub use window::{unit_partition, Granularity, UnitPartition, WindowSpec};
