//! §6 temporal partitioning: one graph transaction per day.
//!
//! "we partitioned each graph into a set of graph transactions based on
//! date. Each graph represented all active OD pairs on that date" — a
//! transaction is active on day `d` when `pickup <= d <= delivery`.
//! Vertices carry unique per-location labels; edges carry gross-weight
//! bins. The §6 pipeline then:
//!
//! 1. splits disconnected daily graphs into connected components,
//! 2. removes duplicate edges (FSG operates on simple graphs),
//! 3. drops single-edge transactions ("not producing interesting
//!    patterns").

use std::collections::HashMap;
use tnet_data::binning::BinScheme;
use tnet_data::model::{LatLon, Transaction};
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::traverse::split_components;

/// Largest pickup-to-delivery span (in days) the bucketing pipeline will
/// allocate for. One corrupted far-future delivery date would otherwise
/// allocate a bucket per day of the gap; ~10 years comfortably covers any
/// real shipment ledger.
pub const MAX_SPAN_DAYS: u64 = 3_700;

/// Ingest-time validation failure for the temporal pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemporalError {
    /// A transaction's requested delivery precedes its requested pickup.
    /// Bucketing such a set used to underflow `last.day() - first.day()`
    /// in unsigned arithmetic (debug panic / absurd allocation in
    /// release).
    InvertedDates { id: u64, pickup: u32, delivery: u32 },
    /// The pickup-to-delivery span of the set exceeds [`MAX_SPAN_DAYS`]
    /// — almost certainly a corrupted date, and allocating one bucket
    /// per day of the gap would dominate memory.
    SpanTooLarge { days: u64, cap: u64 },
    /// A window specification was degenerate (zero width or slide).
    BadWindow { width: usize, slide: usize },
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::InvertedDates {
                id,
                pickup,
                delivery,
            } => write!(
                f,
                "transaction {id}: delivery day {delivery} precedes pickup day {pickup}"
            ),
            TemporalError::SpanTooLarge { days, cap } => write!(
                f,
                "transaction set spans {days} days, over the {cap}-day bucketing cap"
            ),
            TemporalError::BadWindow { width, slide } => write!(
                f,
                "window width {width} / slide {slide} must both be at least 1"
            ),
        }
    }
}

impl std::error::Error for TemporalError {}

/// Validates every transaction's date pair and the overall span before
/// any per-day (or per-unit) bucket allocation. Returns the day span.
pub(crate) fn validate_dates(txns: &[Transaction]) -> Result<u64, TemporalError> {
    let mut first = u32::MAX;
    let mut last = 0u32;
    for t in txns {
        if t.req_delivery.day() < t.req_pickup.day() {
            return Err(TemporalError::InvertedDates {
                id: t.id,
                pickup: t.req_pickup.day(),
                delivery: t.req_delivery.day(),
            });
        }
        first = first.min(t.req_pickup.day());
        last = last.max(t.req_delivery.day());
    }
    if txns.is_empty() {
        return Ok(0);
    }
    let days = (last - first) as u64 + 1;
    if days > MAX_SPAN_DAYS {
        return Err(TemporalError::SpanTooLarge {
            days,
            cap: MAX_SPAN_DAYS,
        });
    }
    Ok(days)
}

/// Options for the §6 pipeline.
#[derive(Clone, Debug)]
pub struct TemporalOptions {
    /// Split each daily graph into weakly connected components.
    pub split_components: bool,
    /// Remove duplicate `(src, dst, label)` edges within a transaction.
    pub dedup_edges: bool,
    /// Drop transactions with fewer than this many edges (the paper drops
    /// single-edge transactions, i.e. `min_edges = 2`).
    pub min_edges: usize,
}

impl Default for TemporalOptions {
    fn default() -> Self {
        TemporalOptions {
            split_components: true,
            dedup_edges: true,
            min_edges: 2,
        }
    }
}

/// The per-day graph transactions before the component/dedup pipeline —
/// what Table 2 summarizes.
///
/// # Errors
/// [`TemporalError::InvertedDates`] when any transaction's delivery
/// precedes its pickup; [`TemporalError::SpanTooLarge`] when the set
/// spans more than [`MAX_SPAN_DAYS`] days.
pub fn daily_graphs(txns: &[Transaction], scheme: &BinScheme) -> Result<Vec<Graph>, TemporalError> {
    let span = validate_dates(txns)? as usize;
    if txns.is_empty() {
        return Ok(Vec::new());
    }
    // Global location -> label mapping so "the same edge ... may appear in
    // several graph transactions" with identical labels across days.
    let mut loc_label: HashMap<LatLon, u32> = HashMap::new();
    let mut next = 0u32;
    let mut label_of = |loc: LatLon| -> u32 {
        *loc_label.entry(loc).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        })
    };
    let first = txns.iter().map(|t| t.req_pickup).min().unwrap();

    // Bucket transactions by active day to avoid a full scan per day.
    // `validate_dates` already bounded the span and rejected inverted
    // pairs, so the subtraction below cannot underflow.
    let mut by_day: Vec<Vec<&Transaction>> = vec![Vec::new(); span];
    for t in txns {
        for d in t.req_pickup.day()..=t.req_delivery.day() {
            by_day[(d - first.day()) as usize].push(t);
        }
    }

    let mut out = Vec::with_capacity(span);
    for day_txns in &by_day {
        let mut g = Graph::new();
        let mut vertex_of: HashMap<LatLon, VertexId> = HashMap::new();
        for t in day_txns {
            for loc in [t.origin, t.dest] {
                vertex_of
                    .entry(loc)
                    .or_insert_with(|| g.add_vertex(VLabel(label_of(loc))));
            }
            g.add_edge(
                vertex_of[&t.origin],
                vertex_of[&t.dest],
                ELabel(scheme.weight.bin(t.gross_weight)),
            );
        }
        if g.edge_count() > 0 {
            out.push(g);
        }
    }
    Ok(out)
}

/// Applies the post-bucketing §6 pipeline stages to a batch of graphs:
/// component split → edge dedup → minimum-size filter.
pub(crate) fn refine_graphs(mut graphs: Vec<Graph>, opts: &TemporalOptions) -> Vec<Graph> {
    if opts.split_components {
        graphs = graphs.iter().flat_map(split_components).collect();
    }
    if opts.dedup_edges {
        for g in &mut graphs {
            g.dedup_edges();
        }
    }
    graphs.retain(|g| g.edge_count() >= opts.min_edges);
    graphs
}

/// Runs the full §6 pipeline: daily graphs → component split → edge dedup
/// → minimum-size filter. Returns the FSG-ready transaction set.
///
/// # Errors
/// As [`daily_graphs`].
pub fn temporal_partition(
    txns: &[Transaction],
    scheme: &BinScheme,
    opts: &TemporalOptions,
) -> Result<Vec<Graph>, TemporalError> {
    Ok(refine_graphs(daily_graphs(txns, scheme)?, opts))
}

/// Keeps only transactions whose distinct-vertex-label count is below
/// `limit` — the paper's workaround for FSG's memory exhaustion ("when we
/// limited the data to dates with fewer than 200 distinct vertex labels").
pub fn filter_by_vertex_labels(graphs: Vec<Graph>, limit: usize) -> Vec<Graph> {
    graphs
        .into_iter()
        .filter(|g| g.vertex_label_histogram().len() < limit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::{Date, TransMode};

    fn txn(
        id: u64,
        o: (f64, f64),
        d: (f64, f64),
        pickup: u32,
        delivery: u32,
        w: f64,
    ) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(pickup),
            req_delivery: Date(delivery),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 150.0,
            gross_weight: w,
            transit_hours: 12.0,
            mode: TransMode::Truckload,
        }
    }

    const A: (f64, f64) = (44.5, -88.0);
    const B: (f64, f64) = (41.9, -87.6);
    const C: (f64, f64) = (39.1, -84.5);
    const D: (f64, f64) = (33.7, -84.4);
    const E: (f64, f64) = (29.8, -95.4);

    #[test]
    fn active_window_spans_days() {
        // One shipment active days 2..=4 appears in three daily graphs.
        let txns = vec![txn(1, A, B, 2, 4, 30_000.0)];
        let graphs = daily_graphs(&txns, &BinScheme::paper_defaults()).unwrap();
        assert_eq!(graphs.len(), 3);
        for g in &graphs {
            assert_eq!(g.edge_count(), 1);
            assert_eq!(g.vertex_count(), 2);
        }
    }

    #[test]
    fn location_labels_consistent_across_days() {
        let txns = vec![txn(1, A, B, 0, 0, 30_000.0), txn(2, A, C, 3, 3, 30_000.0)];
        let graphs = daily_graphs(&txns, &BinScheme::paper_defaults()).unwrap();
        assert_eq!(graphs.len(), 2);
        // A's label must be identical in both daily graphs.
        let label_a_day0 = {
            let g = &graphs[0];
            let e = g.edges().next().unwrap();
            g.vertex_label(g.edge_src(e))
        };
        let label_a_day3 = {
            let g = &graphs[1];
            let e = g.edges().next().unwrap();
            g.vertex_label(g.edge_src(e))
        };
        assert_eq!(label_a_day0, label_a_day3);
    }

    #[test]
    fn pipeline_splits_components_and_filters() {
        // Day 0: two disconnected 2-edge structures + one isolated edge.
        let txns = vec![
            txn(1, A, B, 0, 0, 30_000.0),
            txn(2, B, C, 0, 0, 30_000.0),
            txn(3, D, E, 0, 0, 30_000.0),
        ];
        let parts = temporal_partition(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default(),
        )
        .unwrap();
        // Component {A,B,C} has 2 edges (kept); component {D,E} has 1
        // edge (dropped).
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_removed() {
        // Two same-day same-pair same-bin shipments collapse to one edge;
        // a third edge keeps the transaction above min_edges.
        let txns = vec![
            txn(1, A, B, 0, 0, 30_000.0),
            txn(2, A, B, 0, 0, 31_000.0), // same weight bin
            txn(3, B, C, 0, 0, 30_000.0),
        ];
        let parts = temporal_partition(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default(),
        )
        .unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].edge_count(), 2);
    }

    #[test]
    fn different_bins_are_not_duplicates() {
        let txns = vec![
            txn(1, A, B, 0, 0, 30_000.0),
            txn(2, A, B, 0, 0, 800_000.0), // very heavy: different bin
        ];
        let parts = temporal_partition(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default(),
        )
        .unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].edge_count(), 2);
    }

    #[test]
    fn vertex_label_filter() {
        let txns = vec![
            txn(1, A, B, 0, 0, 30_000.0),
            txn(2, B, C, 0, 0, 30_000.0),
            txn(3, C, D, 1, 1, 30_000.0),
            txn(4, D, E, 1, 1, 30_000.0),
        ];
        let parts = temporal_partition(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default(),
        )
        .unwrap();
        assert_eq!(parts.len(), 2);
        let kept = filter_by_vertex_labels(parts, 3);
        assert!(kept.is_empty(), "both transactions have 3 distinct labels");
    }

    #[test]
    fn empty_input() {
        assert!(daily_graphs(&[], &BinScheme::paper_defaults())
            .unwrap()
            .is_empty());
        assert!(temporal_partition(
            &[],
            &BinScheme::paper_defaults(),
            &TemporalOptions::default()
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn inverted_dates_rejected() {
        // Every delivery precedes the first pickup: the old span
        // computation underflowed `last.day() - first.day()`.
        let txns = vec![
            txn(1, A, B, 10, 3, 30_000.0),
            txn(2, B, C, 12, 12, 30_000.0),
        ];
        let err = daily_graphs(&txns, &BinScheme::paper_defaults()).unwrap_err();
        assert_eq!(
            err,
            TemporalError::InvertedDates {
                id: 1,
                pickup: 10,
                delivery: 3
            }
        );
        assert!(temporal_partition(
            &txns,
            &BinScheme::paper_defaults(),
            &TemporalOptions::default()
        )
        .is_err());
    }

    #[test]
    fn far_future_delivery_capped() {
        // One corrupted delivery date used to allocate a bucket per day
        // of the gap; the span cap turns it into a typed error instead.
        let txns = vec![
            txn(1, A, B, 0, 1, 30_000.0),
            txn(2, B, C, 2, 2_000_000, 30_000.0),
        ];
        let err = daily_graphs(&txns, &BinScheme::paper_defaults()).unwrap_err();
        assert!(
            matches!(err, TemporalError::SpanTooLarge { days, cap }
                if days == 2_000_001 && cap == MAX_SPAN_DAYS),
            "{err:?}"
        );
    }
}
