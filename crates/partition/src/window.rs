//! Multi-granularity temporal windows (ROADMAP item 3).
//!
//! Generalizes the §6 "one graph transaction per day" partitioning to
//! hour/day/week **units** and tumbling/sliding **windows** over those
//! units, after Kosyfaki et al.'s multi-granularity spatio-temporal flow
//! patterns. A window is a contiguous run of units; because every unit's
//! FSG-ready transactions are materialized once in unit order, a window
//! is just a contiguous transaction range — which is what lets the
//! incremental mining session share one frozen CSR across windows.

use crate::temporal::{refine_graphs, validate_dates, TemporalError, TemporalOptions};
use std::collections::HashMap;
use tnet_data::binning::BinScheme;
use tnet_data::model::{LatLon, Transaction};
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};

/// Temporal resolution of one unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// In-transit hours: a shipment is active from the start of its
    /// pickup day for `ceil(transit_hours)` hours (at least one), capped
    /// at the end of its delivery day.
    Hour,
    /// The §6 semantics: active on every day `pickup <= d <= delivery`.
    Day,
    /// Calendar weeks of the day axis (`day / 7`).
    Week,
}

impl Granularity {
    /// Display name (also the `--granularity` CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Granularity::Hour => "hour",
            Granularity::Day => "day",
            Granularity::Week => "week",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Granularity> {
        match s {
            "hour" => Some(Granularity::Hour),
            "day" => Some(Granularity::Day),
            "week" => Some(Granularity::Week),
            _ => None,
        }
    }

    /// Inclusive active unit range of one (validated) transaction.
    pub fn active_units(&self, t: &Transaction) -> (u64, u64) {
        let (p, d) = (t.req_pickup.day() as u64, t.req_delivery.day() as u64);
        match self {
            Granularity::Day => (p, d),
            Granularity::Week => (p / 7, d / 7),
            Granularity::Hour => {
                let start = p * 24;
                let transit = (t.transit_hours.ceil().max(1.0)) as u64;
                (start, (start + transit - 1).min(d * 24 + 23))
            }
        }
    }
}

/// A tumbling or sliding window specification, in units of the chosen
/// granularity. `slide == width` tumbles; `slide < width` overlaps.
#[derive(Clone, Copy, Debug)]
pub struct WindowSpec {
    pub granularity: Granularity,
    /// Window width in units (>= 1).
    pub width: usize,
    /// Distance between consecutive window starts in units (>= 1).
    pub slide: usize,
}

impl WindowSpec {
    /// Builds a spec, rejecting degenerate widths/slides.
    pub fn new(
        granularity: Granularity,
        width: usize,
        slide: usize,
    ) -> Result<WindowSpec, TemporalError> {
        if width == 0 || slide == 0 {
            return Err(TemporalError::BadWindow { width, slide });
        }
        Ok(WindowSpec {
            granularity,
            width,
            slide,
        })
    }

    /// Tumbling spec (`slide == width`).
    pub fn tumbling(granularity: Granularity, width: usize) -> Result<WindowSpec, TemporalError> {
        WindowSpec::new(granularity, width, width)
    }

    /// The `[lo, hi)` unit ranges covering `units` units. The final
    /// window may be partial; every unit is covered by at least one
    /// window.
    pub fn windows(&self, units: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut lo = 0usize;
        while lo < units {
            out.push((lo, (lo + self.width).min(units)));
            lo += self.slide;
        }
        if units > 0 && out.is_empty() {
            out.push((0, units));
        }
        out
    }
}

/// All units' FSG-ready graph transactions, materialized once in unit
/// order. `unit_off[u]..unit_off[u + 1]` indexes unit `u`'s transactions
/// inside `graphs`; empty units hold an empty range, so windows stay
/// aligned with the time axis.
pub struct UnitPartition {
    pub granularity: Granularity,
    /// FSG-ready transactions, concatenated in unit order.
    pub graphs: Vec<Graph>,
    /// Unit boundaries into `graphs` (`len = units + 1`).
    pub unit_off: Vec<usize>,
    /// Absolute unit index of unit 0 (e.g. days since the epoch for
    /// `Granularity::Day`).
    pub first_unit: u64,
}

impl UnitPartition {
    /// Number of units (including empty ones).
    pub fn units(&self) -> usize {
        self.unit_off.len().saturating_sub(1)
    }

    /// The transaction (graph) index range backing units `[lo, hi)`.
    pub fn txn_range(&self, lo: usize, hi: usize) -> (usize, usize) {
        (self.unit_off[lo], self.unit_off[hi])
    }

    /// The transactions of units `[lo, hi)`.
    pub fn window_graphs(&self, lo: usize, hi: usize) -> &[Graph] {
        &self.graphs[self.unit_off[lo]..self.unit_off[hi]]
    }
}

/// Buckets transactions into per-unit graphs at `granularity` and runs
/// the §6 refinement pipeline (component split → dedup → min-edge
/// filter) on every unit. Location labels are assigned globally, so the
/// same lane keeps one label across all units — exactly like
/// [`crate::temporal::daily_graphs`], which this generalizes (at
/// `Granularity::Day` the flattened output equals
/// [`crate::temporal::temporal_partition`]'s).
///
/// # Errors
/// As [`crate::temporal::daily_graphs`], plus the hour axis counts
/// toward the same [`crate::temporal::MAX_SPAN_DAYS`] day cap.
pub fn unit_partition(
    txns: &[Transaction],
    scheme: &BinScheme,
    granularity: Granularity,
    opts: &TemporalOptions,
) -> Result<UnitPartition, TemporalError> {
    validate_dates(txns)?;
    if txns.is_empty() {
        return Ok(UnitPartition {
            granularity,
            graphs: Vec::new(),
            unit_off: vec![0],
            first_unit: 0,
        });
    }
    let ranges: Vec<(u64, u64)> = txns.iter().map(|t| granularity.active_units(t)).collect();
    let first_unit = ranges.iter().map(|r| r.0).min().unwrap();
    let last_unit = ranges.iter().map(|r| r.1).max().unwrap();
    let span = (last_unit - first_unit + 1) as usize;
    let mut by_unit: Vec<Vec<&Transaction>> = vec![Vec::new(); span];
    for (t, &(a, b)) in txns.iter().zip(&ranges) {
        for u in a..=b {
            by_unit[(u - first_unit) as usize].push(t);
        }
    }
    // Global location -> label closure, mirroring `daily_graphs`.
    let mut loc_label: HashMap<LatLon, u32> = HashMap::new();
    let mut next = 0u32;
    let mut label_of = |loc: LatLon| -> u32 {
        *loc_label.entry(loc).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        })
    };
    let mut graphs = Vec::new();
    let mut unit_off = Vec::with_capacity(span + 1);
    unit_off.push(0);
    for unit_txns in &by_unit {
        let mut g = Graph::new();
        let mut vertex_of: HashMap<LatLon, VertexId> = HashMap::new();
        for t in unit_txns {
            for loc in [t.origin, t.dest] {
                vertex_of
                    .entry(loc)
                    .or_insert_with(|| g.add_vertex(VLabel(label_of(loc))));
            }
            g.add_edge(
                vertex_of[&t.origin],
                vertex_of[&t.dest],
                ELabel(scheme.weight.bin(t.gross_weight)),
            );
        }
        let unit_graphs = if g.edge_count() > 0 {
            refine_graphs(vec![g], opts)
        } else {
            Vec::new()
        };
        graphs.extend(unit_graphs);
        unit_off.push(graphs.len());
    }
    Ok(UnitPartition {
        granularity,
        graphs,
        unit_off,
        first_unit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_data::model::{Date, TransMode};

    fn txn(id: u64, o: (f64, f64), d: (f64, f64), pickup: u32, delivery: u32) -> Transaction {
        Transaction {
            id,
            req_pickup: Date(pickup),
            req_delivery: Date(delivery),
            origin: LatLon::new(o.0, o.1),
            dest: LatLon::new(d.0, d.1),
            total_distance: 150.0,
            gross_weight: 30_000.0,
            transit_hours: 12.0,
            mode: TransMode::Truckload,
        }
    }

    const A: (f64, f64) = (44.5, -88.0);
    const B: (f64, f64) = (41.9, -87.6);
    const C: (f64, f64) = (39.1, -84.5);

    #[test]
    fn window_ranges_tumble_and_slide() {
        let spec = WindowSpec::tumbling(Granularity::Day, 3).unwrap();
        assert_eq!(spec.windows(7), vec![(0, 3), (3, 6), (6, 7)]);
        let spec = WindowSpec::new(Granularity::Day, 3, 1).unwrap();
        assert_eq!(
            spec.windows(5),
            vec![(0, 3), (1, 4), (2, 5), (3, 5), (4, 5)]
        );
        assert!(WindowSpec::new(Granularity::Day, 0, 1).is_err());
        assert!(WindowSpec::new(Granularity::Day, 1, 0).is_err());
        assert!(spec.windows(0).is_empty());
    }

    #[test]
    fn day_units_match_daily_partition() {
        let txns = vec![
            txn(1, A, B, 0, 1),
            txn(2, B, C, 0, 0),
            txn(3, A, C, 2, 3),
            txn(4, C, B, 3, 3),
        ];
        let scheme = BinScheme::paper_defaults();
        let opts = TemporalOptions::default();
        let up = unit_partition(&txns, &scheme, Granularity::Day, &opts).unwrap();
        let daily = crate::temporal::temporal_partition(&txns, &scheme, &opts).unwrap();
        assert_eq!(up.units(), 4);
        assert_eq!(up.graphs.len(), daily.len());
        for (a, b) in up.graphs.iter().zip(&daily) {
            assert!(tnet_graph::iso::are_isomorphic(a, b));
        }
    }

    #[test]
    fn week_units_bucket_by_seven_days() {
        let txns = vec![txn(1, A, B, 0, 2), txn(2, B, C, 1, 1), txn(3, A, C, 8, 9)];
        let up = unit_partition(
            &txns,
            &BinScheme::paper_defaults(),
            Granularity::Week,
            &TemporalOptions::default(),
        )
        .unwrap();
        // Days 0-2 land in week 0, days 8-9 in week 1.
        assert_eq!(up.units(), 2);
        assert_eq!(up.first_unit, 0);
    }

    #[test]
    fn hour_units_follow_transit_and_cap() {
        let mut t = txn(1, A, B, 0, 0);
        t.transit_hours = 30.0; // capped at end of delivery day (hour 23)
        let (a, b) = Granularity::Hour.active_units(&t);
        assert_eq!((a, b), (0, 23));
        let mut t = txn(2, A, B, 1, 2);
        t.transit_hours = 5.4;
        let (a, b) = Granularity::Hour.active_units(&t);
        assert_eq!((a, b), (24, 29));
    }

    #[test]
    fn empty_units_keep_axis_alignment() {
        let txns = vec![txn(1, A, B, 0, 0), txn(2, B, C, 0, 0), txn(3, A, C, 3, 3)];
        let up = unit_partition(
            &txns,
            &BinScheme::paper_defaults(),
            Granularity::Day,
            &TemporalOptions::default(),
        )
        .unwrap();
        assert_eq!(up.units(), 4);
        let (lo, hi) = up.txn_range(1, 3);
        assert_eq!(lo, hi, "days 1-2 are empty");
    }

    #[test]
    fn inverted_dates_rejected_at_ingest() {
        let txns = vec![txn(1, A, B, 5, 1)];
        assert!(unit_partition(
            &txns,
            &BinScheme::paper_defaults(),
            Granularity::Hour,
            &TemporalOptions::default(),
        )
        .is_err());
    }
}
