//! Algorithm 1: mining frequent subgraphs in a single graph by repeated
//! partitioning.
//!
//! ```text
//! result = ∅
//! for i = 1..m:
//!     G1..Gk = SplitGraph(G, k)
//!     result = result ∪ Find_Frequent_Graphs(s, G1..Gk)
//! return result
//! ```
//!
//! "if a sub-graph is frequent across a particular partitioning, it is
//! frequent in the entire graph. (Running multiple times decreases the
//! number of false drops.)" The union is taken up to isomorphism, keeping
//! each pattern's best observed support.

use crate::split::{split_frozen, Strategy};
use tnet_exec::Exec;
use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::Graph;
use tnet_graph::rng::{derive_seed, StdRng};

/// A frequent pattern and the (maximum, over repetitions) number of graph
/// transactions supporting it.
#[derive(Clone, Debug)]
pub struct SingleGraphPattern {
    pub pattern: Graph,
    pub support: usize,
    /// In how many of the `m` repetitions the pattern surfaced.
    pub repetitions_seen: usize,
}

/// Runs Algorithm 1. `mine(transactions, exec)` is the frequent-subgraph
/// miner applied per repetition (e.g. FSG at support `s`); it returns
/// `(pattern, support)` pairs and may use the handed [`Exec`] for its own
/// internal parallelism.
///
/// Repetitions run across `exec`'s workers, each with a decorrelated RNG
/// stream derived from `(seed, repetition index)` — so repetition `i`
/// produces the same partitioning at any thread count — and each miner
/// call receives a child handle with a proportional share of the thread
/// budget. Results merge in repetition order.
///
/// Returns patterns deduplicated by isomorphism class, each with the best
/// support seen and a count of the repetitions that produced it, sorted
/// by descending support.
pub fn mine_single_graph(
    g: &Graph,
    k: usize,
    m: usize,
    strategy: Strategy,
    seed: u64,
    exec: &Exec,
    mine: impl Fn(&[Graph], &Exec) -> Vec<(Graph, usize)> + Sync,
) -> Vec<SingleGraphPattern> {
    assert!(m > 0, "need at least one repetition");
    // Split the thread budget between the repetition fan-out and each
    // miner's internal regions: with enough repetitions to occupy every
    // worker, miners run sequentially inside their repetition; a lone
    // repetition hands its miner the whole budget.
    let outer = exec.threads().min(m);
    let inner = (exec.threads() / outer).max(1);
    let reps: Vec<u64> = (0..m as u64).collect();
    // Freeze once; every repetition splits the shared snapshot through
    // its own deleted-edge overlay instead of cloning the whole graph.
    let frozen = g.freeze();
    // Pre-register the partition span before the fan-out: repetitions
    // run concurrently, and first-touch registration inside the pool
    // would make the rendered span-tree order depend on scheduling.
    exec.span().child("partition");
    let per_rep: Vec<Vec<(Graph, usize)>> = exec.par_map(&reps, |&i| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, i));
        let transactions = {
            let _t = exec.span().time("partition");
            split_frozen(&frozen, k, strategy, &mut rng)
        };
        mine(&transactions, &exec.child_with_threads(inner))
    });
    let mut acc: IsoClassMap<(usize, usize)> = IsoClassMap::new();
    for rep_patterns in per_rep {
        for (pattern, support) in rep_patterns {
            let entry = acc.entry_or_insert_with(&pattern, || (0, 0));
            entry.0 = entry.0.max(support);
            entry.1 += 1;
        }
    }
    let mut out: Vec<SingleGraphPattern> = acc
        .into_iter_pairs()
        .map(|(pattern, (support, reps))| SingleGraphPattern {
            pattern,
            support,
            repetitions_seen: reps,
        })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.pattern.edge_count().cmp(&a.pattern.edge_count()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::has_embedding;

    /// A toy "miner": reports every single-edge pattern with its
    /// transaction support.
    fn single_edge_miner(transactions: &[Graph], _exec: &Exec) -> Vec<(Graph, usize)> {
        let mut classes: IsoClassMap<usize> = IsoClassMap::new();
        for t in transactions {
            let mut seen_here: IsoClassMap<()> = IsoClassMap::new();
            for e in t.edges() {
                let (sub, _) = t.edge_subgraph(&[e]);
                if !seen_here.contains(&sub) {
                    *classes.entry_or_insert_with(&sub, || 0) += 1;
                    seen_here.insert(sub, ());
                }
            }
        }
        classes.into_iter_pairs().collect()
    }

    #[test]
    fn union_over_repetitions_dedups() {
        let g = shapes::cycle(8, 0, 1);
        let res = mine_single_graph(
            &g,
            4,
            3,
            Strategy::DepthFirst,
            1,
            &Exec::new(2),
            single_edge_miner,
        );
        // All edges share one label: exactly one single-edge pattern class.
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].repetitions_seen, 3);
        assert!(res[0].support >= 4, "each partition holds the edge");
    }

    #[test]
    fn patterns_actually_occur_in_source() {
        let mut g = shapes::hub_and_spoke(6, 0, 1);
        // Add some differently-labeled edges.
        let vs: Vec<_> = g.vertices().collect();
        g.add_edge(vs[1], vs[2], tnet_graph::graph::ELabel(9));
        let res = mine_single_graph(
            &g,
            2,
            2,
            Strategy::BreadthFirst,
            3,
            &Exec::sequential(),
            single_edge_miner,
        );
        for p in &res {
            assert!(has_embedding(&p.pattern, &g));
        }
    }

    #[test]
    fn sorted_by_support() {
        let mut g = shapes::hub_and_spoke(10, 0, 1);
        let vs: Vec<_> = g.vertices().collect();
        g.add_edge(vs[1], vs[2], tnet_graph::graph::ELabel(9));
        let res = mine_single_graph(
            &g,
            3,
            1,
            Strategy::BreadthFirst,
            5,
            &Exec::sequential(),
            single_edge_miner,
        );
        for w in res.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }
}
