//! Property tests for the partitioners: Algorithm 2 must conserve the
//! labeled edge multiset for any graph, any partition count, and both
//! strategies — the foundation of the "frequent in a partition ⇒
//! frequent in the graph" argument.

// Gated: needs the external `proptest` crate (see the `prop` feature
// note in Cargo.toml). Off by default so the workspace builds offline.
#![cfg(feature = "prop")]
use proptest::prelude::*;
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::rng::StdRng;
use tnet_partition::split::{split_graph, Strategy as SplitStrategy};

type RawEdge = (usize, usize, u32);

fn raw_graph(max_v: usize, max_e: usize) -> impl Strategy<Value = (Vec<u32>, Vec<RawEdge>)> {
    (2..=max_v).prop_flat_map(move |nv| {
        let vlabels = proptest::collection::vec(0u32..2, nv);
        let edges = proptest::collection::vec((0..nv, 0..nv, 0u32..4), 1..=max_e);
        (vlabels, edges)
    })
}

fn build(vlabels: &[u32], edges: &[RawEdge]) -> Graph {
    let mut g = Graph::new();
    let vs: Vec<VertexId> = vlabels.iter().map(|&l| g.add_vertex(VLabel(l))).collect();
    for &(s, d, l) in edges {
        g.add_edge(vs[s], vs[d], ELabel(l));
    }
    g
}

fn labeled_edge_multiset(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut v: Vec<(u32, u32, u32)> = g
        .edges()
        .map(|e| {
            let (s, d, l) = g.edge(e);
            (g.vertex_label(s).0, l.0, g.vertex_label(d).0)
        })
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every edge lands in exactly one transaction, with labels intact.
    #[test]
    fn split_conserves_edges(
        (vl, es) in raw_graph(10, 25),
        k in 1usize..6,
        bf in any::<bool>(),
        seed in 0u64..500,
    ) {
        let g = build(&vl, &es);
        let strategy = if bf { SplitStrategy::BreadthFirst } else { SplitStrategy::DepthFirst };
        let parts = split_graph(&g, k, strategy, &mut StdRng::seed_from_u64(seed));
        let total: usize = parts.iter().map(|p| p.edge_count()).sum();
        prop_assert_eq!(total, g.edge_count());
        let mut got: Vec<(u32, u32, u32)> = Vec::new();
        for p in &parts {
            got.extend(labeled_edge_multiset(p));
        }
        got.sort_unstable();
        prop_assert_eq!(got, labeled_edge_multiset(&g));
    }

    /// No transaction contains orphan vertices, and none is empty.
    #[test]
    fn split_transactions_are_clean(
        (vl, es) in raw_graph(10, 25),
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        let g = build(&vl, &es);
        let parts = split_graph(&g, k, SplitStrategy::BreadthFirst, &mut StdRng::seed_from_u64(seed));
        for p in &parts {
            prop_assert!(p.edge_count() > 0);
            for v in p.vertices() {
                prop_assert!(p.incident_edges(v).next().is_some());
            }
        }
    }

    /// Larger k never yields fewer transactions (up to the edge supply).
    #[test]
    fn partition_count_tracks_k(
        (vl, es) in raw_graph(10, 30),
        seed in 0u64..200,
    ) {
        let g = build(&vl, &es);
        let n1 = split_graph(&g, 2, SplitStrategy::DepthFirst, &mut StdRng::seed_from_u64(seed)).len();
        let n2 = split_graph(&g, 8, SplitStrategy::DepthFirst, &mut StdRng::seed_from_u64(seed)).len();
        prop_assert!(n2 >= n1.min(g.edge_count()) || n2 == g.edge_count());
    }
}
