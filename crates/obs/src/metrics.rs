//! A single named-counter namespace for the whole pipeline.
//!
//! Every layer used to expose its own counter struct — `tnet-exec`'s
//! `PoolCounters`, the miners' `MiningStats`/`GspanStats`/`SubdueStats` —
//! each with its own field names and printing. The registry absorbs all
//! of them under dotted names (`exec.tasks`, `fsg.iso_tests`,
//! `subdue.patterns_derived`, …) so one snapshot answers "what did this
//! run spend" regardless of which miners ran.
//!
//! Naming scheme: `<component>.<counter>`, lowercase snake case, where
//! `<component>` is the crate-level subsystem (`exec`, `fsg`, `gspan`,
//! `subdue`). Components fold their counters in at the end of a run
//! (e.g. `MiningStats::record_into`), so the hot paths keep their plain
//! `usize` arithmetic and the registry's mutex is off every inner loop.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Shared named-counter registry. Cheap to clone; all clones observe the
/// same counters.
///
/// Poisoning: the report supervisor runs sections under `catch_unwind`,
/// so a section that panics while folding counters (e.g. via a panic
/// failpoint) poisons this mutex but leaves the map itself consistent —
/// every mutation is a single `BTreeMap` call with no invariant spanning
/// the unlock. All lock sites therefore recover the guard from a
/// poisoned mutex instead of propagating the panic into every later
/// section's counter flush.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Locks the counter map, recovering from poisoning (see type docs).
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, u64>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the counter `name` (registering it at zero first).
    pub fn add(&self, name: &str, delta: u64) {
        let mut m = self.lock();
        match m.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                m.insert(name.to_string(), delta);
            }
        }
    }

    /// Records a high-water mark: keeps the max of the stored value and
    /// `value`. For peaks (`fsg.peak_candidate_bytes`, `gspan.max_depth`)
    /// where summing runs would be meaningless.
    pub fn record_max(&self, name: &str, value: u64) {
        let mut m = self.lock();
        match m.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                m.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of one counter (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.lock().get(name).copied().unwrap_or(0)
    }

    /// Copies out all counters, sorted by name (BTreeMap order) — the
    /// deterministic export surface for JSON and text reports.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.lock().clone()
    }

    /// Renders `name  value` lines, aligned, sorted by name.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let width = snap.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &snap {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_get_defaults_to_zero() {
        let m = MetricsRegistry::new();
        assert_eq!(m.get("fsg.iso_tests"), 0);
        m.add("fsg.iso_tests", 3);
        m.add("fsg.iso_tests", 4);
        assert_eq!(m.get("fsg.iso_tests"), 7);
    }

    #[test]
    fn record_max_keeps_high_water_mark() {
        let m = MetricsRegistry::new();
        m.record_max("fsg.peak_candidate_bytes", 10);
        m.record_max("fsg.peak_candidate_bytes", 5);
        m.record_max("fsg.peak_candidate_bytes", 12);
        assert_eq!(m.get("fsg.peak_candidate_bytes"), 12);
    }

    #[test]
    fn clones_share_state_and_snapshot_is_sorted() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.add("b.z", 1);
        m.add("a.y", 2);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, ["a.y", "b.z"]);
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let m = MetricsRegistry::new();
        m.add("x", u64::MAX - 1);
        m.add("x", 5);
        assert_eq!(m.get("x"), u64::MAX);
    }

    /// Regression: a supervised section that panics while holding the
    /// metrics mutex (the `catch_unwind` report path) used to poison it
    /// and crash every later section's counter flush with
    /// `PoisonError`. All operations must keep working afterwards.
    #[test]
    fn survives_mutex_poisoned_by_panicking_holder() {
        let m = MetricsRegistry::new();
        m.add("exec.tasks", 1);
        let m2 = m.clone();
        let panicked = std::thread::spawn(move || {
            let _guard = m2.inner.lock().unwrap();
            panic!("section panic while holding the metrics lock");
        })
        .join();
        assert!(panicked.is_err(), "holder thread must have panicked");
        assert!(m.inner.is_poisoned());
        // Every later "section" still flushes and reads counters.
        m.add("exec.tasks", 2);
        m.record_max("fsg.peak_candidate_bytes", 7);
        assert_eq!(m.get("exec.tasks"), 3);
        assert_eq!(m.snapshot().get("fsg.peak_candidate_bytes"), Some(&7));
        assert!(m.render().contains("exec.tasks"));
    }

    #[test]
    fn render_lists_one_line_per_counter() {
        let m = MetricsRegistry::new();
        m.add("exec.tasks", 4);
        m.add("fsg.iso_tests", 9);
        let text = m.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("exec.tasks"));
        assert!(text.contains("  9"));
    }
}
