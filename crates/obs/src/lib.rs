//! `tnet-obs` — structured tracing and metrics for the tnet pipeline.
//!
//! Two pieces, both std-only and dependency-free:
//!
//! - [`Tracer`]/[`Span`]: a wall-clock span tree with RAII phase timers,
//!   answering "where did the time go" for a run (ingest → binning →
//!   partitioning → miner phases → supervisor sections).
//! - [`MetricsRegistry`]: one named-counter namespace absorbing the
//!   per-layer counter structs (`exec.*`, `fsg.*`, `gspan.*`,
//!   `subdue.*`), answering "what did the run do".
//!
//! Both ride on the `tnet_exec::Exec` handle (see `Exec::with_obs`), so
//! every layer that already takes an execution handle is traced without
//! new plumbing. Disabled (the default), a span is an empty handle and
//! costs one branch per phase boundary; the registry is only touched at
//! run boundaries. See DESIGN.md §10 for the span model, the naming
//! scheme, and the `tnet-trace/v1` JSON schema.

mod histogram;
mod metrics;
mod span;

pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use metrics::MetricsRegistry;
pub use span::{Span, SpanNode, Timed, Tracer};
