//! Span trees: scoped RAII wall-clock timers with labels.
//!
//! A [`Tracer`] owns a tree of labelled nodes; a [`Span`] is a cheap
//! handle onto one node. Timing is RAII: [`Span::time`] (or
//! [`Span::timer`]) returns a [`Timed`] guard that, on drop, folds the
//! elapsed wall time and a hit count into the node. Repeated visits to
//! the same `(parent, label)` pair aggregate into one node, so a phase
//! timed once per level shows up as a single line with `xN` calls.
//!
//! Nodes are keyed by `(parent, label)` and rendered in **registration
//! order**. To keep output deterministic across thread counts, spans
//! must be registered from sequential control flow (phase timers wrap
//! parallel regions, they do not run inside worker closures); code that
//! times inside a parallel fan-out pre-registers the labels sequentially
//! first ([`Span::child`] registers without timing).
//!
//! A disabled span (the default on every [`tnet-exec`]-style handle) is
//! a `None`: `child`/`time` are a single branch, no clock read, no
//! allocation, no lock — the cost of tracing when no `--trace` flag is
//! passed is one predictable-not-taken branch per phase boundary.

use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Node {
    label: String,
    children: Vec<usize>,
    nanos: u64,
    count: u64,
}

struct Inner {
    nodes: Mutex<Vec<Node>>,
}

/// Owner of a span tree. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Tracer {
    /// Creates a tracer whose root node carries `root_label`.
    pub fn new(root_label: &str) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                nodes: Mutex::new(vec![Node {
                    label: root_label.to_string(),
                    children: Vec::new(),
                    nanos: 0,
                    count: 0,
                }]),
            }),
        }
    }

    /// The root span (node 0).
    pub fn root(&self) -> Span {
        Span {
            inner: Some((Arc::clone(&self.inner), 0)),
        }
    }

    /// Deep-copies the current tree for rendering or export.
    pub fn snapshot(&self) -> SpanNode {
        let nodes = self.inner.nodes.lock().unwrap();
        fn build(nodes: &[Node], at: usize) -> SpanNode {
            SpanNode {
                label: nodes[at].label.clone(),
                nanos: nodes[at].nanos,
                count: nodes[at].count,
                children: nodes[at]
                    .children
                    .iter()
                    .map(|&c| build(nodes, c))
                    .collect(),
            }
        }
        build(&nodes, 0)
    }
}

/// Handle onto one node of a [`Tracer`]'s tree, or a disabled no-op.
#[derive(Clone, Default)]
pub struct Span {
    inner: Option<(Arc<Inner>, usize)>,
}

impl Span {
    /// A span that records nothing. `child`/`time` on it are a single
    /// branch; no clock is read and nothing allocates.
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Whether this span records into a live tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns (registering if needed) the child node `label`. Use from
    /// sequential code to pin registration order before a parallel
    /// region times the same labels.
    pub fn child(&self, label: &str) -> Span {
        let Some((inner, at)) = &self.inner else {
            return Span::disabled();
        };
        let mut nodes = inner.nodes.lock().unwrap();
        let found = nodes[*at]
            .children
            .iter()
            .copied()
            .find(|&c| nodes[c].label == label);
        let id = found.unwrap_or_else(|| {
            let id = nodes.len();
            nodes.push(Node {
                label: label.to_string(),
                children: Vec::new(),
                nanos: 0,
                count: 0,
            });
            let at = *at;
            nodes[at].children.push(id);
            id
        });
        Span {
            inner: Some((Arc::clone(inner), id)),
        }
    }

    /// RAII-times the child node `label` until the guard drops.
    pub fn time(&self, label: &str) -> Timed {
        self.child(label).timer()
    }

    /// RAII-times **this** node until the guard drops.
    pub fn timer(&self) -> Timed {
        Timed {
            start: self.inner.as_ref().map(|_| Instant::now()),
            span: self.clone(),
        }
    }
}

/// RAII guard from [`Span::time`]/[`Span::timer`]; folds the elapsed
/// wall time into its node on drop.
pub struct Timed {
    span: Span,
    start: Option<Instant>,
}

impl Timed {
    /// The span being timed — parent for nested phases.
    pub fn span(&self) -> &Span {
        &self.span
    }
}

impl Drop for Timed {
    fn drop(&mut self) {
        let (Some(start), Some((inner, at))) = (self.start, &self.span.inner) else {
            return;
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        let mut nodes = inner.nodes.lock().unwrap();
        nodes[*at].nanos += elapsed;
        nodes[*at].count += 1;
    }
}

/// Immutable snapshot of one span-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    pub label: String,
    /// Total wall nanoseconds accumulated across all visits.
    pub nanos: u64,
    /// Number of completed RAII visits.
    pub count: u64,
    /// Children in registration order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// First child with the given label, if any.
    pub fn find(&self, label: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.label == label)
    }

    /// Sum of the direct children's accumulated nanoseconds.
    pub fn children_nanos(&self) -> u64 {
        self.children.iter().map(|c| c.nanos).sum()
    }

    /// Renders the tree as an indented, aligned text report.
    pub fn render(&self) -> String {
        fn label_width(n: &SpanNode, depth: usize, acc: &mut usize) {
            *acc = (*acc).max(2 * depth + n.label.len());
            for c in &n.children {
                label_width(c, depth + 1, acc);
            }
        }
        fn line(n: &SpanNode, depth: usize, width: usize, out: &mut String) {
            let ms = n.nanos as f64 / 1e6;
            let calls = if n.count > 1 {
                format!("  x{}", n.count)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:indent$}{:<pad$}  {:>12.3} ms{}\n",
                "",
                n.label,
                ms,
                calls,
                indent = 2 * depth,
                pad = width - 2 * depth,
            ));
            for c in &n.children {
                line(c, depth + 1, width, out);
            }
        }
        let mut width = 0;
        label_width(self, 0, &mut width);
        let mut out = String::new();
        line(self, 0, width, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn aggregates_repeat_visits_under_one_node() {
        let t = Tracer::new("root");
        let root = t.root();
        for _ in 0..3 {
            let _g = root.time("phase");
        }
        let snap = t.snapshot();
        assert_eq!(snap.label, "root");
        assert_eq!(snap.children.len(), 1);
        assert_eq!(snap.children[0].label, "phase");
        assert_eq!(snap.children[0].count, 3);
    }

    #[test]
    fn nested_timers_build_a_tree() {
        let t = Tracer::new("cmd");
        {
            let outer = t.root().time("mine");
            let _inner = outer.span().time("support");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = t.snapshot();
        let mine = snap.find("mine").unwrap();
        let support = mine.find("support").unwrap();
        assert!(
            mine.nanos >= support.nanos,
            "child wall nests inside parent"
        );
        assert!(support.nanos > 0);
    }

    #[test]
    fn registration_order_is_preserved() {
        let t = Tracer::new("r");
        let root = t.root();
        root.child("b");
        root.child("a");
        root.child("b"); // repeat lookup must not re-register
        let snap = t.snapshot();
        let labels: Vec<&str> = snap.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["b", "a"]);
    }

    #[test]
    fn disabled_span_records_nothing_and_never_panics() {
        let s = Span::disabled();
        assert!(!s.is_enabled());
        let c = s.child("x");
        assert!(!c.is_enabled());
        let _g = c.time("y");
        let _h = s.timer();
    }

    #[test]
    fn spans_are_thread_safe() {
        let t = Tracer::new("r");
        let span = t.root().child("par");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let span = span.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let _g = span.timer();
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.find("par").unwrap().count, 400);
    }

    #[test]
    fn render_is_indented_and_aligned() {
        let t = Tracer::new("root");
        {
            let g = t.root().time("alpha");
            let _h = g.span().time("beta");
        }
        let text = t.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  alpha"));
        assert!(lines[2].starts_with("    beta"));
        assert!(lines[1].contains(" ms"));
    }
}
