//! Lock-free latency histogram with power-of-two buckets.
//!
//! The serving layer needs per-query latency quantiles that can be
//! recorded from many connection threads without coordination and read
//! at any moment by an observer (the `trace` query, the bench harness).
//! Exact quantiles would need a sorted reservoir and a lock; a
//! power-of-two bucket histogram gives ≤ 2x-resolution quantiles from
//! nothing but relaxed atomic increments, which is plenty to tell a
//! 50 µs cache hit from a 5 ms mining query.
//!
//! Bucket `i` covers durations whose nanosecond count has its highest
//! set bit at position `i` (bucket 0 is `0..=1` ns). Quantiles report
//! the bucket's upper bound, so they are conservative (never
//! under-report).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per bit of a `u64` nanosecond count.
const BUCKETS: usize = 64;

/// A thread-safe histogram of durations in nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the bucket covering `nanos`.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    (63 - nanos.max(1).leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i` in nanoseconds.
#[inline]
fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one observation of `nanos`.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observed [`std::time::Duration`] (saturating to
    /// `u64::MAX` ns — a 584-year fsync deserves the top bucket).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }
}

/// An immutable copy of a [`LatencyHistogram`], with quantile lookup.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Upper bound in nanoseconds of the bucket holding the `q`-quantile
    /// observation (`0.0 ..= 1.0`), or `None` if the histogram is empty.
    /// `q` is clamped into range; resolution is a factor of two.
    pub fn quantile_nanos(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // Rank of the quantile observation, 1-based, nearest-rank.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_hi(i));
            }
        }
        unreachable!("rank {rank} <= total {total} must land in a bucket");
    }

    /// Publishes `count`, `p50`, and `p99` under dotted names derived
    /// from `prefix` (e.g. `serve.query.p50_ns`) — the same callback
    /// shape `FrozenStats::publish` uses, so callers can fold the
    /// histogram into any registry without a dependency edge.
    pub fn publish(&self, prefix: &str, f: &mut dyn FnMut(&str, u64)) {
        f(&format!("{prefix}.count"), self.count());
        if let Some(p50) = self.quantile_nanos(0.50) {
            f(&format!("{prefix}.p50_ns"), p50);
        }
        if let Some(p99) = self.quantile_nanos(0.99) {
            f(&format!("{prefix}.p99_ns"), p99);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_line() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_hi(0), 1);
        assert_eq!(bucket_hi(1), 3);
        assert_eq!(bucket_hi(63), u64::MAX);
        for n in [0u64, 1, 2, 3, 100, 1 << 40, u64::MAX] {
            assert!(n <= bucket_hi(bucket_of(n)));
        }
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().quantile_nanos(0.5), None);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::new();
        // 99 fast observations, one slow outlier.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.quantile_nanos(0.50).unwrap();
        assert!((1_000..=1_023).contains(&p50), "{p50}");
        let p99 = s.quantile_nanos(0.99).unwrap();
        assert!(p99 >= 1_000, "{p99}");
        let p100 = s.quantile_nanos(1.0).unwrap();
        assert!(p100 >= 1_000_000, "{p100}");
        assert!(s.quantile_nanos(0.0).unwrap() >= 1_000);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 4_000);
    }

    #[test]
    fn publish_emits_dotted_names() {
        let h = LatencyHistogram::new();
        h.record(500);
        let mut seen = Vec::new();
        h.snapshot().publish("serve.query", &mut |name, v| {
            seen.push((name.to_string(), v));
        });
        assert_eq!(seen[0].0, "serve.query.count");
        assert_eq!(seen[0].1, 1);
        assert!(seen.iter().any(|(n, _)| n == "serve.query.p50_ns"));
        assert!(seen.iter().any(|(n, _)| n == "serve.query.p99_ns"));
    }
}
