//! Maximal frequent patterns.
//!
//! §9 of the paper: "Recent work in finding maximal graph patterns,
//! i.e., ignoring sub-patterns of a frequent pattern, may address this
//! challenge" — the challenge being that even at high support levels the
//! miners drown the analyst in trivial sub-patterns. This module filters
//! a mined pattern set down to the patterns not contained in any other
//! mined pattern (optionally requiring equal support for the stricter
//! *closed*-pattern notion).

use crate::types::FrequentPattern;
use tnet_graph::iso::has_embedding;

/// Filtering mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keep {
    /// Keep patterns not sub-isomorphic to any other pattern in the set.
    Maximal,
    /// Keep patterns with no super-pattern *of equal support* in the set
    /// (closed patterns: the lossless compression of the result).
    Closed,
}

/// Filters `patterns` down to the maximal (or closed) ones. Quadratic in
/// the pattern count with early size pruning — pattern sets from the
/// paper's workloads are hundreds, not millions.
pub fn filter_patterns(patterns: &[FrequentPattern], keep: Keep) -> Vec<FrequentPattern> {
    let mut kept = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        let dominated = patterns.iter().enumerate().any(|(j, q)| {
            if i == j || q.graph.edge_count() <= p.graph.edge_count() {
                return false;
            }
            let support_ok = match keep {
                Keep::Maximal => true,
                Keep::Closed => q.support == p.support,
            };
            support_ok && has_embedding(&p.graph, &q.graph)
        });
        if !dominated {
            kept.push(p.clone());
        }
    }
    kept
}

/// Summary of how much a filter shrank a result set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reduction {
    pub before: usize,
    pub after: usize,
}

impl Reduction {
    /// `after / before` — the surviving fraction.
    pub fn ratio(&self) -> f64 {
        if self.before == 0 {
            return 1.0;
        }
        self.after as f64 / self.before as f64
    }
}

/// Convenience: filter and report the reduction.
pub fn filter_with_report(
    patterns: &[FrequentPattern],
    keep: Keep,
) -> (Vec<FrequentPattern>, Reduction) {
    let kept = filter_patterns(patterns, keep);
    let r = Reduction {
        before: patterns.len(),
        after: kept.len(),
    };
    (kept, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::mine;
    use crate::types::{FsgConfig, Support};
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::Graph;
    use tnet_graph::iso::are_isomorphic;

    fn mined_chains() -> Vec<FrequentPattern> {
        // 4 identical 4-edge chains: every sub-chain is frequent with
        // support 4; only the full chain is maximal.
        let txns: Vec<Graph> = (0..4).map(|_| shapes::chain(4, 0, 1)).collect();
        mine(
            &txns,
            &FsgConfig::default()
                .with_support(Support::Count(4))
                .with_max_edges(4),
        )
        .unwrap()
        .patterns
    }

    #[test]
    fn maximal_keeps_only_longest_chain() {
        let patterns = mined_chains();
        assert!(patterns.len() >= 4);
        let (maximal, r) = filter_with_report(&patterns, Keep::Maximal);
        assert_eq!(maximal.len(), 1);
        assert!(are_isomorphic(&maximal[0].graph, &shapes::chain(4, 0, 1)));
        assert_eq!(r.before, patterns.len());
        assert_eq!(r.after, 1);
        assert!(r.ratio() < 0.5);
    }

    #[test]
    fn closed_equals_maximal_when_supports_equal() {
        let patterns = mined_chains();
        let closed = filter_patterns(&patterns, Keep::Closed);
        let maximal = filter_patterns(&patterns, Keep::Maximal);
        assert_eq!(closed.len(), maximal.len());
    }

    #[test]
    fn closed_keeps_support_steps() {
        // 3 transactions have the 2-chain, only 2 have the 3-chain: the
        // 2-chain is closed (its super-pattern has lower support) but not
        // maximal.
        let txns = vec![
            shapes::chain(2, 0, 1),
            shapes::chain(3, 0, 1),
            shapes::chain(3, 0, 1),
        ];
        let patterns = mine(
            &txns,
            &FsgConfig::default()
                .with_support(Support::Count(2))
                .with_max_edges(3),
        )
        .unwrap()
        .patterns;
        let closed = filter_patterns(&patterns, Keep::Closed);
        let maximal = filter_patterns(&patterns, Keep::Maximal);
        assert!(closed.len() > maximal.len());
        assert!(closed
            .iter()
            .any(|p| are_isomorphic(&p.graph, &shapes::chain(2, 0, 1)) && p.support == 3));
        assert_eq!(maximal.len(), 1);
    }

    #[test]
    fn empty_set() {
        assert!(filter_patterns(&[], Keep::Maximal).is_empty());
        let r = filter_with_report(&[], Keep::Closed).1;
        assert_eq!(r.ratio(), 1.0);
    }
}
