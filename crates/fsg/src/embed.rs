//! Embedding-list bookkeeping for propagated support counting.
//!
//! Shared by both miners (`tnet-fsg`'s level-wise walk and `tnet-gspan`'s
//! DFS): instead of answering "does this pattern occur in this
//! transaction?" with a scratch VF2 search per (pattern, transaction)
//! pair, each pair keeps the list of the pattern's embeddings in that
//! transaction and grows it one edge at a time alongside the pattern
//! itself. A child pattern is its parent plus one derived edge
//! ([`tnet_graph::iso::derive_extension`]), so the child's occurrences
//! are exactly the one-edge extensions of the parent's — counting support
//! becomes an incremental extension instead of a search.
//!
//! Lists hold **unpruned** embeddings ([`Matcher::find_unpruned`]'s
//! enumeration): twin-leaf symmetry breaking would drop occurrences that
//! a child extension needs as a starting point.
//!
//! [`Matcher::find_unpruned`]: tnet_graph::iso::Matcher::find_unpruned

use crate::types::FrequentPattern;
use tnet_graph::iso::{extend_embedding, Embedding, Extension};
use tnet_graph::view::{GraphView, TxnSource};

/// Per-(pattern, transaction) embedding list.
pub struct EmbStore {
    /// Embeddings of the pattern in the transaction, in deterministic
    /// enumeration order (at most the effective cap entries).
    pub embs: Vec<Embedding>,
    /// Whether `embs` is the complete list. An over-cap list is truncated
    /// to a [`SEED_CAP`]-bounded prefix and marked inexact: extending the
    /// kept seeds still proves support (a witness is a witness), but an
    /// empty extension result proves nothing and must be re-verified by a
    /// scratch VF2 existence check. (Re-anchoring overflowing pairs by
    /// re-enumerating up to cap+1 embeddings was measured 2-3x slower
    /// than the legacy scratch path on hub-heavy transportation splits;
    /// truncated seeds keep the witness fast path without that cost, and
    /// the scratch check bounds the downside at the legacy cost.)
    pub exact: bool,
}

/// Seed budget for **inexact** embedding lists. Once a list has spilled,
/// its embeddings only serve as extension witnesses (support proofs) for
/// descendants — completeness is gone either way, and a bounded prefix of
/// seeds witnesses nearly as often as a full cap's worth while costing a
/// fraction of the extension work. Misses fall through to the scratch
/// existence check like any other inexact "no".
pub const SEED_CAP: usize = 256;

/// Test-only override of [`SEED_CAP`] (0 = use the default). A tiny seed
/// budget makes spills and the `Grown::Unverified` → scratch
/// re-verification path reachable on small fixtures, which the
/// differential tests rely on. Process-global; only tests may set it.
static SEED_CAP_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The seed budget in effect: [`SEED_CAP`] unless a test installed an
/// override via [`set_seed_cap_for_tests`].
pub fn seed_cap() -> usize {
    match SEED_CAP_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => SEED_CAP,
        n => n,
    }
}

/// Installs (`n > 0`) or clears (`n = 0`) a process-global seed-cap
/// override. **Test-only**: never call from production code, and keep
/// tests that use it in their own process or restore 0 before
/// asserting on unrelated runs.
#[doc(hidden)]
pub fn set_seed_cap_for_tests(n: usize) {
    SEED_CAP_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
}

/// Effective exact-list cap for one transaction: a list no longer than
/// the transaction's edge count costs no more memory than the transaction
/// itself and no more time than the scratch search's own edge scan, so
/// large transactions (where scratch VF2 is at its most expensive) earn a
/// proportionally larger exactness budget.
pub fn txn_cap<G: GraphView>(cap: usize, txn: &G) -> usize {
    cap.max(txn.edge_count())
}

/// Outcome of growing one (pattern, transaction) embedding list by one
/// derived edge.
pub enum Grown {
    /// No extension exists and the parent list was exact: the child
    /// pattern provably does not occur in the transaction.
    Absent,
    /// No extension was found, but the parent list was a truncated seed
    /// prefix — an unverified "no". The caller must settle it with a
    /// scratch existence check (and, on success, hand descendants an
    /// empty inexact store so they keep verifying).
    Unverified,
    /// At least one extension was found: the child occurs. `store` is the
    /// child's embedding list, or `None` when the caller asked for a
    /// witness only.
    Witnessed { store: Option<EmbStore> },
}

/// Grows `store` (the parent pattern's embeddings in `txn`) by the one
/// edge described by `ext`. With `witness_only` the search stops at the
/// first extension and returns no child store — the terminal-depth case
/// where no descendant will consume it. `extended` and `spilled` count
/// parent embeddings visited and child lists truncated, for stats.
pub fn grow_store<G: GraphView>(
    txn: &G,
    store: &EmbStore,
    ext: &Extension,
    cap: usize,
    witness_only: bool,
    extended: &mut usize,
    spilled: &mut usize,
) -> Grown {
    let cap = txn_cap(cap, txn);
    // Exact lists must be enumerated completely (up to the overflow probe
    // at cap + 1); inexact lists only feed the seed budget. Saturating:
    // with `cap == usize::MAX` a `cap + 1` would wrap to 0 in release
    // builds, break after the first parent, and (without the `complete`
    // guard below) mark a partial enumeration exact — an undercount.
    let stop_at = if store.exact {
        cap.saturating_add(1)
    } else {
        seed_cap().min(cap)
    };
    let mut grown: Vec<Embedding> = Vec::new();
    // Exactness audit: `extend_embedding` appends *all* of one parent's
    // children at once, so a break can overshoot `stop_at` but never
    // stops mid-parent. For an exact parent the break therefore implies
    // `grown.len() > cap`, which already routes to the spill branch —
    // but that proof leans on the `stop_at` arithmetic above. `complete`
    // states the invariant directly: a child list is exact only if every
    // parent embedding was actually visited.
    let mut complete = true;
    for pe in &store.embs {
        *extended += 1;
        extend_embedding(txn, pe, ext, &mut grown);
        if (witness_only && !grown.is_empty()) || grown.len() >= stop_at {
            complete = false;
            break;
        }
    }
    if grown.is_empty() {
        return if store.exact {
            Grown::Absent
        } else {
            Grown::Unverified
        };
    }
    if witness_only {
        return Grown::Witnessed { store: None };
    }
    let child = if store.exact && complete && grown.len() <= cap {
        EmbStore {
            embs: grown,
            exact: true,
        }
    } else {
        if store.exact {
            *spilled += 1;
        }
        grown.truncate(seed_cap().min(cap));
        EmbStore {
            embs: grown,
            exact: false,
        }
    };
    Grown::Witnessed { store: Some(child) }
}

/// Enumerates all embeddings of a frequent single-edge pattern in each of
/// its supporting transactions, truncating lists that overflow the
/// effective cap. The returned stores align with `p.tids`.
pub fn level1_store<T: TxnSource + ?Sized>(
    p: &FrequentPattern,
    transactions: &T,
    cap: usize,
    spilled: &mut usize,
) -> Vec<EmbStore> {
    let e = p.graph.edges().next().expect("level-1 pattern has an edge");
    let (ps, pd, el) = p.graph.edge(e);
    let is_loop = ps == pd;
    let sl = p.graph.vertex_label(ps);
    let dl = p.graph.vertex_label(pd);
    p.tids
        .iter()
        .map(|&tid| {
            let t = transactions.txn(tid as usize);
            let cap = txn_cap(cap, &t);
            let mut embs: Vec<Embedding> = Vec::new();
            for te in t.edges() {
                let (ts, td, tl) = t.edge(te);
                if tl != el {
                    continue;
                }
                let assignment = if is_loop {
                    if ts != td || t.vertex_label(ts) != sl {
                        continue;
                    }
                    vec![ts]
                } else {
                    if ts == td || t.vertex_label(ts) != sl || t.vertex_label(td) != dl {
                        continue;
                    }
                    vec![ts, td]
                };
                // Transactions are simple graphs (see [`crate::mine`]),
                // so each edge yields a distinct vertex mapping — no
                // dedup needed.
                embs.push(Embedding::from_assignment(assignment));
                if embs.len() > cap {
                    break;
                }
            }
            let exact = embs.len() <= cap;
            if !exact {
                *spilled += 1;
                embs.truncate(seed_cap().min(cap));
            }
            EmbStore { embs, exact }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
    use tnet_graph::iso::Extension;

    /// Hub transaction: one center (label 0) with `spokes` out-edges
    /// (label 7) to distinct label-1 vertices. Every embedding of the
    /// single-edge pattern `0 -[7]-> 1` extends to `spokes - 1` children
    /// at once under a `NewDst` extension — the multi-append shape the
    /// `grow_store` break interacts with.
    fn hub_txn(spokes: usize) -> (Graph, Vec<Embedding>) {
        let mut g = Graph::new();
        let center = g.add_vertex(VLabel(0));
        let mut embs = Vec::new();
        for _ in 0..spokes {
            let s = g.add_vertex(VLabel(1));
            g.add_edge(center, s, ELabel(7));
            embs.push(Embedding::from_assignment(vec![center, s]));
        }
        (g, embs)
    }

    const EXT: Extension = Extension::NewDst {
        src: VertexId(0),
        elabel: ELabel(7),
        vlabel: VLabel(1),
    };

    #[test]
    fn multi_append_overshoot_spills_instead_of_marking_exact() {
        let (txn, embs) = hub_txn(5);
        let parent = EmbStore { embs, exact: true };
        let (mut ext_n, mut spills) = (0, 0);
        // Effective cap = max(2, edge_count) = 5; first parent appends 4
        // children, second overshoots stop_at = 6 mid-list. The child
        // must spill — later parents were never visited.
        match grow_store(&txn, &parent, &EXT, 2, false, &mut ext_n, &mut spills) {
            Grown::Witnessed { store: Some(child) } => {
                assert!(!child.exact, "partial enumeration must not be exact");
                assert!(child.embs.len() <= 5);
            }
            _ => panic!("extensions exist; expected a witnessed child store"),
        }
        assert_eq!(spills, 1);
        assert!(ext_n < 5, "break must stop visiting parents early");
    }

    #[test]
    fn unbounded_cap_enumerates_fully_and_stays_exact() {
        // cap = usize::MAX: the overflow probe `cap + 1` used to wrap to
        // 0 in release builds (and panic under overflow checks), break
        // after the first parent, and mark the partial child exact.
        let (txn, embs) = hub_txn(4);
        let parent = EmbStore { embs, exact: true };
        let (mut ext_n, mut spills) = (0, 0);
        match grow_store(
            &txn,
            &parent,
            &EXT,
            usize::MAX,
            false,
            &mut ext_n,
            &mut spills,
        ) {
            Grown::Witnessed { store: Some(child) } => {
                assert!(child.exact);
                assert_eq!(
                    child.embs.len(),
                    4 * 3,
                    "every parent contributes spokes - 1 children"
                );
            }
            _ => panic!("expected a witnessed child store"),
        }
        assert_eq!(ext_n, 4, "all parents visited");
        assert_eq!(spills, 0);
    }

    #[test]
    fn exact_parent_within_cap_keeps_all_children_exact() {
        let (txn, embs) = hub_txn(3);
        let parent = EmbStore { embs, exact: true };
        let (mut ext_n, mut spills) = (0, 0);
        // 3 parents x 2 children = 6 total; effective cap = max(6, 3).
        match grow_store(&txn, &parent, &EXT, 6, false, &mut ext_n, &mut spills) {
            Grown::Witnessed { store: Some(child) } => {
                assert!(child.exact, "complete enumeration within cap is exact");
                assert_eq!(child.embs.len(), 6);
            }
            _ => panic!("expected a witnessed child store"),
        }
        assert_eq!(ext_n, 3);
        assert_eq!(spills, 0);
    }

    #[test]
    fn inexact_parent_with_no_extension_is_unverified() {
        let (txn, mut embs) = hub_txn(2);
        embs.truncate(1);
        let parent = EmbStore { embs, exact: false };
        let (mut ext_n, mut spills) = (0, 0);
        // Ask for an extension label absent from the transaction.
        let ext = Extension::NewDst {
            src: VertexId(0),
            elabel: ELabel(99),
            vlabel: VLabel(1),
        };
        match grow_store(&txn, &parent, &ext, 8, false, &mut ext_n, &mut spills) {
            Grown::Unverified => {}
            _ => panic!("truncated parent with no hit must stay unverified"),
        }
    }
}
