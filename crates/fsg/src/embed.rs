//! Embedding-list bookkeeping for propagated support counting.
//!
//! Shared by both miners (`tnet-fsg`'s level-wise walk and `tnet-gspan`'s
//! DFS): instead of answering "does this pattern occur in this
//! transaction?" with a scratch VF2 search per (pattern, transaction)
//! pair, each pair keeps the list of the pattern's embeddings in that
//! transaction and grows it one edge at a time alongside the pattern
//! itself. A child pattern is its parent plus one derived edge
//! ([`tnet_graph::iso::derive_extension`]), so the child's occurrences
//! are exactly the one-edge extensions of the parent's — counting support
//! becomes an incremental extension instead of a search.
//!
//! Lists hold **unpruned** embeddings ([`Matcher::find_unpruned`]'s
//! enumeration): twin-leaf symmetry breaking would drop occurrences that
//! a child extension needs as a starting point.
//!
//! The store is structure-of-arrays: all occurrences of one (pattern,
//! transaction) pair live in a single row-major `Vec<VertexId>` (row =
//! one flat assignment, stride = pattern vertex count), so
//! [`grow_store`]'s hot loop streams one contiguous buffer and appends
//! children in place via
//! [`tnet_graph::iso::extend_embedding_row`] — no per-occurrence heap
//! vector, no pointer chase per parent.
//!
//! [`Matcher::find_unpruned`]: tnet_graph::iso::Matcher::find_unpruned

use crate::types::FrequentPattern;
use tnet_graph::graph::VertexId;
use tnet_graph::iso::{child_stride, extend_embedding_row, Extension};
use tnet_graph::view::{GraphView, TxnSource};

/// Per-(pattern, transaction) embedding list, stored row-major in one
/// flat buffer (structure of arrays).
pub struct EmbStore {
    /// Row width: one slot per pattern vertex. May be 0 only while the
    /// store is empty (placeholder stores on the unverified path).
    stride: u32,
    /// Row-major flat assignments: row `i` is
    /// `flat[i * stride..(i + 1) * stride]`, in deterministic enumeration
    /// order (at most the effective cap rows).
    flat: Vec<VertexId>,
    /// Whether the store holds the complete list. An over-cap list is
    /// truncated to a [`SEED_CAP`]-bounded prefix and marked inexact:
    /// extending the kept seeds still proves support (a witness is a
    /// witness), but an empty extension result proves nothing and must be
    /// re-verified by a scratch VF2 existence check. (Re-anchoring
    /// overflowing pairs by re-enumerating up to cap+1 embeddings was
    /// measured 2-3x slower than the legacy scratch path on hub-heavy
    /// transportation splits; truncated seeds keep the witness fast path
    /// without that cost, and the scratch check bounds the downside at
    /// the legacy cost.)
    pub exact: bool,
}

impl EmbStore {
    /// An empty store with the given row width.
    pub fn new(stride: usize, exact: bool) -> EmbStore {
        EmbStore {
            stride: stride as u32,
            flat: Vec::new(),
            exact,
        }
    }

    /// Wraps a row-major flat buffer (`flat.len()` must be a multiple of
    /// `stride`).
    pub fn from_rows(stride: usize, flat: Vec<VertexId>, exact: bool) -> EmbStore {
        debug_assert!(stride > 0 || flat.is_empty());
        debug_assert!(stride == 0 || flat.len().is_multiple_of(stride));
        EmbStore {
            stride: stride as u32,
            flat,
            exact,
        }
    }

    /// Row width (pattern vertex count).
    pub fn stride(&self) -> usize {
        self.stride as usize
    }

    /// Number of stored occurrences.
    pub fn len(&self) -> usize {
        if self.stride == 0 {
            0
        } else {
            self.flat.len() / self.stride as usize
        }
    }

    /// True if no occurrence is stored.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Appends one occurrence (`row.len()` must equal the stride).
    pub fn push_row(&mut self, row: &[VertexId]) {
        debug_assert_eq!(row.len(), self.stride as usize);
        self.flat.extend_from_slice(row);
    }

    /// Iterator over occurrences as flat assignment slices.
    pub fn rows(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        self.flat.chunks_exact(self.stride.max(1) as usize)
    }

    /// Bytes held by the flat buffer — the miners' "SoA bytes" counter.
    pub fn byte_len(&self) -> usize {
        self.flat.len() * std::mem::size_of::<VertexId>()
    }

    /// Keeps only the first `n` occurrences.
    fn truncate_rows(&mut self, n: usize) {
        self.flat.truncate(n * self.stride as usize);
    }
}

/// Seed budget for **inexact** embedding lists. Once a list has spilled,
/// its embeddings only serve as extension witnesses (support proofs) for
/// descendants — completeness is gone either way, and a bounded prefix of
/// seeds witnesses nearly as often as a full cap's worth while costing a
/// fraction of the extension work. Misses fall through to the scratch
/// existence check like any other inexact "no".
pub const SEED_CAP: usize = 256;

/// Test-only override of [`SEED_CAP`] (0 = use the default). A tiny seed
/// budget makes spills and the `Grown::Unverified` → scratch
/// re-verification path reachable on small fixtures, which the
/// differential tests rely on. Process-global; only tests may set it.
static SEED_CAP_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The seed budget in effect: [`SEED_CAP`] unless a test installed an
/// override via [`set_seed_cap_for_tests`].
pub fn seed_cap() -> usize {
    match SEED_CAP_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => SEED_CAP,
        n => n,
    }
}

/// Installs (`n > 0`) or clears (`n = 0`) a process-global seed-cap
/// override. **Test-only**: never call from production code, and keep
/// tests that use it in their own process or restore 0 before
/// asserting on unrelated runs.
#[doc(hidden)]
pub fn set_seed_cap_for_tests(n: usize) {
    SEED_CAP_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
}

/// Effective exact-list cap for one transaction: a list no longer than
/// the transaction's edge count costs no more memory than the transaction
/// itself and no more time than the scratch search's own edge scan, so
/// large transactions (where scratch VF2 is at its most expensive) earn a
/// proportionally larger exactness budget.
pub fn txn_cap<G: GraphView>(cap: usize, txn: &G) -> usize {
    cap.max(txn.edge_count())
}

/// Outcome of growing one (pattern, transaction) embedding list by one
/// derived edge.
pub enum Grown {
    /// No extension exists and the parent list was exact: the child
    /// pattern provably does not occur in the transaction.
    Absent,
    /// No extension was found, but the parent list was a truncated seed
    /// prefix — an unverified "no". The caller must settle it with a
    /// scratch existence check (and, on success, hand descendants an
    /// empty inexact store so they keep verifying).
    Unverified,
    /// At least one extension was found: the child occurs. `store` is the
    /// child's embedding list, or `None` when the caller asked for a
    /// witness only.
    Witnessed { store: Option<EmbStore> },
}

/// Grows `store` (the parent pattern's embeddings in `txn`) by the one
/// edge described by `ext`. With `witness_only` the search stops at the
/// first extension and returns no child store — the terminal-depth case
/// where no descendant will consume it. `extended` and `spilled` count
/// parent embeddings visited and child lists truncated, for stats.
pub fn grow_store<G: GraphView>(
    txn: &G,
    store: &EmbStore,
    ext: &Extension,
    cap: usize,
    witness_only: bool,
    extended: &mut usize,
    spilled: &mut usize,
) -> Grown {
    let cap = txn_cap(cap, txn);
    // Exact lists must be enumerated completely (up to the overflow probe
    // at cap + 1); inexact lists only feed the seed budget. Saturating:
    // with `cap == usize::MAX` a `cap + 1` would wrap to 0 in release
    // builds, break after the first parent, and (without the `complete`
    // guard below) mark a partial enumeration exact — an undercount.
    let stop_at = if store.exact {
        cap.saturating_add(1)
    } else {
        seed_cap().min(cap)
    };
    let cs = child_stride(store.stride(), ext);
    let mut flat: Vec<VertexId> = Vec::new();
    // Exactness audit: `extend_embedding_row` appends *all* of one
    // parent's children at once, so a break can overshoot `stop_at` but
    // never stops mid-parent. For an exact parent the break therefore
    // implies a row count > cap, which already routes to the spill branch
    // — but that proof leans on the `stop_at` arithmetic above.
    // `complete` states the invariant directly: a child list is exact
    // only if every parent occurrence was actually visited.
    let mut complete = true;
    for row in store.rows() {
        *extended += 1;
        extend_embedding_row(txn, row, ext, &mut flat);
        if (witness_only && !flat.is_empty()) || flat.len() / cs.max(1) >= stop_at {
            complete = false;
            break;
        }
    }
    if flat.is_empty() {
        return if store.exact {
            Grown::Absent
        } else {
            Grown::Unverified
        };
    }
    if witness_only {
        return Grown::Witnessed { store: None };
    }
    let child = if store.exact && complete && flat.len() / cs <= cap {
        EmbStore::from_rows(cs, flat, true)
    } else {
        if store.exact {
            *spilled += 1;
        }
        let mut child = EmbStore::from_rows(cs, flat, false);
        child.truncate_rows(seed_cap().min(cap));
        child
    };
    Grown::Witnessed { store: Some(child) }
}

/// Enumerates all embeddings of a frequent single-edge pattern in each of
/// its supporting transactions, truncating lists that overflow the
/// effective cap. The returned stores align with `p.tids`.
pub fn level1_store<T: TxnSource + ?Sized>(
    p: &FrequentPattern,
    transactions: &T,
    cap: usize,
    spilled: &mut usize,
) -> Vec<EmbStore> {
    let e = p.graph.edges().next().expect("level-1 pattern has an edge");
    let (ps, pd, el) = p.graph.edge(e);
    let is_loop = ps == pd;
    let sl = p.graph.vertex_label(ps);
    let dl = p.graph.vertex_label(pd);
    let stride = if is_loop { 1 } else { 2 };
    p.tids
        .iter()
        .map(|&tid| {
            let t = transactions.txn(tid as usize);
            let cap = txn_cap(cap, &t);
            let mut store = EmbStore::new(stride, true);
            for te in t.edges() {
                let (ts, td, tl) = t.edge(te);
                if tl != el {
                    continue;
                }
                if is_loop {
                    if ts != td || t.vertex_label(ts) != sl {
                        continue;
                    }
                    store.push_row(&[ts]);
                } else {
                    if ts == td || t.vertex_label(ts) != sl || t.vertex_label(td) != dl {
                        continue;
                    }
                    store.push_row(&[ts, td]);
                }
                // Transactions are simple graphs (see [`crate::mine`]),
                // so each edge yields a distinct vertex mapping — no
                // dedup needed.
                if store.len() > cap {
                    break;
                }
            }
            if store.len() > cap {
                *spilled += 1;
                store.truncate_rows(seed_cap().min(cap));
                store.exact = false;
            }
            store
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
    use tnet_graph::iso::Extension;

    /// Hub transaction: one center (label 0) with `spokes` out-edges
    /// (label 7) to distinct label-1 vertices. Every embedding of the
    /// single-edge pattern `0 -[7]-> 1` extends to `spokes - 1` children
    /// at once under a `NewDst` extension — the multi-append shape the
    /// `grow_store` break interacts with.
    fn hub_txn(spokes: usize) -> (Graph, EmbStore) {
        let mut g = Graph::new();
        let center = g.add_vertex(VLabel(0));
        let mut store = EmbStore::new(2, true);
        for _ in 0..spokes {
            let s = g.add_vertex(VLabel(1));
            g.add_edge(center, s, ELabel(7));
            store.push_row(&[center, s]);
        }
        (g, store)
    }

    const EXT: Extension = Extension::NewDst {
        src: VertexId(0),
        elabel: ELabel(7),
        vlabel: VLabel(1),
    };

    #[test]
    fn multi_append_overshoot_spills_instead_of_marking_exact() {
        let (txn, parent) = hub_txn(5);
        let (mut ext_n, mut spills) = (0, 0);
        // Effective cap = max(2, edge_count) = 5; first parent appends 4
        // children, second overshoots stop_at = 6 mid-list. The child
        // must spill — later parents were never visited.
        match grow_store(&txn, &parent, &EXT, 2, false, &mut ext_n, &mut spills) {
            Grown::Witnessed { store: Some(child) } => {
                assert!(!child.exact, "partial enumeration must not be exact");
                assert!(child.len() <= 5);
                assert_eq!(child.stride(), 3, "NewDst appends one slot");
            }
            _ => panic!("extensions exist; expected a witnessed child store"),
        }
        assert_eq!(spills, 1);
        assert!(ext_n < 5, "break must stop visiting parents early");
    }

    #[test]
    fn unbounded_cap_enumerates_fully_and_stays_exact() {
        // cap = usize::MAX: the overflow probe `cap + 1` used to wrap to
        // 0 in release builds (and panic under overflow checks), break
        // after the first parent, and mark the partial child exact.
        let (txn, parent) = hub_txn(4);
        let (mut ext_n, mut spills) = (0, 0);
        match grow_store(
            &txn,
            &parent,
            &EXT,
            usize::MAX,
            false,
            &mut ext_n,
            &mut spills,
        ) {
            Grown::Witnessed { store: Some(child) } => {
                assert!(child.exact);
                assert_eq!(
                    child.len(),
                    4 * 3,
                    "every parent contributes spokes - 1 children"
                );
            }
            _ => panic!("expected a witnessed child store"),
        }
        assert_eq!(ext_n, 4, "all parents visited");
        assert_eq!(spills, 0);
    }

    #[test]
    fn exact_parent_within_cap_keeps_all_children_exact() {
        let (txn, parent) = hub_txn(3);
        let (mut ext_n, mut spills) = (0, 0);
        // 3 parents x 2 children = 6 total; effective cap = max(6, 3).
        match grow_store(&txn, &parent, &EXT, 6, false, &mut ext_n, &mut spills) {
            Grown::Witnessed { store: Some(child) } => {
                assert!(child.exact, "complete enumeration within cap is exact");
                assert_eq!(child.len(), 6);
            }
            _ => panic!("expected a witnessed child store"),
        }
        assert_eq!(ext_n, 3);
        assert_eq!(spills, 0);
    }

    #[test]
    fn inexact_parent_with_no_extension_is_unverified() {
        let (txn, mut parent) = hub_txn(2);
        parent.truncate_rows(1);
        parent.exact = false;
        let (mut ext_n, mut spills) = (0, 0);
        // Ask for an extension label absent from the transaction.
        let ext = Extension::NewDst {
            src: VertexId(0),
            elabel: ELabel(99),
            vlabel: VLabel(1),
        };
        match grow_store(&txn, &parent, &ext, 8, false, &mut ext_n, &mut spills) {
            Grown::Unverified => {}
            _ => panic!("truncated parent with no hit must stay unverified"),
        }
    }

    #[test]
    fn soa_rows_round_trip() {
        let (_, store) = hub_txn(3);
        assert_eq!(store.len(), 3);
        assert_eq!(store.stride(), 2);
        assert_eq!(store.byte_len(), 3 * 2 * 4);
        let rows: Vec<&[VertexId]> = store.rows().collect();
        assert_eq!(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], VertexId(0), "hub center first slot");
            assert_eq!(row[1], VertexId(i as u32 + 1));
        }
    }
}
