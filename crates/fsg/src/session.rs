//! Incremental mining sessions over a shared frozen transaction
//! universe.
//!
//! The stateless miner answers `mine(graphs) -> patterns` and forgets
//! everything. A [`MineSession`] instead survives across temporal
//! windows of one frozen [`TxnSet`]: it owns the previous window's
//! pattern lattice (per-level iso-keyed TID lists), and on
//! [`MineSession::advance`] re-counts **only** patterns whose candidate
//! TID intersection reaches into the added transaction region — a
//! cached pattern's support over the shared region is carried over
//! verbatim, and retired transactions fall out by restriction. When the
//! window delta exceeds a churn threshold (or the windows do not
//! overlap, as with tumbling windows), the session falls back to a full
//! re-count, which is simply the stateless miner on the window slice.
//!
//! **Byte-identity invariant:** `advance` returns exactly what
//! [`crate::mine_source`] returns for the same window slice — same
//! patterns, same supports, same TID lists, same order — at any thread
//! count. The incremental path reuses the stateless miner's candidate
//! generation and pruning verbatim and only changes *how* each exact
//! support set is computed, never *what* it is.

use crate::miner::mine_core;
use crate::types::{FsgConfig, FsgError, FsgOutput};
use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;
use tnet_graph::canon::IsoClassMap;
use tnet_graph::delta::GraphDelta;
use tnet_graph::frozen::TxnSet;
use tnet_graph::graph::Graph;

/// Incremental-counting context threaded into the level-wise loop.
/// `cache[edges - 1]` is the **previous window's candidate log**, moved
/// here wholesale: each entry maps a candidate's iso class to its exact
/// support TIDs in previous-window-local coordinates. The overlap
/// restriction and re-basing happen lazily inside [`IncrCtx::lookup`]
/// (drop tids below `shift`, subtract `shift`), so the per-window setup
/// cost is a pointer move instead of rebuilding an iso-keyed map — work
/// is only spent on candidates the new window actually generates. The
/// cache covers every candidate the previous window counted exactly —
/// frequent *and* infrequent — because the expensive candidates are
/// precisely the ones that pass the intersection gates and get
/// searched; an empty restriction is itself exact ("absent from the
/// whole overlap") and still spares the search. `log` collects this
/// window's exactly-counted candidates to become the next window's
/// cache.
pub(crate) struct IncrCtx {
    cache: Vec<IsoClassMap<Vec<u32>>>,
    /// Previous-window-local TID where the overlap begins
    /// (`lo - prev_lo`); cached TIDs below it were retired.
    shift: u32,
    /// First window-local TID of the added region (`prev_hi - lo`).
    pub added_lo: u32,
    /// Patterns whose support was (re)counted against transactions.
    pub patterns_recounted: AtomicUsize,
    /// Cached patterns whose parents' intersection never reached the
    /// added region — their support carried over with zero counting.
    pub recount_skips: AtomicUsize,
    /// Exactly-counted candidates from this run, `log[edges - 1]`
    /// keyed by iso class. Locked only from the sequential per-level
    /// fold, never inside workers.
    log: Mutex<Vec<IsoClassMap<Vec<u32>>>>,
}

impl IncrCtx {
    /// A context with no cached lattice: the run mines exactly like the
    /// stateless miner (embedding propagation stays on) but still logs
    /// counted candidates for the next window.
    fn collect_only() -> IncrCtx {
        IncrCtx {
            cache: Vec::new(),
            shift: 0,
            added_lo: 0,
            patterns_recounted: AtomicUsize::new(0),
            recount_skips: AtomicUsize::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Whether a previous window's lattice is available. Gates the
    /// cached-support reuse in the miner: no cache means nothing to
    /// look up.
    pub fn has_cache(&self) -> bool {
        !self.cache.is_empty()
    }

    /// The cached support of `g`'s iso class at `edges` edges,
    /// restricted to the overlap and re-based to current-window-local
    /// coordinates. `Some(vec![])` means "cached, absent from the whole
    /// overlap" — still exact; `None` means the previous window never
    /// counted this class exactly.
    pub fn lookup(&self, edges: usize, g: &Graph) -> Option<Vec<u32>> {
        let tids = self.cache.get(edges - 1)?.get(g)?;
        let from = tids.partition_point(|&t| t < self.shift);
        Some(tids[from..].iter().map(|&t| t - self.shift).collect())
    }

    /// Records an exactly-counted candidate (called from the sequential
    /// fold, in deterministic candidate order).
    pub fn log_candidate(&self, edges: usize, g: &Graph, tids: &[u32]) {
        self.log_candidate_owned(edges, g.clone(), tids.to_vec());
    }

    /// As [`IncrCtx::log_candidate`] but takes ownership — the fold
    /// moves infrequent candidates (dropped otherwise) into the log
    /// instead of cloning them.
    pub fn log_candidate_owned(&self, edges: usize, g: Graph, tids: Vec<u32>) {
        let mut log = self.log.lock().unwrap_or_else(|p| p.into_inner());
        if log.len() < edges {
            log.resize_with(edges, IsoClassMap::new);
        }
        log[edges - 1].insert(g, tids);
    }
}

/// Session counters, folded into the unified metrics namespace under
/// `session.*` / `window.*` (see DESIGN.md §16).
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    /// Windows mined through this session.
    pub windows: usize,
    /// Windows served by delta re-counting.
    pub incremental_windows: usize,
    /// Windows that fell back to a full re-count (first window, no
    /// overlap, or churn above threshold).
    pub full_recounts: usize,
    /// Transactions retired + added across all window advances.
    pub delta_txns: usize,
    /// Packed edges retired + added across all window advances.
    pub delta_edges: usize,
    /// Patterns re-counted against transactions on incremental windows.
    pub patterns_recounted: usize,
    /// Cached patterns whose re-count was skipped entirely (no added
    /// transactions in their candidate intersection).
    pub recount_skips: usize,
}

impl SessionStats {
    /// Folds the counters into a [`tnet_obs::MetricsRegistry`].
    pub fn record_into(&self, metrics: &tnet_obs::MetricsRegistry) {
        metrics.add("session.windows", self.windows as u64);
        metrics.add(
            "session.incremental_windows",
            self.incremental_windows as u64,
        );
        metrics.add("session.full_recounts", self.full_recounts as u64);
        metrics.add("session.patterns_recounted", self.patterns_recounted as u64);
        metrics.add("session.recount_skips", self.recount_skips as u64);
        metrics.add("window.delta_txns", self.delta_txns as u64);
        metrics.add("window.delta_edges", self.delta_edges as u64);
    }
}

/// What the session remembers between windows: the last window's range
/// and its candidate log — every exactly-counted candidate's iso class
/// with **window-local** TIDs, per level.
struct PrevWindow {
    lo: usize,
    hi: usize,
    log: Vec<IsoClassMap<Vec<u32>>>,
}

/// A persistent mining session over forward-moving windows of one
/// frozen [`TxnSet`]. See the module docs for the delta re-count rule
/// and the byte-identity invariant.
pub struct MineSession<'a> {
    set: &'a TxnSet,
    cfg: FsgConfig,
    /// Fall back to a full re-count when `delta.churn()` exceeds this.
    churn_threshold: f64,
    prev: Option<PrevWindow>,
    /// Cumulative counters across all `advance` calls.
    pub stats: SessionStats,
}

impl<'a> MineSession<'a> {
    /// A fresh session over `set`. The first `advance` is always a full
    /// (re)count.
    pub fn new(set: &'a TxnSet, cfg: FsgConfig) -> MineSession<'a> {
        MineSession {
            set,
            cfg,
            churn_threshold: 0.5,
            prev: None,
            stats: SessionStats::default(),
        }
    }

    /// Sets the churn fraction above which `advance` abandons the cache
    /// and re-counts the window from scratch. `(retired + added) /
    /// window size`; sliding day windows of width 7 / slide 1 sit at
    /// ~0.29, tumbling windows at 2.0.
    pub fn with_churn_threshold(mut self, t: f64) -> MineSession<'a> {
        self.churn_threshold = t;
        self
    }

    /// Advances the session to the window of transactions `[lo, hi)`
    /// and mines it. Windows must move forward (`lo`/`hi` each at least
    /// the previous window's). The returned patterns carry
    /// **window-local** TIDs — byte-identical to
    /// [`crate::mine_source`] over `set.slice(lo, hi)`.
    ///
    /// # Errors
    /// As [`crate::mine_with`].
    pub fn advance(
        &mut self,
        lo: usize,
        hi: usize,
        exec: &tnet_exec::Exec,
    ) -> Result<FsgOutput, FsgError> {
        self.stats.windows += 1;
        let delta = self
            .prev
            .as_ref()
            .map(|p| GraphDelta::between(self.set, (p.lo, p.hi), (lo, hi)));
        if let Some(d) = &delta {
            self.stats.delta_txns += d.retired_txns + d.added_txns;
            self.stats.delta_edges += d.retired_edges + d.added_edges;
        }
        let slice = self.set.slice(lo, hi);
        let incremental = match (&self.prev, &delta) {
            (Some(_), Some(d)) => {
                let (olo, ohi) = d.overlap();
                ohi > olo && d.churn() <= self.churn_threshold
            }
            _ => false,
        };
        // A session whose threshold can never admit an incremental
        // window (`< 0`, the driver's full-recount mode) skips
        // collection entirely — it mines exactly like the stateless
        // miner, with no logging overhead.
        let ctx = if incremental {
            // The previous log is moved — not rebuilt — into the cache;
            // `lookup` restricts to the overlap and re-bases lazily. By
            // induction the logged TIDs are each candidate's exact
            // support over the shared region.
            let prev = self.prev.take().unwrap();
            let (_, ohi) = delta.unwrap().overlap();
            IncrCtx {
                cache: prev.log,
                shift: (lo - prev.lo) as u32,
                added_lo: (ohi - lo) as u32,
                patterns_recounted: AtomicUsize::new(0),
                recount_skips: AtomicUsize::new(0),
                log: Mutex::new(Vec::new()),
            }
        } else if self.churn_threshold >= 0.0 {
            IncrCtx::collect_only()
        } else {
            let out = mine_core(&slice, &self.cfg, exec, None)?;
            self.stats.full_recounts += 1;
            self.prev = Some(PrevWindow {
                lo,
                hi,
                log: Vec::new(),
            });
            return Ok(out);
        };
        let out = mine_core(&slice, &self.cfg, exec, Some(&ctx))?;
        if incremental {
            self.stats.incremental_windows += 1;
            self.stats.patterns_recounted += ctx.patterns_recounted.into_inner();
            self.stats.recount_skips += ctx.recount_skips.into_inner();
        } else {
            self.stats.full_recounts += 1;
        }
        self.prev = Some(PrevWindow {
            lo,
            hi,
            log: ctx.log.into_inner().unwrap_or_else(|p| p.into_inner()),
        });
        Ok(out)
    }

    /// The session's frozen universe.
    pub fn txn_set(&self) -> &'a TxnSet {
        self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Support;
    use crate::{mine_source, FsgConfig};
    use tnet_exec::Exec;
    use tnet_graph::generate::shapes;
    use tnet_graph::graph::{ELabel, Graph};

    fn universe() -> Vec<Graph> {
        // A rolling mix: hubs, chains, cycles with drifting sizes so
        // consecutive windows share most but not all patterns.
        let mut txns = Vec::new();
        for i in 0..30 {
            let mut g = shapes::hub_and_spoke(2 + i % 3, 0, 1);
            if i % 4 == 0 {
                let vs: Vec<_> = g.vertices().collect();
                g.add_edge(vs[0], vs[0], ELabel(9));
            }
            txns.push(g);
            txns.push(shapes::chain(2 + i % 4, 0, 1));
            if i % 5 == 0 {
                txns.push(shapes::cycle(3 + i % 2, 0, 1));
            }
        }
        txns
    }

    fn cfg() -> FsgConfig {
        FsgConfig::default()
            .with_support(Support::Count(3))
            .with_max_edges(4)
    }

    fn assert_identical(a: &FsgOutput, b: &FsgOutput) {
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.support, y.support);
            assert_eq!(x.tids, y.tids);
            assert!(tnet_graph::iso::are_isomorphic(&x.graph, &y.graph));
        }
    }

    #[test]
    fn sliding_advance_matches_full_mining() {
        let txns = universe();
        let set = TxnSet::freeze(&txns);
        let exec = Exec::sequential();
        let mut session = MineSession::new(&set, cfg());
        let n = txns.len();
        let (width, slide) = (20usize, 5usize);
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + width).min(n);
            let inc = session.advance(lo, hi, &exec).unwrap();
            let full = mine_source(&set.slice(lo, hi), &cfg(), &exec).unwrap();
            assert_identical(&inc, &full);
            lo += slide;
        }
        assert!(session.stats.incremental_windows > 0);
        assert!(session.stats.recount_skips + session.stats.patterns_recounted > 0);
    }

    #[test]
    fn tumbling_windows_full_recount() {
        let txns = universe();
        let set = TxnSet::freeze(&txns);
        let exec = Exec::sequential();
        let mut session = MineSession::new(&set, cfg());
        for w in 0..3 {
            let (lo, hi) = (w * 25, (w * 25 + 25).min(txns.len()));
            let inc = session.advance(lo, hi, &exec).unwrap();
            let full = mine_source(&set.slice(lo, hi), &cfg(), &exec).unwrap();
            assert_identical(&inc, &full);
        }
        assert_eq!(session.stats.incremental_windows, 0);
        assert_eq!(session.stats.full_recounts, 3);
    }

    #[test]
    fn churn_threshold_forces_fallback() {
        let txns = universe();
        let set = TxnSet::freeze(&txns);
        let exec = Exec::sequential();
        let mut session = MineSession::new(&set, cfg()).with_churn_threshold(0.01);
        session.advance(0, 20, &exec).unwrap();
        session.advance(5, 25, &exec).unwrap();
        assert_eq!(session.stats.incremental_windows, 0);
        assert_eq!(session.stats.full_recounts, 2);
    }

    #[test]
    fn counters_accumulate() {
        let txns = universe();
        let set = TxnSet::freeze(&txns);
        let exec = Exec::sequential();
        let mut session = MineSession::new(&set, cfg());
        session.advance(0, 20, &exec).unwrap();
        session.advance(2, 22, &exec).unwrap();
        assert_eq!(session.stats.windows, 2);
        assert_eq!(session.stats.incremental_windows, 1);
        assert!(session.stats.delta_txns > 0);
        assert!(session.stats.delta_edges > 0);
    }
}
