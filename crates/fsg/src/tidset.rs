//! Bitset TID lists for the all-parents intersection in candidate
//! counting.
//!
//! Downward closure bounds a candidate's supporting set by the
//! intersection of *every* parent's TID list. The sorted-merge
//! intersection is `O(a + b)` data-dependent branches per parent pair; a
//! `u64` bitset over the transaction universe replaces that with
//! `O(universe / 64)` branchless AND+popcount words. Dense lists (the
//! common case at low support on transportation splits, where frequent
//! patterns occur in most transactions) amortize the word scan across
//! ≥ 64 TIDs per word; sparse lists over a large universe would mostly
//! AND empty words, so the miner keeps the sorted path for them — see
//! [`use_bitset`] for the crossover.
//!
//! Materializing the AND result ascending yields exactly the sorted
//! merge's output (both compute the same set, both emit ascending), so
//! toggling [`crate::FsgConfig::tid_bitsets`] is output-invariant —
//! pinned by the `prop`-gated differential tests.

/// Fixed-universe TID bitset: bit `t` of `words[t / 64]` is transaction
/// `t`'s membership.
pub struct TidBitset {
    words: Vec<u64>,
}

impl TidBitset {
    /// Builds the bitset of `tids` over a `universe`-transaction set.
    pub fn from_sorted(tids: &[u32], universe: usize) -> TidBitset {
        let mut words = vec![0u64; universe.div_ceil(64)];
        for &t in tids {
            words[t as usize / 64] |= 1u64 << (t % 64);
        }
        TidBitset { words }
    }

    /// The backing words, low TIDs first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Density crossover: a bitset pays off when the word scan is no longer
/// than the list it replaces — `universe / 64` words against `len`
/// comparisons, i.e. average density ≥ 1 TID per word. Below that the
/// AND touches mostly-empty words and the sorted merge's early exit
/// wins; at or above it the branchless scan wins (measured ~2x on the
/// bench workloads, whose universes fit in one word). Memory stays
/// bounded too: at the crossover the bitset is at most twice the `u32`
/// list's size.
pub fn use_bitset(len: usize, universe: usize) -> bool {
    len > 0 && universe.div_ceil(64) <= len
}

/// In-place AND: `acc &= other`. Both sides must cover the same
/// universe.
pub fn and_words(acc: &mut [u64], other: &[u64]) {
    debug_assert_eq!(acc.len(), other.len());
    for (a, &b) in acc.iter_mut().zip(other) {
        *a &= b;
    }
}

/// Expands a word array back into an ascending TID list — identical to
/// what the sorted-merge intersection of the same sets would emit.
pub fn materialize(words: &[u64]) -> Vec<u32> {
    let mut out = Vec::with_capacity(words.iter().map(|w| w.count_ones() as usize).sum());
    for (wi, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            out.push(wi as u32 * 64 + w.trailing_zeros());
            w &= w - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn round_trip_preserves_sorted_list() {
        let tids = vec![0, 3, 63, 64, 65, 200];
        let bs = TidBitset::from_sorted(&tids, 201);
        assert_eq!(materialize(bs.words()), tids);
    }

    #[test]
    fn and_matches_sorted_merge() {
        // Deterministic pseudo-random lists across several word
        // boundaries.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |m: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m as u64) as u32
        };
        for universe in [1usize, 63, 64, 65, 300] {
            let mut a: Vec<u32> = (0..universe / 2 + 1)
                .map(|_| next(universe as u32))
                .collect();
            let mut b: Vec<u32> = (0..universe / 3 + 1)
                .map(|_| next(universe as u32))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut acc = TidBitset::from_sorted(&a, universe).words().to_vec();
            and_words(&mut acc, TidBitset::from_sorted(&b, universe).words());
            assert_eq!(
                materialize(&acc),
                sorted_intersect(&a, &b),
                "universe={universe}"
            );
        }
    }

    /// Pins the density crossover: one TID per 64-transaction word.
    #[test]
    fn crossover_is_one_tid_per_word() {
        // Tiny universes (≤ 64 transactions → 1 word) always take the
        // bitset path for any non-empty list — the bench workloads.
        assert!(use_bitset(1, 4));
        assert!(use_bitset(1, 64));
        assert!(!use_bitset(0, 64), "empty list has nothing to intersect");
        // 129 transactions → 3 words: a 2-TID list stays sorted, a 3-TID
        // list crosses over.
        assert!(!use_bitset(2, 129));
        assert!(use_bitset(3, 129));
        // Dense lists over big universes qualify.
        assert!(use_bitset(1000, 4096));
    }
}
