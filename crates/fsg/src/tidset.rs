//! Bitset TID lists for the all-parents intersection in candidate
//! counting.
//!
//! Downward closure bounds a candidate's supporting set by the
//! intersection of *every* parent's TID list. The sorted-merge
//! intersection is `O(a + b)` data-dependent branches per parent pair; a
//! `u64` bitset over the transaction universe replaces that with
//! `O(universe / 64)` branchless AND+popcount words. Dense lists (the
//! common case at low support on transportation splits, where frequent
//! patterns occur in most transactions) amortize the word scan across
//! ≥ 64 TIDs per word; sparse lists over a large universe would mostly
//! AND empty words, so the miner keeps the sorted path for them — see
//! [`use_bitset`] for the crossover.
//!
//! Materializing the AND result ascending yields exactly the sorted
//! merge's output (both compute the same set, both emit ascending), so
//! toggling [`crate::FsgConfig::tid_bitsets`] is output-invariant —
//! pinned by the `prop`-gated differential tests.

/// A TID outside the declared transaction universe was passed to
/// [`TidBitset::try_from_sorted`]. Carries both sides of the violated
/// bound so the failure is diagnosable at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TidOutOfUniverse {
    /// The offending transaction id.
    pub tid: u32,
    /// The universe size it must be strictly below.
    pub universe: usize,
}

impl std::fmt::Display for TidOutOfUniverse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TID {} out of universe (expected < {})",
            self.tid, self.universe
        )
    }
}

impl std::error::Error for TidOutOfUniverse {}

/// Fixed-universe TID bitset: bit `t` of `words[t / 64]` is transaction
/// `t`'s membership.
#[derive(Debug)]
pub struct TidBitset {
    words: Vec<u64>,
}

impl TidBitset {
    /// Builds the bitset of `tids` over a `universe`-transaction set.
    ///
    /// Caller contract: every TID must be `< universe`. The miner
    /// upholds this by construction — TID lists index the transaction
    /// slice whose length is the universe — so violations are logic
    /// bugs, reported as a panic that names the offending TID and the
    /// bound (not an uncontextualized slice-index panic).
    pub fn from_sorted(tids: &[u32], universe: usize) -> TidBitset {
        Self::try_from_sorted(tids, universe)
            .unwrap_or_else(|e| panic!("TidBitset::from_sorted: {e}"))
    }

    /// As [`TidBitset::from_sorted`], surfacing an out-of-universe TID
    /// as a typed error instead of panicking — for callers building
    /// bitsets from data they did not derive themselves.
    pub fn try_from_sorted(tids: &[u32], universe: usize) -> Result<TidBitset, TidOutOfUniverse> {
        let mut words = vec![0u64; universe.div_ceil(64)];
        for &t in tids {
            if (t as usize) >= universe {
                return Err(TidOutOfUniverse { tid: t, universe });
            }
            words[t as usize / 64] |= 1u64 << (t % 64);
        }
        Ok(TidBitset { words })
    }

    /// The backing words, low TIDs first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Density crossover: a bitset pays off when the word scan is no longer
/// than the list it replaces — `universe / 64` words against `len`
/// comparisons, i.e. average density ≥ 1 TID per word. Below that the
/// AND touches mostly-empty words and the sorted merge's early exit
/// wins; at or above it the branchless scan wins (measured ~2x on the
/// bench workloads, whose universes fit in one word). Memory stays
/// bounded too: at the crossover the bitset is at most twice the `u32`
/// list's size.
pub fn use_bitset(len: usize, universe: usize) -> bool {
    len > 0 && universe.div_ceil(64) <= len
}

/// In-place AND: `acc &= other`. Both sides must cover the same
/// universe.
pub fn and_words(acc: &mut [u64], other: &[u64]) {
    debug_assert_eq!(acc.len(), other.len());
    for (a, &b) in acc.iter_mut().zip(other) {
        *a &= b;
    }
}

/// Expands a word array back into an ascending TID list — identical to
/// what the sorted-merge intersection of the same sets would emit.
pub fn materialize(words: &[u64]) -> Vec<u32> {
    let mut out = Vec::with_capacity(words.iter().map(|w| w.count_ones() as usize).sum());
    for (wi, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            out.push(wi as u32 * 64 + w.trailing_zeros());
            w &= w - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn round_trip_preserves_sorted_list() {
        let tids = vec![0, 3, 63, 64, 65, 200];
        let bs = TidBitset::from_sorted(&tids, 201);
        assert_eq!(materialize(bs.words()), tids);
    }

    #[test]
    fn and_matches_sorted_merge() {
        // Deterministic pseudo-random lists across several word
        // boundaries.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |m: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m as u64) as u32
        };
        for universe in [1usize, 63, 64, 65, 300] {
            let mut a: Vec<u32> = (0..universe / 2 + 1)
                .map(|_| next(universe as u32))
                .collect();
            let mut b: Vec<u32> = (0..universe / 3 + 1)
                .map(|_| next(universe as u32))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut acc = TidBitset::from_sorted(&a, universe).words().to_vec();
            and_words(&mut acc, TidBitset::from_sorted(&b, universe).words());
            assert_eq!(
                materialize(&acc),
                sorted_intersect(&a, &b),
                "universe={universe}"
            );
        }
    }

    /// Regression: an out-of-universe TID used to be an
    /// uncontextualized slice-index panic (or, for TIDs inside the last
    /// word, a silently-set ghost bit beyond the universe). Now it is a
    /// typed error naming both sides of the violated bound.
    #[test]
    fn out_of_universe_tid_is_a_typed_error() {
        let err = TidBitset::try_from_sorted(&[0, 3, 200], 100).unwrap_err();
        assert_eq!(
            err,
            TidOutOfUniverse {
                tid: 200,
                universe: 100
            }
        );
        assert_eq!(err.to_string(), "TID 200 out of universe (expected < 100)");
        // In-word but out-of-universe (universe 5 → one word, TID 7
        // fits the word): rejected, never a ghost bit.
        let err = TidBitset::try_from_sorted(&[7], 5).unwrap_err();
        assert_eq!(err.tid, 7);
        // Valid inputs still round-trip.
        let ok = TidBitset::try_from_sorted(&[0, 3, 99], 100).unwrap();
        assert_eq!(materialize(ok.words()), vec![0, 3, 99]);
    }

    /// The infallible constructor upholds the documented contract with
    /// a contextual panic, not a bare index-out-of-bounds.
    #[test]
    #[should_panic(expected = "TID 200 out of universe (expected < 100)")]
    fn from_sorted_panics_with_context() {
        let _ = TidBitset::from_sorted(&[200], 100);
    }

    /// Pins the density crossover: one TID per 64-transaction word.
    #[test]
    fn crossover_is_one_tid_per_word() {
        // Tiny universes (≤ 64 transactions → 1 word) always take the
        // bitset path for any non-empty list — the bench workloads.
        assert!(use_bitset(1, 4));
        assert!(use_bitset(1, 64));
        assert!(!use_bitset(0, 64), "empty list has nothing to intersect");
        // 129 transactions → 3 words: a 2-TID list stays sorted, a 3-TID
        // list crosses over.
        assert!(!use_bitset(2, 129));
        assert!(use_bitset(3, 129));
        // Dense lists over big universes qualify.
        assert!(use_bitset(1000, 4096));
    }
}
