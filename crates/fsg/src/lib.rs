//! # tnet-fsg
//!
//! An Apriori-style frequent-subgraph miner over sets of labeled directed
//! graph transactions — a from-scratch reproduction of FSG (Kuramochi &
//! Karypis 2001) as used in the ICDE 2005 transportation-mining paper.
//!
//! Pipeline per level: single-edge extension candidate generation
//! ([`extend`]), downward-closure pruning, VF2 support counting with
//! parent TID lists, iso-class pattern identity. A configurable memory
//! budget reproduces the paper's §6.1 out-of-memory failure mode as a
//! typed error.
//!
//! ```
//! use tnet_fsg::{mine, FsgConfig, Support};
//! use tnet_graph::generate::shapes;
//!
//! let txns: Vec<_> = (0..4).map(|_| shapes::hub_and_spoke(3, 0, 1)).collect();
//! let out = mine(&txns, &FsgConfig::default().with_support(Support::Count(4))).unwrap();
//! // The 3-spoke hub (and all its sub-hubs/edges) occur in all four.
//! assert!(out.patterns.iter().any(|p| p.graph.edge_count() == 3));
//! ```

pub mod embed;
pub mod extend;
pub mod maximal;
pub mod miner;
pub mod nbhd;
pub mod session;
pub mod tidset;
pub mod types;

pub use maximal::{filter_patterns, filter_with_report, Keep, Reduction};
pub use miner::{
    mine, mine_arena_with, mine_for_algorithm1, mine_for_algorithm1_with, mine_source, mine_with,
};
pub use nbhd::{
    mine_frozen, mine_neighborhoods, NbhdConfig, NbhdError, NbhdIndex, NbhdOutput, NbhdPattern,
    NbhdStats, NbhdView,
};
pub use session::{MineSession, SessionStats};
pub use types::{FrequentPattern, FsgConfig, FsgError, FsgOutput, MiningStats, Support};
