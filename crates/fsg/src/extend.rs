//! Candidate generation by single-edge extension.
//!
//! Level-(k+1) candidates are produced from each frequent level-k pattern
//! by attaching one more edge in every way compatible with the frequent
//! single-edge vocabulary:
//!
//! * from an existing vertex to a **new** vertex (and the mirror
//!   direction),
//! * between two **existing** vertices (closing a cycle),
//! * as a **self-loop** on an existing vertex.
//!
//! Every connected (k+1)-edge graph contains a connected k-edge subgraph
//! from which it is one such extension away (remove any non-bridge edge,
//! or a leaf edge), so extension enumeration is complete for connected
//! patterns. Duplicates across parents are collapsed by isomorphism
//! class. This replaces FSG's core-join candidate generator with an
//! equivalent-but-simpler scheme (documented in DESIGN.md); Apriori-style
//! downward-closure pruning is applied separately by the miner.

use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{ELabel, Graph, VLabel, VertexId};
use tnet_graph::hash::FxHashSet;

/// One edge described relative to a shared vertex: direction (0 = out,
/// 1 = in, 2 = self-loop), edge label, far-endpoint vertex label (the
/// shared vertex's own label for loops).
type RelEdge = (u8, u32, u32);

/// Canonical key of a connected 2-edge pattern's isomorphism class, seen
/// from the shared vertex: its label, the two incident edges sorted, and
/// whether the far endpoints coincide (2-cycles / parallel pairs). Two
/// keys are equal iff the 2-edge graphs they describe are isomorphic, so
/// membership tests need no canonical form at all.
type PairKey = (u32, RelEdge, RelEdge, bool);

fn pair_key(s_vl: VLabel, a: RelEdge, b: RelEdge, same_far: bool) -> PairKey {
    (s_vl.0, a.min(b), a.max(b), same_far)
}

/// Membership filter over the frequent 2-edge patterns, queried at
/// candidate-generation time: every (new edge, adjacent existing edge)
/// pair of a viable candidate is a connected 2-edge subgraph, and by
/// downward closure each such pair must itself be frequent. A failed
/// lookup proves the candidate would be closure-pruned, so it is never
/// built, hashed, or deduplicated — the check is a handful of hash-set
/// probes against labels the extension already has in hand.
pub struct PairFilter {
    keys: FxHashSet<PairKey>,
}

impl PairFilter {
    /// Indexes the given frequent 2-edge patterns. Patterns with an edge
    /// count other than 2 are ignored.
    pub fn build<'a, I: IntoIterator<Item = &'a Graph>>(frequent: I) -> PairFilter {
        let mut keys = FxHashSet::default();
        for g in frequent {
            let edges: Vec<_> = g.edges().collect();
            if edges.len() != 2 {
                continue;
            }
            let (s1, d1, l1) = g.edge(edges[0]);
            let (s2, d2, l2) = g.edge(edges[1]);
            // Every vertex incident to both edges is a valid viewpoint;
            // 2-cycles and parallel pairs have two, so both keys go in.
            for s in [s1, d1] {
                if s != s2 && s != d2 {
                    continue;
                }
                let rel = |src: VertexId, dst: VertexId, l: ELabel| -> (RelEdge, VertexId) {
                    if src == dst {
                        ((2, l.0, g.vertex_label(src).0), src)
                    } else if src == s {
                        ((0, l.0, g.vertex_label(dst).0), dst)
                    } else {
                        ((1, l.0, g.vertex_label(src).0), src)
                    }
                };
                let (a, fa) = rel(s1, d1, l1);
                let (b, fb) = rel(s2, d2, l2);
                let same_far = a.0 != 2 && b.0 != 2 && fa == fb;
                keys.insert(pair_key(g.vertex_label(s), a, b, same_far));
            }
        }
        PairFilter { keys }
    }

    fn allows(&self, s_vl: VLabel, a: RelEdge, b: RelEdge, same_far: bool) -> bool {
        self.keys.contains(&pair_key(s_vl, a, b, same_far))
    }
}

/// A frequent single-edge "vocabulary" entry: source vertex label, edge
/// label, destination vertex label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeVocab {
    pub src: VLabel,
    pub label: ELabel,
    pub dst: VLabel,
}

/// Generates all one-edge extensions of `pattern` using `vocab`,
/// deduplicated by isomorphism class. The `payload` stored with each
/// candidate is the parent's index, letting the miner seed support
/// counting from the parent's TID list.
pub fn extend_pattern(
    pattern: &Graph,
    vocab: &[EdgeVocab],
    parent_idx: usize,
    pairs: Option<&PairFilter>,
    acc: &mut IsoClassMap<Vec<usize>>,
) {
    let vertices: Vec<_> = pattern.vertices().collect();
    // Incident edges of each vertex relative to itself, with the far
    // endpoint — the pair-filter probes reuse these across the whole
    // vocabulary sweep.
    let incident = |v: VertexId| -> Vec<(RelEdge, VertexId)> {
        let mut inc = Vec::new();
        for e in pattern.out_edges(v) {
            let (_, d, l) = pattern.edge(e);
            if d == v {
                inc.push(((2, l.0, pattern.vertex_label(v).0), v));
            } else {
                inc.push(((0, l.0, pattern.vertex_label(d).0), d));
            }
        }
        for e in pattern.in_edges(v) {
            let (s, _, l) = pattern.edge(e);
            if s != v {
                inc.push(((1, l.0, pattern.vertex_label(s).0), s));
            }
        }
        inc
    };
    let inc_all: Vec<Vec<(RelEdge, VertexId)>> = if pairs.is_some() {
        vertices.iter().map(|&v| incident(v)).collect()
    } else {
        Vec::new()
    };
    // Does attaching `new_rel` at `vertices[vi]` keep every adjacent pair
    // frequent? `far` is the existing far endpoint for cycle-closing
    // edges (None for a fresh vertex or a self-loop).
    let pair_ok = |vi: usize, new_rel: RelEdge, far: Option<VertexId>| -> bool {
        let Some(f) = pairs else { return true };
        let s_vl = pattern.vertex_label(vertices[vi]);
        inc_all[vi].iter().all(|&(rel, rel_far)| {
            let same_far = new_rel.0 != 2 && rel.0 != 2 && far.is_some_and(|u| u == rel_far);
            f.allows(s_vl, rel, new_rel, same_far)
        })
    };
    for (vi, &v) in vertices.iter().enumerate() {
        let vl = pattern.vertex_label(v);
        for ev in vocab {
            // v --(label)--> new vertex
            if ev.src == vl {
                if pair_ok(vi, (0, ev.label.0, ev.dst.0), None) {
                    let mut g = pattern.clone();
                    let nv = g.add_vertex(ev.dst);
                    g.add_edge(v, nv, ev.label);
                    acc.entry_or_insert_with(&g, Vec::new).push(parent_idx);
                }
                // v --(label)--> existing vertex u (cycle-closing) and
                // self-loop when src == dst labels allow it.
                for (ui, &u) in vertices.iter().enumerate() {
                    if pattern.vertex_label(u) != ev.dst {
                        continue;
                    }
                    // Skip if this exact simple edge already exists:
                    // patterns are simple graphs (FSG's model).
                    let exists = pattern.out_edges(v).any(|e| {
                        let (_, d, l) = pattern.edge(e);
                        d == u && l == ev.label
                    });
                    if exists {
                        continue;
                    }
                    // A closing edge is adjacent to the edges at both
                    // endpoints; a self-loop only to those at v.
                    let ok = if u == v {
                        pair_ok(vi, (2, ev.label.0, vl.0), None)
                    } else {
                        pair_ok(vi, (0, ev.label.0, ev.dst.0), Some(u))
                            && pair_ok(ui, (1, ev.label.0, vl.0), Some(v))
                    };
                    if !ok {
                        continue;
                    }
                    let mut g = pattern.clone();
                    g.add_edge(v, u, ev.label);
                    acc.entry_or_insert_with(&g, Vec::new).push(parent_idx);
                }
            }
            // new vertex --(label)--> v  (the mirror case; existing-to-
            // existing was covered above from the source side).
            if ev.dst == vl && pair_ok(vi, (1, ev.label.0, ev.src.0), None) {
                let mut g = pattern.clone();
                let nv = g.add_vertex(ev.src);
                g.add_edge(nv, v, ev.label);
                acc.entry_or_insert_with(&g, Vec::new).push(parent_idx);
            }
        }
    }
}

/// Builds the two-vertex single-edge pattern graph for a vocabulary
/// entry. (Self-loop level-1 patterns — one vertex, one loop — are a
/// different iso class and are enumerated separately by the miner.)
pub fn vocab_graph(ev: EdgeVocab) -> Graph {
    let mut g = Graph::new();
    let s = g.add_vertex(ev.src);
    let d = g.add_vertex(ev.dst);
    g.add_edge(s, d, ev.label);
    g
}

/// All connected k-edge subgraphs of `g` obtained by deleting exactly one
/// edge (dropping orphaned vertices). Used for downward-closure checks:
/// disconnecting deletions are skipped because FSG's frequent set only
/// contains connected patterns.
pub fn connected_sub_patterns(g: &Graph) -> Vec<Graph> {
    sub_patterns(g, false)
}

/// As [`connected_sub_patterns`], but without the subgraph obtained by
/// deleting the **last** edge. Candidates are built as a frequent parent
/// plus one appended edge, so that deletion reproduces the parent — a
/// pattern already known frequent that the miner's closure check can skip
/// (one fewer subgraph build, invariant hash, and iso-class probe per
/// candidate).
pub fn closure_sub_patterns(g: &Graph) -> Vec<Graph> {
    sub_patterns(g, true)
}

fn sub_patterns(g: &Graph, skip_last: bool) -> Vec<Graph> {
    let mut edges: Vec<_> = g.edges().collect();
    let all: Vec<_> = edges.clone();
    if skip_last {
        edges.pop();
    }
    let mut out = Vec::new();
    for &skip in &edges {
        let keep: Vec<_> = all.iter().copied().filter(|&e| e != skip).collect();
        if keep.is_empty() {
            continue;
        }
        let (sub, _) = g.edge_subgraph(&keep);
        if tnet_graph::traverse::is_connected(&sub) {
            out.push(sub);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::are_isomorphic;

    fn uniform_vocab() -> Vec<EdgeVocab> {
        vec![EdgeVocab {
            src: VLabel(0),
            label: ELabel(1),
            dst: VLabel(0),
        }]
    }

    #[test]
    fn extending_single_edge() {
        let base = shapes::chain(1, 0, 1); // a -> b
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &uniform_vocab(), 0, None, &mut acc);
        // Distinct 2-edge classes over uniform labels:
        //   chain a->b->c, fork a->b & a->c, join a->c & b->c,
        //   head-chain c->a->b, 2-cycle a->b->a, parallel? (skipped),
        //   self-loops are not in vocab-extension from two-vertex... let's
        //   just assert the well-known shapes are present.
        let chain2 = shapes::chain(2, 0, 1);
        let fork = shapes::hub_and_spoke(2, 0, 1);
        let cycle2 = shapes::cycle(2, 0, 1);
        assert!(acc.contains(&chain2));
        assert!(acc.contains(&fork));
        assert!(acc.contains(&cycle2));
        // Every candidate is connected and has exactly 2 edges. The same
        // iso class can be reached by several extension routes, so the
        // parent list may repeat the index.
        for (g, parents) in acc.iter() {
            assert_eq!(g.edge_count(), 2);
            assert!(tnet_graph::traverse::is_connected(g));
            assert!(parents.iter().all(|&p| p == 0));
        }
    }

    #[test]
    fn no_duplicate_simple_edges() {
        let base = shapes::chain(1, 0, 1);
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &uniform_vocab(), 0, None, &mut acc);
        for (g, _) in acc.iter() {
            let mut seen = std::collections::HashSet::new();
            for e in g.edges() {
                assert!(seen.insert(g.edge(e)), "parallel edge in candidate");
            }
        }
    }

    #[test]
    fn label_constraints_respected() {
        // Vocabulary only allows 1 --e--> 2; base pattern is 1 --e--> 2.
        let vocab = vec![EdgeVocab {
            src: VLabel(1),
            label: ELabel(0),
            dst: VLabel(2),
        }];
        let mut base = Graph::new();
        let a = base.add_vertex(VLabel(1));
        let b = base.add_vertex(VLabel(2));
        base.add_edge(a, b, ELabel(0));
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &vocab, 7, None, &mut acc);
        // Possible: new 2-labeled sink from a; new 1-labeled source into b.
        assert_eq!(acc.len(), 2);
        for (g, parents) in acc.iter() {
            assert!(parents.iter().all(|&p| p == 7));
            for e in g.edges() {
                let (s, d, l) = g.edge(e);
                assert_eq!(g.vertex_label(s), VLabel(1));
                assert_eq!(g.vertex_label(d), VLabel(2));
                assert_eq!(l, ELabel(0));
            }
        }
    }

    #[test]
    fn parents_accumulate_across_patterns() {
        let base = shapes::chain(1, 0, 1);
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &uniform_vocab(), 0, None, &mut acc);
        extend_pattern(&base, &uniform_vocab(), 3, None, &mut acc);
        for (_, parents) in acc.iter() {
            assert!(parents.contains(&0) && parents.contains(&3));
        }
    }

    #[test]
    fn sub_patterns_of_chain() {
        let g = shapes::chain(3, 0, 1); // 3 edges
        let subs = connected_sub_patterns(&g);
        // Deleting an end edge keeps connectivity (2 ways); deleting the
        // middle edge disconnects (skipped).
        assert_eq!(subs.len(), 2);
        for s in &subs {
            assert!(are_isomorphic(s, &shapes::chain(2, 0, 1)));
        }
    }

    #[test]
    fn sub_patterns_of_cycle() {
        let g = shapes::cycle(4, 0, 1);
        let subs = connected_sub_patterns(&g);
        assert_eq!(subs.len(), 4); // every deletion leaves a path
        for s in &subs {
            assert!(are_isomorphic(s, &shapes::chain(3, 0, 1)));
        }
    }

    #[test]
    fn vocab_graph_shape() {
        let g = vocab_graph(EdgeVocab {
            src: VLabel(1),
            label: ELabel(5),
            dst: VLabel(1),
        });
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
