//! Candidate generation by single-edge extension.
//!
//! Level-(k+1) candidates are produced from each frequent level-k pattern
//! by attaching one more edge in every way compatible with the frequent
//! single-edge vocabulary:
//!
//! * from an existing vertex to a **new** vertex (and the mirror
//!   direction),
//! * between two **existing** vertices (closing a cycle),
//! * as a **self-loop** on an existing vertex.
//!
//! Every connected (k+1)-edge graph contains a connected k-edge subgraph
//! from which it is one such extension away (remove any non-bridge edge,
//! or a leaf edge), so extension enumeration is complete for connected
//! patterns. Duplicates across parents are collapsed by isomorphism
//! class. This replaces FSG's core-join candidate generator with an
//! equivalent-but-simpler scheme (documented in DESIGN.md); Apriori-style
//! downward-closure pruning is applied separately by the miner.

use tnet_graph::canon::IsoClassMap;
use tnet_graph::graph::{ELabel, Graph, VLabel};

/// A frequent single-edge "vocabulary" entry: source vertex label, edge
/// label, destination vertex label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeVocab {
    pub src: VLabel,
    pub label: ELabel,
    pub dst: VLabel,
}

/// Generates all one-edge extensions of `pattern` using `vocab`,
/// deduplicated by isomorphism class. The `payload` stored with each
/// candidate is the parent's index, letting the miner seed support
/// counting from the parent's TID list.
pub fn extend_pattern(
    pattern: &Graph,
    vocab: &[EdgeVocab],
    parent_idx: usize,
    acc: &mut IsoClassMap<Vec<usize>>,
) {
    let vertices: Vec<_> = pattern.vertices().collect();
    for &v in &vertices {
        let vl = pattern.vertex_label(v);
        for ev in vocab {
            // v --(label)--> new vertex
            if ev.src == vl {
                let mut g = pattern.clone();
                let nv = g.add_vertex(ev.dst);
                g.add_edge(v, nv, ev.label);
                acc.entry_or_insert_with(&g, Vec::new).push(parent_idx);
                // v --(label)--> existing vertex u (cycle-closing) and
                // self-loop when src == dst labels allow it.
                for &u in &vertices {
                    if pattern.vertex_label(u) != ev.dst {
                        continue;
                    }
                    // Skip if this exact simple edge already exists:
                    // patterns are simple graphs (FSG's model).
                    let exists = pattern.out_edges(v).any(|e| {
                        let (_, d, l) = pattern.edge(e);
                        d == u && l == ev.label
                    });
                    if exists {
                        continue;
                    }
                    let mut g = pattern.clone();
                    g.add_edge(v, u, ev.label);
                    acc.entry_or_insert_with(&g, Vec::new).push(parent_idx);
                }
            }
            // new vertex --(label)--> v  (the mirror case; existing-to-
            // existing was covered above from the source side).
            if ev.dst == vl {
                let mut g = pattern.clone();
                let nv = g.add_vertex(ev.src);
                g.add_edge(nv, v, ev.label);
                acc.entry_or_insert_with(&g, Vec::new).push(parent_idx);
            }
        }
    }
}

/// Builds the two-vertex single-edge pattern graph for a vocabulary
/// entry. (Self-loop level-1 patterns — one vertex, one loop — are a
/// different iso class and are enumerated separately by the miner.)
pub fn vocab_graph(ev: EdgeVocab) -> Graph {
    let mut g = Graph::new();
    let s = g.add_vertex(ev.src);
    let d = g.add_vertex(ev.dst);
    g.add_edge(s, d, ev.label);
    g
}

/// All connected k-edge subgraphs of `g` obtained by deleting exactly one
/// edge (dropping orphaned vertices). Used for downward-closure checks:
/// disconnecting deletions are skipped because FSG's frequent set only
/// contains connected patterns.
pub fn connected_sub_patterns(g: &Graph) -> Vec<Graph> {
    sub_patterns(g, false)
}

/// As [`connected_sub_patterns`], but without the subgraph obtained by
/// deleting the **last** edge. Candidates are built as a frequent parent
/// plus one appended edge, so that deletion reproduces the parent — a
/// pattern already known frequent that the miner's closure check can skip
/// (one fewer subgraph build, invariant hash, and iso-class probe per
/// candidate).
pub fn closure_sub_patterns(g: &Graph) -> Vec<Graph> {
    sub_patterns(g, true)
}

fn sub_patterns(g: &Graph, skip_last: bool) -> Vec<Graph> {
    let mut edges: Vec<_> = g.edges().collect();
    let all: Vec<_> = edges.clone();
    if skip_last {
        edges.pop();
    }
    let mut out = Vec::new();
    for &skip in &edges {
        let keep: Vec<_> = all.iter().copied().filter(|&e| e != skip).collect();
        if keep.is_empty() {
            continue;
        }
        let (sub, _) = g.edge_subgraph(&keep);
        if tnet_graph::traverse::is_connected(&sub) {
            out.push(sub);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnet_graph::generate::shapes;
    use tnet_graph::iso::are_isomorphic;

    fn uniform_vocab() -> Vec<EdgeVocab> {
        vec![EdgeVocab {
            src: VLabel(0),
            label: ELabel(1),
            dst: VLabel(0),
        }]
    }

    #[test]
    fn extending_single_edge() {
        let base = shapes::chain(1, 0, 1); // a -> b
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &uniform_vocab(), 0, &mut acc);
        // Distinct 2-edge classes over uniform labels:
        //   chain a->b->c, fork a->b & a->c, join a->c & b->c,
        //   head-chain c->a->b, 2-cycle a->b->a, parallel? (skipped),
        //   self-loops are not in vocab-extension from two-vertex... let's
        //   just assert the well-known shapes are present.
        let chain2 = shapes::chain(2, 0, 1);
        let fork = shapes::hub_and_spoke(2, 0, 1);
        let cycle2 = shapes::cycle(2, 0, 1);
        assert!(acc.contains(&chain2));
        assert!(acc.contains(&fork));
        assert!(acc.contains(&cycle2));
        // Every candidate is connected and has exactly 2 edges. The same
        // iso class can be reached by several extension routes, so the
        // parent list may repeat the index.
        for (g, parents) in acc.iter() {
            assert_eq!(g.edge_count(), 2);
            assert!(tnet_graph::traverse::is_connected(g));
            assert!(parents.iter().all(|&p| p == 0));
        }
    }

    #[test]
    fn no_duplicate_simple_edges() {
        let base = shapes::chain(1, 0, 1);
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &uniform_vocab(), 0, &mut acc);
        for (g, _) in acc.iter() {
            let mut seen = std::collections::HashSet::new();
            for e in g.edges() {
                assert!(seen.insert(g.edge(e)), "parallel edge in candidate");
            }
        }
    }

    #[test]
    fn label_constraints_respected() {
        // Vocabulary only allows 1 --e--> 2; base pattern is 1 --e--> 2.
        let vocab = vec![EdgeVocab {
            src: VLabel(1),
            label: ELabel(0),
            dst: VLabel(2),
        }];
        let mut base = Graph::new();
        let a = base.add_vertex(VLabel(1));
        let b = base.add_vertex(VLabel(2));
        base.add_edge(a, b, ELabel(0));
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &vocab, 7, &mut acc);
        // Possible: new 2-labeled sink from a; new 1-labeled source into b.
        assert_eq!(acc.len(), 2);
        for (g, parents) in acc.iter() {
            assert!(parents.iter().all(|&p| p == 7));
            for e in g.edges() {
                let (s, d, l) = g.edge(e);
                assert_eq!(g.vertex_label(s), VLabel(1));
                assert_eq!(g.vertex_label(d), VLabel(2));
                assert_eq!(l, ELabel(0));
            }
        }
    }

    #[test]
    fn parents_accumulate_across_patterns() {
        let base = shapes::chain(1, 0, 1);
        let mut acc: IsoClassMap<Vec<usize>> = IsoClassMap::new();
        extend_pattern(&base, &uniform_vocab(), 0, &mut acc);
        extend_pattern(&base, &uniform_vocab(), 3, &mut acc);
        for (_, parents) in acc.iter() {
            assert!(parents.contains(&0) && parents.contains(&3));
        }
    }

    #[test]
    fn sub_patterns_of_chain() {
        let g = shapes::chain(3, 0, 1); // 3 edges
        let subs = connected_sub_patterns(&g);
        // Deleting an end edge keeps connectivity (2 ways); deleting the
        // middle edge disconnects (skipped).
        assert_eq!(subs.len(), 2);
        for s in &subs {
            assert!(are_isomorphic(s, &shapes::chain(2, 0, 1)));
        }
    }

    #[test]
    fn sub_patterns_of_cycle() {
        let g = shapes::cycle(4, 0, 1);
        let subs = connected_sub_patterns(&g);
        assert_eq!(subs.len(), 4); // every deletion leaves a path
        for s in &subs {
            assert!(are_isomorphic(s, &shapes::chain(3, 0, 1)));
        }
    }

    #[test]
    fn vocab_graph_shape() {
        let g = vocab_graph(EdgeVocab {
            src: VLabel(1),
            label: ELabel(5),
            dst: VLabel(1),
        });
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
